//! The join operation process as a cooperative task: one state machine
//! that both hash-join algorithms run on the shared worker pool.
//!
//! The seed's operator loops were straight-line blocking code — fine when
//! every instance owned an OS thread, fatal on a fixed pool (a blocked
//! `recv` would park a worker and a handful of stalled instances could
//! deadlock the whole process). [`JoinTask`] restructures an instance as
//! an explicit state machine: every channel interaction uses the
//! non-blocking `try_*` forms, and instead of waiting the task returns
//! [`Step::Blocked`], yielding its worker to some other instance — of this
//! query or any other.
//!
//! Completion (stats or error) is reported exactly once on the query's
//! done channel, including when the task is dropped mid-flight (pool
//! shutdown, panic): the `Drop` impl reports non-completion so the query
//! coordinator can never hang waiting for a vanished instance.

use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, TryRecvError};
use mj_join::{PipeliningJoinState, SimpleJoinState};
use mj_relalg::hash::bucket_of;
use mj_relalg::{EquiJoin, JoinAlgorithm, RelalgError, Relation, Result, Tuple};

use crate::handle::QueryCtrl;
use crate::metrics::InstanceStats;
use crate::operator::OutputPort;
use crate::sched::{Step, Task};
use crate::source::Source;
use crate::stream::{Batch, Msg};

/// Tuples processed per scheduling step: long enough to amortize queue
/// round-trips, short enough that concurrent queries interleave finely.
const QUANTUM: usize = 512;

/// What a completed (or failed) instance sends to its query coordinator.
pub type DoneMsg = (usize, Result<InstanceStats>);

/// A resumable operand: the task-side view of a [`Source`], holding an
/// explicit cursor so a blocked instance can pick up exactly where it
/// stopped.
enum Operand {
    /// A processor-local fragment; read by index.
    Local {
        rel: std::sync::Arc<Relation>,
        pos: usize,
    },
    /// Materialized producer fragments filtered to this instance's bucket.
    Filtered {
        fragments: Vec<std::sync::Arc<Relation>>,
        key_col: usize,
        bucket: usize,
        of: usize,
        frag: usize,
        pos: usize,
    },
    /// A live stream; `current` is a partially consumed batch.
    Stream {
        rx: Receiver<Msg>,
        remaining: usize,
        current: Option<Batch>,
        pos: usize,
    },
}

/// One pull on an operand.
enum Pulled {
    /// A tuple is available now.
    Tuple(Tuple),
    /// A stream operand has nothing queued right now; yield and retry.
    Pending,
    /// The operand is fully consumed.
    Exhausted,
}

impl Operand {
    fn new(source: Source) -> Operand {
        match source {
            Source::Local(rel) => Operand::Local { rel, pos: 0 },
            Source::Filtered {
                fragments,
                key_col,
                bucket,
                of,
            } => Operand::Filtered {
                fragments,
                key_col,
                bucket,
                of,
                frag: 0,
                pos: 0,
            },
            Source::Stream { rx, producers } => Operand::Stream {
                rx,
                remaining: producers,
                current: None,
                pos: 0,
            },
        }
    }

    fn is_stream(&self) -> bool {
        matches!(self, Operand::Stream { .. })
    }

    /// Pulls the next tuple without ever blocking.
    fn pull(&mut self) -> Result<Pulled> {
        match self {
            Operand::Local { rel, pos } => {
                if *pos >= rel.len() {
                    return Ok(Pulled::Exhausted);
                }
                let t = rel.tuples()[*pos].clone();
                *pos += 1;
                Ok(Pulled::Tuple(t))
            }
            Operand::Filtered {
                fragments,
                key_col,
                bucket,
                of,
                frag,
                pos,
            } => {
                while *frag < fragments.len() {
                    let tuples = fragments[*frag].tuples();
                    while *pos < tuples.len() {
                        let t = &tuples[*pos];
                        *pos += 1;
                        if bucket_of(t.int(*key_col)?, *of) == *bucket {
                            return Ok(Pulled::Tuple(t.clone()));
                        }
                    }
                    *frag += 1;
                    *pos = 0;
                }
                Ok(Pulled::Exhausted)
            }
            Operand::Stream {
                rx,
                remaining,
                current,
                pos,
            } => loop {
                if let Some(batch) = current {
                    if *pos < batch.len() {
                        let t = batch.tuples()[*pos].clone();
                        *pos += 1;
                        return Ok(Pulled::Tuple(t));
                    }
                    // Dropping the batch returns its buffer to the pool.
                    *current = None;
                    *pos = 0;
                }
                if *remaining == 0 {
                    return Ok(Pulled::Exhausted);
                }
                match rx.try_recv() {
                    Ok(Msg::Batch(b)) => {
                        *current = Some(b);
                        *pos = 0;
                    }
                    Ok(Msg::End) => *remaining -= 1,
                    Err(TryRecvError::Empty) => return Ok(Pulled::Pending),
                    Err(TryRecvError::Disconnected) => {
                        return Err(RelalgError::InvalidPlan("stream closed before End".into()))
                    }
                }
            },
        }
    }
}

/// The join algorithm state behind the common feed loop.
enum Core {
    Simple(SimpleJoinState),
    Pipelining(PipeliningJoinState),
}

/// Execution phase of the instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Startup gate: fault injection and the configured startup cost.
    Start,
    /// Simple join only: drain the (immediate) build side into the table.
    Build,
    /// Feed operand tuples through the join, flushing output batches.
    Feed,
    /// Flush the output backlog and finalize the output port.
    Finish,
    /// Completion has been reported; the task is inert.
    Done,
}

/// One join operation-process instance as a schedulable [`Task`].
pub struct JoinTask {
    core: Core,
    left: Operand,
    right: Operand,
    output: OutputPort,
    /// Result tuples awaiting emission (shared with the join state).
    out: Vec<Tuple>,
    /// Emission cursor into `out` (for resumable routing).
    out_pos: usize,
    batch: usize,
    phase: Phase,
    /// Which side the pipelining feed polls first next step (fairness).
    turn: usize,
    stats: InstanceStats,
    op_id: usize,
    instance: usize,
    done_tx: Sender<DoneMsg>,
    startup_deadline: Option<Instant>,
    fail: bool,
    reported: bool,
    /// The query's cancel token; observed at every scheduling step.
    ctrl: Option<Arc<QueryCtrl>>,
}

impl JoinTask {
    /// Builds the task for one instance. `startup` delays the instance's
    /// first progress (the paper's per-process startup cost); `fail`
    /// injects a deterministic fault for teardown tests.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        algorithm: JoinAlgorithm,
        spec: EquiJoin,
        left: Source,
        right: Source,
        output: OutputPort,
        batch: usize,
        op_id: usize,
        instance: usize,
        done_tx: Sender<DoneMsg>,
        startup: Option<Duration>,
        fail: bool,
    ) -> JoinTask {
        Self::with_ctrl(
            algorithm, spec, left, right, output, batch, op_id, instance, done_tx, startup, fail,
            None,
        )
    }

    /// [`JoinTask::new`] plus the query's shared control block, so the
    /// instance aborts (reporting [`RelalgError::Canceled`] exactly once)
    /// as soon as the client cancels the query.
    #[allow(clippy::too_many_arguments)]
    pub fn with_ctrl(
        algorithm: JoinAlgorithm,
        spec: EquiJoin,
        left: Source,
        right: Source,
        output: OutputPort,
        batch: usize,
        op_id: usize,
        instance: usize,
        done_tx: Sender<DoneMsg>,
        startup: Option<Duration>,
        fail: bool,
        ctrl: Option<Arc<QueryCtrl>>,
    ) -> JoinTask {
        let core = match algorithm {
            JoinAlgorithm::Simple => Core::Simple(SimpleJoinState::new(spec)),
            JoinAlgorithm::Pipelining => Core::Pipelining(PipeliningJoinState::new(spec)),
        };
        JoinTask {
            core,
            left: Operand::new(left),
            right: Operand::new(right),
            output,
            out: Vec::with_capacity(batch),
            out_pos: 0,
            batch,
            phase: Phase::Start,
            turn: instance, // stagger polling order across instances
            stats: InstanceStats::default(),
            op_id,
            instance,
            done_tx,
            startup_deadline: startup.map(|d| Instant::now() + d),
            fail,
            reported: false,
            ctrl,
        }
    }

    fn report(&mut self, result: Result<InstanceStats>) {
        if !self.reported {
            self.reported = true;
            self.phase = Phase::Done;
            let _ = self.done_tx.send((self.op_id, result));
        }
    }

    /// Emits `out[out_pos..]`; `Ok(false)` means the output is
    /// backpressured and the task should yield.
    fn flush_out(&mut self) -> Result<bool> {
        let (emitted, done) = self.output.try_emit(&mut self.out, &mut self.out_pos)?;
        self.stats.tuples_out += emitted;
        Ok(done)
    }

    fn step_start(&mut self) -> Result<Step> {
        if self.fail {
            return Err(RelalgError::InvalidPlan(format!(
                "injected failure at op {} instance {}",
                self.op_id, self.instance
            )));
        }
        if let Some(deadline) = self.startup_deadline {
            if Instant::now() < deadline {
                return Ok(Step::Blocked);
            }
        }
        self.phase = match self.core {
            Core::Simple(_) => Phase::Build,
            Core::Pipelining(_) => Phase::Feed,
        };
        Ok(Step::Progress)
    }

    /// Simple join phase 1: drain the immediate build side into the table.
    /// No output is produced, so this never blocks — it only paces itself
    /// by the quantum.
    fn step_build(&mut self) -> Result<Step> {
        let Core::Simple(state) = &mut self.core else {
            unreachable!("build phase is simple-join only");
        };
        if self.left.is_stream() {
            return Err(RelalgError::InvalidPlan(
                "simple hash join cannot stream its build operand".into(),
            ));
        }
        for _ in 0..QUANTUM {
            match self.left.pull()? {
                Pulled::Tuple(t) => {
                    state.build(t)?;
                    self.stats.tuples_in[0] += 1;
                }
                Pulled::Exhausted => {
                    state.finish_build();
                    self.phase = Phase::Feed;
                    return Ok(Step::Progress);
                }
                Pulled::Pending => unreachable!("immediate operands never pend"),
            }
        }
        Ok(Step::Progress)
    }

    /// The common feed loop: pull from whichever operand has tuples ready,
    /// push through the join state, and flush full output batches.
    fn step_feed(&mut self) -> Result<Step> {
        if !self.flush_out()? {
            return Ok(Step::Blocked);
        }
        let mut moved = false;
        for _ in 0..QUANTUM {
            // The simple join only feeds its probe (right) side here; the
            // pipelining join alternates sides, preferring `turn` so two
            // live streams are drained fairly.
            let sides: [usize; 2] = match self.core {
                Core::Simple(_) => [1, 1],
                Core::Pipelining(_) => [self.turn % 2, (self.turn + 1) % 2],
            };
            self.turn = self.turn.wrapping_add(1);
            let mut pulled = None;
            let mut exhausted = 0usize;
            for &side in if sides[0] == sides[1] {
                &sides[..1]
            } else {
                &sides[..]
            } {
                let operand = if side == 0 {
                    &mut self.left
                } else {
                    &mut self.right
                };
                match operand.pull()? {
                    Pulled::Tuple(t) => {
                        pulled = Some((side, t));
                        break;
                    }
                    Pulled::Exhausted => exhausted += 1,
                    Pulled::Pending => {}
                }
            }
            let tried = if sides[0] == sides[1] { 1 } else { 2 };
            match pulled {
                Some((side, t)) => {
                    match &mut self.core {
                        Core::Simple(state) => state.probe(&t, &mut self.out)?,
                        Core::Pipelining(state) => {
                            if side == 0 {
                                state.push_left(t, &mut self.out)?
                            } else {
                                state.push_right(t, &mut self.out)?
                            }
                        }
                    }
                    self.stats.tuples_in[side] += 1;
                    moved = true;
                    if self.out.len() >= self.batch && !self.flush_out()? {
                        // Output backpressure mid-quantum: we did move
                        // tuples, so keep our rotation slot as Progress.
                        return Ok(Step::Progress);
                    }
                }
                None if exhausted == tried => {
                    self.phase = Phase::Finish;
                    return Ok(Step::Progress);
                }
                None => {
                    // At least one live side is pending and none has data.
                    return Ok(if moved { Step::Progress } else { Step::Blocked });
                }
            }
        }
        Ok(Step::Progress)
    }

    fn step_finish(&mut self) -> Result<Step> {
        if !self.flush_out()? {
            return Ok(Step::Blocked);
        }
        if !self.output.try_finish()? {
            return Ok(Step::Blocked);
        }
        self.stats.table_bytes = match &self.core {
            Core::Simple(state) => state.est_bytes() as u64,
            Core::Pipelining(state) => state.est_bytes() as u64,
        };
        let stats = self.stats;
        self.report(Ok(stats));
        Ok(Step::Done)
    }

    fn try_step(&mut self) -> Result<Step> {
        match self.phase {
            Phase::Start => self.step_start(),
            Phase::Build => self.step_build(),
            Phase::Feed => self.step_feed(),
            Phase::Finish => self.step_finish(),
            Phase::Done => Ok(Step::Done),
        }
    }
}

impl Task for JoinTask {
    fn step(&mut self) -> Step {
        self.stats.steps += 1;
        // Cancellation preempts whatever phase the instance is in: report
        // once and become inert, releasing channel endpoints on drop.
        if self.phase != Phase::Done && self.ctrl.as_ref().map(|c| c.is_canceled()).unwrap_or(false)
        {
            self.report(Err(RelalgError::Canceled));
            return Step::Done;
        }
        match self.try_step() {
            Ok(step) => {
                if step == Step::Blocked {
                    self.stats.blocked += 1;
                }
                step
            }
            Err(e) => {
                // Reporting drops nothing yet; the scheduler drops the
                // task right after, releasing its channel endpoints so
                // upstream and downstream instances unwind too.
                self.report(Err(e));
                Step::Done
            }
        }
    }
}

impl Drop for JoinTask {
    fn drop(&mut self) {
        // Dropped before completion (pool shutdown or a panic inside
        // step): tell the coordinator so it never hangs on a vanished
        // instance.
        if !self.reported {
            let op = self.op_id;
            let instance = self.instance;
            self.report(Err(RelalgError::InvalidPlan(format!(
                "op {op} instance {instance} dropped before completing"
            ))));
        }
    }
}

/// Drives a task to completion on the current thread (the dedicated-thread
/// path used by unit tests and benches). Yields, then naps, while blocked —
/// the counterpart of the worker pool's backoff.
pub fn drive_blocking(mut task: JoinTask) -> Step {
    let mut blocked = 0u32;
    loop {
        match task.step() {
            Step::Done => return Step::Done,
            Step::Progress => blocked = 0,
            Step::Blocked => {
                blocked += 1;
                if blocked < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}
