//! The selection operator: a predicate over the stream, with an optional
//! output projection.
//!
//! Filters pushed below the joins never reach this operator — the engine
//! evaluates them against base relations during setup (a selection-vector
//! scan, [`filter_selection`](mj_relalg::ops::filter_selection)) so
//! partitioning and the joins see fewer tuples. [`FilterOp`] is the
//! *residual* form: predicates the planner kept above the joins (pushdown
//! disabled, or benchmark comparisons) run here over the root join's
//! output stream. Each batch is evaluated by the branch-free columnar
//! kernels in [`mj_relalg::column`]: whole key columns compare into a
//! selection vector, and the survivors are gathered column-wise —
//! optionally through the projection that drops the predicate's carrier
//! columns — without touching rejected rows.

use std::ops::Range;

use mj_relalg::column::{self, ColumnBatch};
use mj_relalg::{Predicate, Projection, Result};

use crate::operator::op::{Absorb, OpKind, PhysicalOp};

/// A streaming selection: keep rows satisfying `predicate`, then apply
/// the optional projection. Operates on selection vectors — surviving
/// rows are gathered column-wise, never copied one by one.
pub struct FilterOp {
    predicate: Predicate,
    projection: Option<Projection>,
    /// Selection-vector scratch, reused across batches.
    sel: Vec<u32>,
}

impl FilterOp {
    /// Creates the operator. `projection` (applied *after* the predicate)
    /// lets a residual filter drop columns that were only carried for its
    /// own evaluation.
    pub fn new(predicate: Predicate, projection: Option<Projection>) -> Self {
        FilterOp {
            predicate,
            projection,
            sel: Vec::new(),
        }
    }
}

impl PhysicalOp for FilterOp {
    fn kind(&self) -> OpKind {
        OpKind::Filter
    }

    fn absorb_batch(
        &mut self,
        _side: usize,
        cols: &ColumnBatch,
        range: Range<usize>,
        out: &mut ColumnBatch,
    ) -> Result<Absorb> {
        self.sel.clear();
        column::select(&self.predicate, cols, range, &mut self.sel)?;
        match &self.projection {
            Some(p) => out.append_project_gather(cols, p.cols(), &self.sel)?,
            None => out.append_gather(cols, &self.sel)?,
        }
        Ok(Absorb::Continue)
    }

    fn est_bytes(&self) -> usize {
        // The selection-vector scratch is this operator's only held state;
        // report its real allocation so the memory guardrail sees it.
        self.sel.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::column::ColumnLayout;
    use mj_relalg::{CmpOp, Tuple};

    fn batch(rows: &[[i64; 2]]) -> ColumnBatch {
        let mut b = ColumnBatch::with_capacity(&ColumnLayout::ints(2), rows.len());
        for r in rows {
            b.push_tuple(&Tuple::from_ints(r)).unwrap();
        }
        b
    }

    #[test]
    fn filters_and_projects() {
        let mut op = FilterOp::new(
            Predicate::cmp_int(0, CmpOp::Lt, 5),
            Some(Projection::new(vec![1])),
        );
        let input = batch(&[[3, 30], [7, 70], [4, 40]]);
        let mut out = ColumnBatch::shapeless();
        op.absorb_batch(0, &input, 0..input.rows(), &mut out)
            .unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.int_col(0).unwrap(), &[30, 40]);
        assert_eq!(op.kind(), OpKind::Filter);
        let mut drained = ColumnBatch::shapeless();
        op.finish(&mut drained).unwrap();
        assert!(drained.is_empty(), "filters hold no state");
    }

    #[test]
    fn subranges_respect_offsets() {
        let mut op = FilterOp::new(Predicate::cmp_int(0, CmpOp::Ge, 5), None);
        let input = batch(&[[9, 90], [1, 10], [6, 60], [8, 80]]);
        let mut out = ColumnBatch::shapeless();
        // Skip row 0 entirely: only rows 1..4 are considered.
        op.absorb_batch(0, &input, 1..4, &mut out).unwrap();
        assert_eq!(out.int_col(0).unwrap(), &[6, 8]);
    }

    #[test]
    fn est_bytes_reports_selection_vector_allocation() {
        // Regression: the selection scratch used to be invisible to the
        // budget charge site (`OpTask::sync_budget` reads `est_bytes`).
        let mut op = FilterOp::new(Predicate::cmp_int(0, CmpOp::Ge, 0), None);
        assert_eq!(op.est_bytes(), 0, "no scratch before the first batch");
        let rows: Vec<[i64; 2]> = (0..100).map(|k| [k, k]).collect();
        let input = batch(&rows);
        let mut out = ColumnBatch::shapeless();
        op.absorb_batch(0, &input, 0..input.rows(), &mut out)
            .unwrap();
        assert!(
            op.est_bytes() >= 100 * std::mem::size_of::<u32>(),
            "selection vector capacity must be charged, got {}",
            op.est_bytes()
        );
    }

    #[test]
    fn predicate_errors_propagate() {
        let mut op = FilterOp::new(Predicate::cmp_int(9, CmpOp::Eq, 0), None);
        let input = batch(&[[1, 2]]);
        let mut out = ColumnBatch::shapeless();
        assert!(op.absorb_batch(0, &input, 0..1, &mut out).is_err());
    }
}
