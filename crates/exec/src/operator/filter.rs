//! The selection operator: a predicate over the stream, with an optional
//! output projection.
//!
//! Filters pushed below the joins never reach this operator — the engine
//! evaluates them against base relations during setup (a zero-copy
//! [`Relation::gather`](mj_relalg::Relation::gather) of the surviving
//! rows) so partitioning and the joins see fewer tuples. [`FilterOp`] is
//! the *residual* form: predicates the planner kept above the joins
//! (pushdown disabled, or benchmark comparisons) run here over the root
//! join's output stream, and the optional projection drops the predicate's
//! carrier columns once they have been tested.

use mj_relalg::{Predicate, Projection, Result, Tuple};

use crate::operator::op::{Absorb, OpKind, PhysicalOp};

/// A streaming selection: keep tuples satisfying `predicate`, then apply
/// the optional projection.
pub struct FilterOp {
    predicate: Predicate,
    projection: Option<Projection>,
}

impl FilterOp {
    /// Creates the operator. `projection` (applied *after* the predicate)
    /// lets a residual filter drop columns that were only carried for its
    /// own evaluation.
    pub fn new(predicate: Predicate, projection: Option<Projection>) -> Self {
        FilterOp {
            predicate,
            projection,
        }
    }
}

impl PhysicalOp for FilterOp {
    fn kind(&self) -> OpKind {
        OpKind::Filter
    }

    fn absorb(&mut self, _side: usize, tuple: Tuple, out: &mut Vec<Tuple>) -> Result<Absorb> {
        if self.predicate.eval(&tuple)? {
            out.push(match &self.projection {
                Some(p) => p.apply(&tuple)?,
                None => tuple,
            });
        }
        Ok(Absorb::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::CmpOp;

    #[test]
    fn filters_and_projects() {
        let mut op = FilterOp::new(
            Predicate::cmp_int(0, CmpOp::Lt, 5),
            Some(Projection::new(vec![1])),
        );
        let mut out = Vec::new();
        for v in [3i64, 7, 4] {
            op.absorb(0, Tuple::from_ints(&[v, v * 10]), &mut out)
                .unwrap();
        }
        assert_eq!(out, vec![Tuple::from_ints(&[30]), Tuple::from_ints(&[40])]);
        assert_eq!(op.kind(), OpKind::Filter);
        let mut drained = Vec::new();
        op.finish(&mut drained).unwrap();
        assert!(drained.is_empty(), "filters hold no state");
    }

    #[test]
    fn predicate_errors_propagate() {
        let mut op = FilterOp::new(Predicate::cmp_int(9, CmpOp::Eq, 0), None);
        let mut out = Vec::new();
        assert!(op.absorb(0, Tuple::from_ints(&[1]), &mut out).is_err());
    }
}
