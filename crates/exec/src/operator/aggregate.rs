//! The hash GROUP BY operator: partitioned aggregation over the join
//! pipeline's output.
//!
//! Like a join's build side, the aggregate's hash table is partitioned
//! across processors: the engine routes the input stream by hashing the
//! first (integer) grouping column, so every group lands wholly in one
//! instance and the per-instance tables shrink with the degree. Each
//! instance accumulates [`AggState`]s per group key and drains them in
//! [`finish`](PhysicalOp::finish) — aggregation is the one operator whose
//! output exists only after its input is exhausted. A global aggregate
//! (no GROUP BY) runs at degree 1 and emits exactly one row, even over an
//! empty input (COUNT = 0; MIN/MAX error, matching the sequential oracle).

use std::collections::HashMap;

use mj_relalg::ops::{AggFunc, AggSpec, AggState};
use mj_relalg::{Projection, Result, Tuple, Value};

use crate::operator::op::{Absorb, OpKind, PhysicalOp};

/// Rough per-group bookkeeping overhead (hash-map entry + key vec), for
/// the memory metrics.
const GROUP_OVERHEAD_BYTES: usize = 48;

/// A streaming hash GROUP BY: accumulates per-group aggregate state,
/// emitting `[group columns..., aggregates...]` rows on finish, optionally
/// reordered by `projection` (the SELECT list's order).
pub struct AggregateOp {
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    projection: Option<Projection>,
    groups: HashMap<Vec<Value>, Vec<AggState>>,
    /// Bytes estimate frozen at finish (the table is drained there).
    bytes: usize,
}

impl AggregateOp {
    /// Creates the operator. `group_cols` and the aggregate input columns
    /// index the input schema; `projection` indexes the
    /// `[group..., aggs...]` output layout.
    pub fn new(group_cols: Vec<usize>, aggs: Vec<AggSpec>, projection: Option<Projection>) -> Self {
        AggregateOp {
            group_cols,
            aggs,
            projection,
            groups: HashMap::new(),
            bytes: 0,
        }
    }

    /// Groups currently held (tests).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

impl PhysicalOp for AggregateOp {
    fn kind(&self) -> OpKind {
        OpKind::Aggregate
    }

    fn absorb(&mut self, _side: usize, tuple: Tuple, out: &mut Vec<Tuple>) -> Result<Absorb> {
        let _ = out; // aggregation emits only on finish
        let mut key = Vec::with_capacity(self.group_cols.len());
        for &c in &self.group_cols {
            key.push(tuple.get(c)?.clone());
        }
        let states = self
            .groups
            .entry(key)
            .or_insert_with(|| vec![AggState::new(); self.aggs.len()]);
        for (spec, state) in self.aggs.iter().zip(states.iter_mut()) {
            let v = if spec.func == AggFunc::Count {
                0
            } else {
                tuple.int(spec.col)?
            };
            state.update(v);
        }
        Ok(Absorb::Continue)
    }

    fn finish(&mut self, out: &mut Vec<Tuple>) -> Result<()> {
        // A global aggregate emits its one row even over an empty input.
        if self.group_cols.is_empty() && self.groups.is_empty() {
            self.groups
                .insert(Vec::new(), vec![AggState::new(); self.aggs.len()]);
        }
        self.bytes = self.groups.len()
            * (GROUP_OVERHEAD_BYTES
                + self.aggs.len() * std::mem::size_of::<AggState>()
                + self.group_cols.len() * std::mem::size_of::<Value>());
        out.reserve(self.groups.len());
        for (key, states) in self.groups.drain() {
            let mut values = key;
            values.reserve(states.len());
            for (spec, state) in self.aggs.iter().zip(states.iter()) {
                values.push(Value::Int(state.finish(spec.func)?));
            }
            let row = Tuple::new(values);
            out.push(match &self.projection {
                Some(p) => p.apply(&row)?,
                None => row,
            });
        }
        Ok(())
    }

    fn est_bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(AggFunc::Count, 0, "n"),
            AggSpec::new(AggFunc::Sum, 1, "s"),
            AggSpec::new(AggFunc::Min, 1, "lo"),
            AggSpec::new(AggFunc::Max, 1, "hi"),
        ]
    }

    #[test]
    fn grouped_matches_sequential_oracle() {
        let rows: Vec<[i64; 2]> = vec![[1, 10], [2, 5], [1, 20], [2, 7]];
        let mut op = AggregateOp::new(vec![0], specs(), None);
        let mut out = Vec::new();
        for r in &rows {
            op.absorb(0, Tuple::from_ints(r), &mut out).unwrap();
        }
        assert!(out.is_empty(), "no output before finish");
        assert_eq!(op.group_count(), 2);
        op.finish(&mut out).unwrap();
        out.sort_unstable();
        assert_eq!(
            out,
            vec![
                Tuple::from_ints(&[1, 2, 30, 10, 20]),
                Tuple::from_ints(&[2, 2, 12, 5, 7]),
            ]
        );
        assert!(op.est_bytes() > 0);
    }

    #[test]
    fn global_aggregate_emits_one_row_even_when_empty() {
        let mut op = AggregateOp::new(vec![], vec![AggSpec::new(AggFunc::Count, 0, "n")], None);
        let mut out = Vec::new();
        op.finish(&mut out).unwrap();
        assert_eq!(out, vec![Tuple::from_ints(&[0])]);
        // MIN over nothing errors like the oracle.
        let mut op = AggregateOp::new(vec![], vec![AggSpec::new(AggFunc::Min, 0, "m")], None);
        assert!(op.finish(&mut Vec::new()).is_err());
    }

    #[test]
    fn projection_reorders_output() {
        // Layout [g, count] projected to [count, g].
        let mut op = AggregateOp::new(
            vec![0],
            vec![AggSpec::new(AggFunc::Count, 0, "n")],
            Some(Projection::new(vec![1, 0])),
        );
        let mut out = Vec::new();
        op.absorb(0, Tuple::from_ints(&[7, 1]), &mut out).unwrap();
        op.finish(&mut out).unwrap();
        assert_eq!(out, vec![Tuple::from_ints(&[1, 7])]);
    }
}
