//! The hash GROUP BY operator: partitioned aggregation over the join
//! pipeline's output.
//!
//! Like a join's build side, the aggregate's hash table is partitioned
//! across processors: the engine routes the input stream by hashing the
//! first (integer) grouping column, so every group lands wholly in one
//! instance and the per-instance tables shrink with the degree. Each
//! instance accumulates [`AggState`]s per group key and drains them in
//! [`finish`](PhysicalOp::finish) — aggregation is the one operator whose
//! output exists only after its input is exhausted. A global aggregate
//! (no GROUP BY) runs at degree 1 and emits exactly one row, even over an
//! empty input (COUNT = 0; MIN/MAX error, matching the sequential oracle).
//!
//! The update loop is columnar: the aggregate input columns are resolved
//! to `i64` slices once per batch, the group key is assembled in a reused
//! scratch buffer, and the steady state (key already present) performs no
//! allocation — only a hash lookup plus per-column state updates.

use std::collections::HashMap;
use std::ops::Range;

use mj_relalg::column::ColumnBatch;
use mj_relalg::ops::{AggFunc, AggSpec, AggState};
use mj_relalg::{Projection, Result, Tuple, Value};

use crate::operator::op::{Absorb, OpKind, PhysicalOp};

/// Rough per-group bookkeeping overhead (hash-map entry + key vec), for
/// the memory metrics.
const GROUP_OVERHEAD_BYTES: usize = 48;

/// A streaming hash GROUP BY: accumulates per-group aggregate state,
/// emitting `[group columns..., aggregates...]` rows on finish, optionally
/// reordered by `projection` (the SELECT list's order).
pub struct AggregateOp {
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    projection: Option<Projection>,
    groups: HashMap<Vec<Value>, Vec<AggState>>,
    /// Group-key scratch, reused across rows (steady state allocates only
    /// when a new group appears).
    key_scratch: Vec<Value>,
    /// Bytes estimate, refreshed after every absorbed batch so the memory
    /// guardrail sees the table grow.
    bytes: usize,
}

impl AggregateOp {
    /// Creates the operator. `group_cols` and the aggregate input columns
    /// index the input schema; `projection` indexes the
    /// `[group..., aggs...]` output layout.
    pub fn new(group_cols: Vec<usize>, aggs: Vec<AggSpec>, projection: Option<Projection>) -> Self {
        AggregateOp {
            group_cols,
            aggs,
            projection,
            groups: HashMap::new(),
            key_scratch: Vec::new(),
            bytes: 0,
        }
    }

    /// Groups currently held (tests).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    fn refresh_bytes(&mut self) {
        self.bytes = self.groups.len()
            * (GROUP_OVERHEAD_BYTES
                + self.aggs.len() * std::mem::size_of::<AggState>()
                + self.group_cols.len() * std::mem::size_of::<Value>());
    }
}

impl PhysicalOp for AggregateOp {
    fn kind(&self) -> OpKind {
        OpKind::Aggregate
    }

    fn absorb_batch(
        &mut self,
        _side: usize,
        cols: &ColumnBatch,
        range: Range<usize>,
        out: &mut ColumnBatch,
    ) -> Result<Absorb> {
        let _ = out; // aggregation emits only on finish
                     // Resolve each aggregate's input column to an `i64` slice once per
                     // batch (COUNT reads no input). Non-integer aggregate inputs error
                     // exactly like the sequential oracle.
        let mut agg_inputs: Vec<Option<&[i64]>> = Vec::with_capacity(self.aggs.len());
        for spec in &self.aggs {
            agg_inputs.push(if spec.func == AggFunc::Count {
                None
            } else {
                Some(cols.int_col(spec.col)?)
            });
        }
        // Global aggregate: no key assembly at all — fold each input
        // column's whole range through the SIMD slice kernels.
        if self.group_cols.is_empty() {
            let states = self
                .groups
                .entry(Vec::new())
                .or_insert_with(|| vec![AggState::new(); self.aggs.len()]);
            for (input, state) in agg_inputs.iter().zip(states.iter_mut()) {
                match input {
                    Some(col) => state.update_slice(&col[range.clone()]),
                    None => state.update_repeat(0, range.len()),
                }
            }
            self.refresh_bytes();
            return Ok(Absorb::Continue);
        }
        for r in range {
            self.key_scratch.clear();
            for &c in &self.group_cols {
                self.key_scratch.push(cols.value_at(c, r)?);
            }
            // Steady state (key already present): one hash lookup, no
            // allocation. Only a new group clones the key out of scratch.
            if let Some(states) = self.groups.get_mut(&self.key_scratch) {
                for (input, state) in agg_inputs.iter().zip(states.iter_mut()) {
                    state.update(input.map_or(0, |col| col[r]));
                }
            } else {
                let mut states = vec![AggState::new(); self.aggs.len()];
                for (input, state) in agg_inputs.iter().zip(states.iter_mut()) {
                    state.update(input.map_or(0, |col| col[r]));
                }
                self.groups.insert(self.key_scratch.clone(), states);
            }
        }
        self.refresh_bytes();
        Ok(Absorb::Continue)
    }

    fn finish(&mut self, out: &mut ColumnBatch) -> Result<()> {
        // A global aggregate emits its one row even over an empty input.
        if self.group_cols.is_empty() && self.groups.is_empty() {
            self.groups
                .insert(Vec::new(), vec![AggState::new(); self.aggs.len()]);
        }
        self.refresh_bytes();
        for (key, states) in self.groups.drain() {
            let mut values = key;
            values.reserve(states.len());
            for (spec, state) in self.aggs.iter().zip(states.iter()) {
                values.push(Value::Int(state.finish(spec.func)?));
            }
            let row = Tuple::new(values);
            out.push_tuple(&match &self.projection {
                Some(p) => p.apply(&row)?,
                None => row,
            })?;
        }
        Ok(())
    }

    fn est_bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::column::ColumnLayout;

    fn batch(rows: &[[i64; 2]]) -> ColumnBatch {
        let mut b = ColumnBatch::with_capacity(&ColumnLayout::ints(2), rows.len());
        for r in rows {
            b.push_tuple(&Tuple::from_ints(r)).unwrap();
        }
        b
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(AggFunc::Count, 0, "n"),
            AggSpec::new(AggFunc::Sum, 1, "s"),
            AggSpec::new(AggFunc::Min, 1, "lo"),
            AggSpec::new(AggFunc::Max, 1, "hi"),
        ]
    }

    fn sorted_rows(out: &ColumnBatch) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = (0..out.rows()).map(|r| out.row(r).unwrap()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn grouped_matches_sequential_oracle() {
        let input = batch(&[[1, 10], [2, 5], [1, 20], [2, 7]]);
        let mut op = AggregateOp::new(vec![0], specs(), None);
        let mut out = ColumnBatch::shapeless();
        op.absorb_batch(0, &input, 0..input.rows(), &mut out)
            .unwrap();
        assert!(out.is_empty(), "no output before finish");
        assert_eq!(op.group_count(), 2);
        assert!(op.est_bytes() > 0, "table growth visible before finish");
        op.finish(&mut out).unwrap();
        assert_eq!(
            sorted_rows(&out),
            vec![
                Tuple::from_ints(&[1, 2, 30, 10, 20]),
                Tuple::from_ints(&[2, 2, 12, 5, 7]),
            ]
        );
    }

    #[test]
    fn global_aggregate_emits_one_row_even_when_empty() {
        let mut op = AggregateOp::new(vec![], vec![AggSpec::new(AggFunc::Count, 0, "n")], None);
        let mut out = ColumnBatch::shapeless();
        op.finish(&mut out).unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.row(0).unwrap(), Tuple::from_ints(&[0]));
        // MIN over nothing errors like the oracle.
        let mut op = AggregateOp::new(vec![], vec![AggSpec::new(AggFunc::Min, 0, "m")], None);
        assert!(op.finish(&mut ColumnBatch::shapeless()).is_err());
    }

    #[test]
    fn projection_reorders_output() {
        // Layout [g, count] projected to [count, g].
        let mut op = AggregateOp::new(
            vec![0],
            vec![AggSpec::new(AggFunc::Count, 0, "n")],
            Some(Projection::new(vec![1, 0])),
        );
        let mut out = ColumnBatch::shapeless();
        op.absorb_batch(0, &batch(&[[7, 1]]), 0..1, &mut out)
            .unwrap();
        op.finish(&mut out).unwrap();
        assert_eq!(out.row(0).unwrap(), Tuple::from_ints(&[1, 7]));
    }

    #[test]
    fn subranges_only_touch_their_rows() {
        let input = batch(&[[1, 100], [1, 1], [1, 2]]);
        let mut op = AggregateOp::new(vec![0], vec![AggSpec::new(AggFunc::Sum, 1, "s")], None);
        let mut out = ColumnBatch::shapeless();
        op.absorb_batch(0, &input, 1..3, &mut out).unwrap();
        op.finish(&mut out).unwrap();
        assert_eq!(out.row(0).unwrap(), Tuple::from_ints(&[1, 3]));
    }
}
