//! Physical operator instances: the bodies of operation processes.
//!
//! One state machine ([`task::JoinTask`]) implements both join algorithms;
//! the worker pool schedules it cooperatively, and the `run_*_instance`
//! functions drive it to completion on a dedicated thread (tests, benches).

pub mod output;
pub mod pipe_join;
pub mod simple_join;
pub mod task;

pub use output::OutputPort;
pub use pipe_join::run_pipelining_instance;
pub use simple_join::run_simple_instance;
pub use task::JoinTask;
