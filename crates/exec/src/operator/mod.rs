//! Physical operator instances: the bodies of operation processes.
//!
//! [`PhysicalOp`] is the computational core of one operator — absorb
//! tuples, emit tuples, optionally build and drain — and
//! [`task::OpTask`] is the generic cooperative driver that runs any of
//! them on the shared worker pool (or, via the `run_*_instance` functions,
//! to completion on a dedicated thread for tests and benches). Both
//! hash-join algorithms, the streaming filter, the partitioned hash GROUP
//! BY, and the early-terminating limit are `PhysicalOp` implementations.

pub mod aggregate;
pub mod filter;
pub mod limit;
pub mod op;
pub mod output;
pub mod pipe_join;
pub mod simple_join;
pub mod task;

pub use aggregate::AggregateOp;
pub use filter::FilterOp;
pub use limit::LimitOp;
pub use op::{join_op, Absorb, InputMode, OpKind, PhysicalOp, PipeliningJoinOp, SimpleJoinOp};
pub use output::OutputPort;
pub use pipe_join::run_pipelining_instance;
pub use simple_join::run_simple_instance;
pub use task::OpTask;
