//! Physical operator instances: the bodies of operation processes.

pub mod output;
pub mod pipe_join;
pub mod simple_join;

pub use output::OutputPort;
pub use pipe_join::run_pipelining_instance;
pub use simple_join::run_simple_instance;
