//! The real parallel execution engine — a PRISMA/DB query-execution-engine
//! analogue on host threads.
//!
//! The engine interprets the same [`mj_core::plan_ir::ParallelPlan`] the
//! simulator consumes, but physically: every operation process is a
//! cooperative task multiplexed onto a **fixed worker pool**
//! ([`sched::WorkerPool`], the paper's §4 processor set) shared by all
//! in-flight queries, tuple streams are bounded crossbeam channels (n×m
//! per redistribution, exactly as §3.5 counts them), base relations are
//! pre-fragmented "ideally" per §4.1, and materialized intermediates live
//! in a shared-nothing [`mj_storage::FragmentStore`] namespaced per query.
//!
//! A task that would block on a channel yields its worker instead of
//! parking a thread, so the pool runs any number of concurrent queries on
//! `ExecConfig::workers` OS threads total. The [`Engine`] facade is the
//! concurrent entry point: build it once over a shared catalog, call
//! [`Engine::run`] from as many threads as you like.
//!
//! On a laptop-class host this engine cannot demonstrate 80-way speedups —
//! its purpose is (a) to prove the four strategies are real, runnable
//! dataflows, (b) to validate that every strategy returns exactly the
//! sequential evaluator's result, and (c) to cross-check the simulator's
//! relative orderings at small processor counts.
//!
//! The [`planner`] module closes the loop upstream: it takes an arbitrary
//! equi-join [`mj_plan::query::JoinQuery`], picks the join tree with the
//! phase-1 optimizers, costs all four strategies (with processor
//! allocation) under the analytic schedule model, and lowers the winner
//! into a `ParallelPlan` + [`QueryBinding`] ready for [`Engine::run`].
//!
//! The [`session`] module is the public front door over all of it:
//! [`Database::open`](session::Database::open) +
//! [`register`](session::Database::register) +
//! [`query`](session::Database::query) parse a text query, bind it against
//! the catalog, plan it, and return a cancellable [`QueryHandle`] whose
//! [`ResultStream`] delivers batches while the query runs — no
//! `QueryGraph`/`generate`/`QueryBinding` assembly in user code.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod binding;
pub mod budget;
pub mod config;
pub mod engine;
pub mod families;
#[cfg(feature = "faults")]
pub mod faults;
pub mod handle;
mod late;
pub mod metrics;
pub mod operator;
pub mod planner;
pub mod sched;
pub mod session;
pub mod source;
pub mod stream;

pub use binding::{PipelineStage, QueryBinding, StageKind};
pub use budget::MemoryBudget;
pub use config::{ExecConfig, FailPoint, LateMode, QueryOptions, DEFAULT_ADMISSION_QUEUE};
pub use engine::{run_plan, Engine, ExecOutcome};
pub use families::{chain_query_sql, generate_family, star_query_sql, FamilyInstance, QueryFamily};
#[cfg(feature = "faults")]
pub use faults::{FaultKind, FaultPlan, FaultPoint};
pub use handle::{BatchPoll, QueryHandle, QueryOutcome, QueryStatus, ResultStream};
pub use metrics::{
    EngineStats, HistogramSnapshot, LatencyHistogram, MetricDef, MetricKind, Metrics,
    MetricsSnapshot, OpMetrics, OpMetricsKind, LATENCY_BUCKET_BOUNDS_MS, METRICS_ACCEPT_LIST,
};
pub use operator::{
    AggregateOp, FilterOp, InputMode, LimitOp, OpKind, OpTask, PhysicalOp, PipeliningJoinOp,
    SimpleJoinOp,
};
pub use planner::{query_from_catalog, PlanChoice, PlannedQuery, Planner, PlannerOptions};
pub use sched::WorkerPool;
pub use session::{Database, DbConfig, MjError, MjResult, PreparedStatement, PLAN_CACHE_CAPACITY};
