//! The real parallel execution engine — a PRISMA/DB query-execution-engine
//! analogue on host threads.
//!
//! The engine interprets the same [`mj_core::plan_ir::ParallelPlan`] the
//! simulator consumes, but physically: every operation process is an OS
//! thread pinned to a logical processor id, tuple streams are bounded
//! crossbeam channels (n×m per redistribution, exactly as §3.5 counts
//! them), base relations are pre-fragmented "ideally" per §4.1, and
//! materialized intermediates live in a shared-nothing
//! [`mj_storage::FragmentStore`].
//!
//! On a laptop-class host this engine cannot demonstrate 80-way speedups —
//! its purpose is (a) to prove the four strategies are real, runnable
//! dataflows, (b) to validate that every strategy returns exactly the
//! sequential evaluator's result, and (c) to cross-check the simulator's
//! relative orderings at small processor counts.

#![warn(missing_docs)]

pub mod binding;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod operator;
pub mod source;
pub mod stream;

pub use binding::QueryBinding;
pub use config::{ExecConfig, FailPoint};
pub use engine::{run_plan, ExecOutcome};
pub use metrics::{Metrics, OpMetrics};
