//! Plan interpretation on the shared worker pool: build operator tasks,
//! wire streams, schedule phases, stream the result to the client.
//!
//! The [`Engine`] owns a fixed-size [`WorkerPool`] and a shared
//! [`FragmentStore`]; queries are submitted with [`Engine::submit`], which
//! returns a [`QueryHandle`] immediately — the query's operator instances
//! are multiplexed onto the same bounded worker set (the paper's fixed
//! processor pool, §4) while a per-query coordinator thread tracks
//! completions. The root operator's instances feed a bounded client
//! channel instead of materializing the result: the handle's
//! [`ResultStream`] pulls batches while the query is still running, and a
//! slow client backpressures the worker pool. [`Engine::run`] and
//! [`run_plan`] remain as thin wrappers that drain the stream into a
//! materialized [`ExecOutcome`].
//!
//! Per-query state (tuple streams, metrics, the coordinator waiting on
//! instance completions) lives on the coordinator; materialized
//! intermediates go into the shared store under a per-query namespace that
//! is reclaimed when the query finishes — including when it is cancelled:
//! the handle's cancel token is observed by every task on its next
//! scheduling step, each reports exactly once, and the coordinator
//! reclaims the namespace before the outcome is released.
//!
//! Scheduling order follows the right-deep segmentation: every operator
//! task is submitted with its segment's topological wave index
//! ([`Segmentation::node_waves`](mj_plan::segment::Segmentation)) as its
//! priority, so deeper segments start first and independent segments of
//! one wave interleave on the pool.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{mpsc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use mj_core::plan_ir::{OperandSource, ParallelPlan, PlanOp};
use mj_core::validate::validate_plan;
use mj_plan::segment::segments;
use mj_relalg::column::ColumnLayout;
use mj_relalg::ops::filter_gather;
use mj_relalg::{RelalgError, Relation, RelationProvider, Result, Tuple};
use mj_storage::{hash_partition, FragmentStore};

use crate::binding::{QueryBinding, StageKind};
use crate::budget::MemoryBudget;
use crate::config::{ExecConfig, QueryOptions};
use crate::handle::{QueryCtrl, QueryHandle, QueryOutcome, ResultStream};
use crate::metrics::counters::EngineCounters;
use crate::metrics::{EngineStats, Metrics, MetricsSnapshot};
use crate::operator::task::{DoneMsg, OpTask};
use crate::operator::{AggregateOp, FilterOp, LimitOp, OutputPort, PhysicalOp};
use crate::sched::WorkerPool;
use crate::source::Source;
use crate::stream::{client_channel, operand_channels, BatchPool, ClientSink, Msg, Router};

/// The producer side of one redistribution edge: senders to the consumer's
/// instances, the consumer's routing key column, and the edge's shared
/// batch-buffer pool.
type OutEdge = (Vec<Sender<Msg>>, usize, Arc<BatchPool>);

/// Producer op id -> its output edge.
type OutStreams = HashMap<usize, OutEdge>;

/// The endpoints of the query's root-result channel before the root
/// operation spawns.
type ClientEdge = (Sender<Msg>, Arc<BatchPool>);

/// The materialized result of executing a plan to completion — what the
/// blocking wrappers ([`Engine::run`], [`run_plan`]) assemble by draining
/// the [`ResultStream`]. Streaming clients use [`Engine::submit`] and
/// never materialize this.
#[derive(Debug)]
pub struct ExecOutcome {
    /// The query result (the root join's output, drained from the stream).
    pub relation: Relation,
    /// Response time: scheduling start to last operation process exit
    /// (the paper's metric; initial data fragmentation is setup, not
    /// response time, matching §4.1's pre-fragmented starting state).
    pub elapsed: Duration,
    /// End-to-end time from submission to the first result batch reaching
    /// the draining client; `None` when the query produced no batches.
    pub time_to_first_batch: Option<Duration>,
    /// Execution metrics.
    pub metrics: Metrics,
}

/// A shared, concurrency-safe execution engine: one fixed worker pool and
/// one fragment store serving any number of in-flight queries.
///
/// ```text
/// let engine = Engine::new(catalog, ExecConfig::default())?;   // N workers
/// // from any number of threads:
/// let mut handle = engine.submit(&plan, &binding)?;            // streaming
/// for batch in handle.stream() { /* incremental consumption */ }
/// let outcome = engine.run(&plan, &binding)?;                  // materialized
/// ```
///
/// Thread count of the *worker pool* is bounded by `config.workers` for
/// the engine's whole lifetime — running more queries multiplexes more
/// tasks onto the same workers instead of spawning threads. (Each
/// submitted query additionally holds one mostly-idle coordinator thread
/// for its own lifetime; coordinators never execute operator work.)
pub struct Engine {
    provider: Arc<dyn RelationProvider + Send + Sync>,
    config: ExecConfig,
    pool: Arc<WorkerPool>,
    store: Arc<FragmentStore>,
    next_query: AtomicU64,
    admission: Option<Arc<Admission>>,
    counters: Arc<EngineCounters>,
}

/// Admission control: a counting gate of `max` concurrently running
/// queries fronted by a bounded FIFO ticket queue. Submissions beyond the
/// queue bound are rejected with [`RelalgError::Overloaded`].
struct Admission {
    max: usize,
    queue_limit: usize,
    state: Mutex<AdmissionState>,
    ready: Condvar,
}

struct AdmissionState {
    /// Queries currently holding a run slot.
    active: usize,
    /// Next ticket to hand out to a waiter.
    next_ticket: u64,
    /// Ticket currently at the head of the FIFO queue.
    serving: u64,
}

impl Admission {
    fn new(max: usize, queue_limit: usize) -> Arc<Self> {
        Arc::new(Admission {
            max,
            queue_limit,
            state: Mutex::new(AdmissionState {
                active: 0,
                next_ticket: 0,
                serving: 0,
            }),
            ready: Condvar::new(),
        })
    }

    /// Takes a run slot, waiting FIFO behind earlier submissions if the
    /// engine is saturated; errors with `Overloaded` when the wait queue
    /// is full. The returned permit releases the slot on drop.
    fn acquire(self: &Arc<Self>, counters: &EngineCounters) -> Result<AdmissionPermit> {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let waiting = (s.next_ticket - s.serving) as usize;
        if s.active < self.max && waiting == 0 {
            s.active += 1;
            return Ok(AdmissionPermit {
                admission: self.clone(),
            });
        }
        if waiting >= self.queue_limit {
            counters.note_rejected();
            return Err(RelalgError::Overloaded {
                queue_depth: waiting,
            });
        }
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        while !(s.serving == ticket && s.active < self.max) {
            s = self.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        s.serving += 1;
        s.active += 1;
        drop(s);
        // The next waiter's ticket may already be serviceable (several
        // slots freed at once); make sure it rechecks.
        self.ready.notify_all();
        Ok(AdmissionPermit {
            admission: self.clone(),
        })
    }

    fn release(&self) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.active -= 1;
        drop(s);
        self.ready.notify_all();
    }
}

/// RAII run slot: held by the query's coordinator for the query's whole
/// lifetime, released (waking FIFO waiters) when the coordinator finishes.
struct AdmissionPermit {
    admission: Arc<Admission>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.admission.release();
    }
}

impl Engine {
    /// Creates an engine over `provider` (the base-relation store shared
    /// by all queries) with `config.workers` pool threads.
    pub fn new(
        provider: Arc<dyn RelationProvider + Send + Sync>,
        config: ExecConfig,
    ) -> Result<Engine> {
        config.validate().map_err(RelalgError::InvalidPlan)?;
        Ok(Engine {
            provider,
            config,
            pool: WorkerPool::new(config.workers),
            store: Arc::new(FragmentStore::new(0)),
            next_query: AtomicU64::new(0),
            admission: config
                .max_concurrent
                .map(|max| Admission::new(max, config.admission_queue)),
            counters: Arc::new(EngineCounters::default()),
        })
    }

    /// Engine-lifetime robustness counters: completions, rejections,
    /// timeouts, stalls, budget aborts, contained panics, peak bytes,
    /// latency histograms — one atomically consistent snapshot (all
    /// per-query counters read under a single lock), overlaid with the
    /// worker pool's live busy/idle gauges.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.counters.snapshot();
        stats.workers_total = self.pool.workers() as u64;
        stats.workers_busy = self.pool.busy().min(stats.workers_total);
        stats
    }

    /// The accept-listed metrics export built from [`stats`](Self::stats):
    /// only the series in [`crate::metrics::METRICS_ACCEPT_LIST`], ready
    /// to render as Prometheus text or JSON.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::from_stats(&self.stats())
    }

    /// The engine configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Worker threads in the shared pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The shared scheduler pool (diagnostics).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The shared fragment store holding materialized intermediates of all
    /// in-flight queries (query-namespaced; reclaimed per query).
    pub fn store(&self) -> &Arc<FragmentStore> {
        &self.store
    }

    /// Submits `plan` for execution and returns a [`QueryHandle`]
    /// immediately. Callable concurrently from many threads; each query
    /// gets its own handle, stream, metrics, and cancel token while all of
    /// them share the engine's fixed worker pool.
    pub fn submit(&self, plan: &ParallelPlan, binding: &QueryBinding) -> Result<QueryHandle> {
        self.submit_with(plan, binding, QueryOptions::default())
    }

    /// [`submit`](Engine::submit) with per-query [`QueryOptions`]
    /// (deadline, memory budget, fault plan). Per-query options override
    /// the engine-wide [`ExecConfig`] defaults.
    ///
    /// When `max_concurrent` admission control is configured, this call
    /// blocks FIFO behind earlier submissions while the engine is
    /// saturated, and returns [`RelalgError::Overloaded`] once the wait
    /// queue is also full.
    pub fn submit_with(
        &self,
        plan: &ParallelPlan,
        binding: &QueryBinding,
        opts: QueryOptions,
    ) -> Result<QueryHandle> {
        // Submission instant: anchors both the duration histogram and the
        // client-side time-to-first-batch measurement.
        let submitted_at = Instant::now();
        // Count the submission before admission control so rejected
        // submissions are included in `queries_submitted` — that is what
        // keeps every terminal-outcome counter summing to at most it.
        self.counters.note_submitted();
        let permit = match &self.admission {
            Some(admission) => Some(admission.acquire(&self.counters)?),
            None => None,
        };
        let (client, stream, ctrl) = open_result_channel(
            plan,
            binding,
            &self.config,
            &opts,
            submitted_at,
            Some(self.counters.clone()),
        )?;
        self.counters.note_started();

        let plan = plan.clone();
        let binding = binding.clone();
        let provider = self.provider.clone();
        let config = self.config;
        let pool = self.pool.clone();
        let store = self.store.clone();
        let query_id = self.next_query.fetch_add(1, Ordering::Relaxed);
        let coord_ctrl = ctrl.clone();
        let counters = self.counters.clone();
        let coordinator = std::thread::Builder::new()
            .name("mj-coordinator".into())
            .spawn(move || {
                let result = run_query(
                    &plan,
                    &binding,
                    provider.as_ref(),
                    &config,
                    &opts,
                    &pool,
                    &store,
                    query_id,
                    client,
                    &coord_ctrl,
                );
                coord_ctrl.finish(&result);
                counters.record(
                    &result,
                    coord_ctrl.panics(),
                    coord_ctrl.budget().peak(),
                    submitted_at.elapsed(),
                );
                // Release the admission slot only after the query has
                // fully quiesced and its fragments are reclaimed, so the
                // concurrency cap bounds actual resource use.
                drop(permit);
                result
            })
            .map_err(|e| {
                // The query was counted active but its coordinator never
                // ran; record the failure here so the gauge and terminal
                // counters stay consistent.
                let err: Result<QueryOutcome> = Err(RelalgError::InvalidPlan(format!(
                    "cannot spawn coordinator: {e}"
                )));
                self.counters.record(&err, 0, 0, submitted_at.elapsed());
                RelalgError::InvalidPlan(format!("cannot spawn coordinator: {e}"))
            })?;
        Ok(QueryHandle::new(stream, ctrl, coordinator))
    }

    /// Executes `plan` to completion, draining the result stream into a
    /// materialized [`ExecOutcome`]. Callable concurrently from many
    /// threads; each call gets its own [`Metrics`].
    pub fn run(&self, plan: &ParallelPlan, binding: &QueryBinding) -> Result<ExecOutcome> {
        let mut handle = self.submit(plan, binding)?;
        let mut stream = handle.stream();
        let schema = stream.schema().clone();
        let mut tuples: Vec<Tuple> = Vec::new();
        while let Some(mut batch) = stream.next_batch() {
            tuples.extend(batch.drain());
        }
        drop(stream); // fully drained: dropping a finished stream is a no-op
        let outcome = handle.outcome()?;
        Ok(ExecOutcome {
            relation: Relation::new_unchecked(schema, tuples),
            elapsed: outcome.elapsed,
            time_to_first_batch: outcome.time_to_first_batch,
            metrics: outcome.metrics,
        })
    }
}

/// Executes `plan` against the relations in `provider` on a transient
/// single-query engine (a pool of `config.workers` threads is created for
/// the call and joined before it returns), draining the stream into a
/// materialized [`ExecOutcome`]. Long-lived callers, concurrent
/// workloads, and streaming clients should hold an [`Engine`] instead.
pub fn run_plan(
    plan: &ParallelPlan,
    binding: &QueryBinding,
    provider: &(dyn RelationProvider + Sync),
    config: &ExecConfig,
) -> Result<ExecOutcome> {
    let opts = QueryOptions::default();
    let (client, mut stream, ctrl) =
        open_result_channel(plan, binding, config, &opts, Instant::now(), None)?;
    let schema = stream.schema().clone();
    let pool = WorkerPool::new(config.workers);
    let store = Arc::new(FragmentStore::new(plan.processors));

    std::thread::scope(|scope| {
        let pool = &pool;
        let store = &store;
        let ctrl_ref = &ctrl;
        let opts_ref = &opts;
        let coordinator = scope.spawn(move || {
            run_query(
                plan, binding, provider, config, opts_ref, pool, store, 0, client, ctrl_ref,
            )
        });
        let mut tuples: Vec<Tuple> = Vec::new();
        while let Some(mut batch) = stream.next_batch() {
            tuples.extend(batch.drain());
        }
        let outcome = coordinator
            .join()
            .map_err(|_| RelalgError::Internal("coordinator thread panicked".into()))??;
        Ok(ExecOutcome {
            relation: Relation::new_unchecked(schema.clone(), tuples),
            elapsed: outcome.elapsed,
            time_to_first_batch: ctrl.time_to_first_batch(),
            metrics: outcome.metrics,
        })
    })
}

/// Validates the configuration and plan, locates the root operation, and
/// opens one query's bounded result channel: the producer-side
/// [`ClientEdge`] for the coordinator, the client-side [`ResultStream`],
/// and the shared cancel/status block. The single setup path behind both
/// [`Engine::submit`] and [`run_plan`].
fn open_result_channel(
    plan: &ParallelPlan,
    binding: &QueryBinding,
    config: &ExecConfig,
    opts: &QueryOptions,
    submitted_at: Instant,
    counters: Option<Arc<EngineCounters>>,
) -> Result<(ClientEdge, ResultStream, Arc<QueryCtrl>)> {
    config.validate().map_err(RelalgError::InvalidPlan)?;
    validate_plan(plan)?;
    let root = plan.tree.root();
    let root_degree = plan
        .op_for_join(root)
        .map(PlanOp::degree)
        .ok_or_else(|| RelalgError::InvalidPlan("plan has no root operation".into()))?;
    // With pipeline stages attached, the *last stage* feeds the client.
    let producers = binding.stages().last().map_or(root_degree, |s| s.degree);
    let schema = binding.result_schema(root)?.clone();
    // The client edge's buffer pool is typed with the result's column
    // layout so its budget accounting charges real columnar bytes.
    let (tx, rx, bpool) = client_channel(
        producers,
        config.channel_capacity,
        ColumnLayout::of(&schema),
    );
    // Per-query limits override engine-wide defaults.
    let deadline = opts
        .deadline()
        .or(config.deadline)
        .map(|d| Instant::now() + d);
    let budget = match opts.memory_budget().or(config.memory_budget) {
        Some(limit) => MemoryBudget::with_limit(limit),
        None => MemoryBudget::unlimited(),
    };
    bpool.set_budget(budget.clone());
    let ctrl = QueryCtrl::with_limits(deadline, budget);
    let stream = ResultStream::new(rx, producers, schema, ctrl.clone(), submitted_at, counters);
    Ok(((tx, bpool), stream, ctrl))
}

/// Per-query coordinator state while its tasks run on the pool.
struct QueryRun<'a> {
    plan: &'a ParallelPlan,
    /// The binding operators are wired from: the narrow rewrite of a
    /// late-materialized query, otherwise the original.
    binding: &'a QueryBinding,
    config: &'a ExecConfig,
    pool: &'a WorkerPool,
    store: &'a Arc<FragmentStore>,
    ctrl: &'a Arc<QueryCtrl>,
    /// Fragment-name namespace of this query in the shared store.
    ns: String,
    /// Per-op scheduling priority: the op's segment wave (§4 order).
    priorities: Vec<usize>,
    /// side_fragments[(op, side)] = per-instance base fragments.
    base_fragments: HashMap<(usize, usize), Vec<Arc<Relation>>>,
    /// Receivers for stream operands, taken at consumer spawn.
    stream_rx: HashMap<(usize, usize), Vec<Receiver<Msg>>>,
    /// Senders for stream outputs, taken at producer spawn.
    out_stream: OutStreams,
    /// Producer op -> consumer uses materialization.
    out_materialized: Vec<bool>,
    /// Per-stage input receivers (taken when the stages spawn).
    stage_rx: Vec<Vec<Receiver<Msg>>>,
    /// Per-stage output senders; `None` for the last stage (it feeds the
    /// client channel).
    stage_out: Vec<Option<OutEdge>>,
    /// Root-result channel endpoints, taken when the sink task spawns
    /// (the last stage, or the root op when no stages are attached);
    /// dropping the master sender lets the stream observe teardown.
    client: Option<ClientEdge>,
    done_tx: mpsc::Sender<DoneMsg>,
    spawned: Vec<bool>,
    spawned_instances: usize,
    metrics: Metrics,
    /// Late-materialization resolver, attached to the root join's tasks.
    resolver: Option<Arc<crate::late::Resolver>>,
    /// Deterministic fault-injection plan (test harness only).
    #[cfg(feature = "faults")]
    fault_plan: Option<crate::faults::FaultPlan>,
}

impl QueryRun<'_> {
    /// Submits every op whose dependencies are met as pool tasks.
    fn spawn_ready(&mut self, deps_remaining: &[usize]) -> Result<()> {
        let root_join = self.plan.tree.root();
        for op in &self.plan.ops {
            if self.spawned[op.id] || deps_remaining[op.id] > 0 {
                continue;
            }
            self.spawned[op.id] = true;
            self.spawn_op(op, root_join)?;
        }
        Ok(())
    }

    fn spawn_op(&mut self, op: &PlanOp, root_join: usize) -> Result<()> {
        let spec = self.binding.spec(op.join)?;
        let degree = op.degree();
        self.metrics.ops[op.id].instances = degree;
        self.metrics.processes += degree;

        // Per-side instance source builders.
        let mut rxs: [Option<Vec<Receiver<Msg>>>; 2] = [
            self.stream_rx.remove(&(op.id, 0)),
            self.stream_rx.remove(&(op.id, 1)),
        ];
        let mut mat_fragments: [Option<Vec<Arc<Relation>>>; 2] = [None, None];
        for (side, operand) in [(0usize, &op.left), (1usize, &op.right)] {
            if let OperandSource::Materialized { from } = operand {
                let frags = self.store.collect(&format!("{}op{from}", self.ns));
                if frags.is_empty() {
                    return Err(RelalgError::InvalidPlan(format!(
                        "op {} reads op{from} before it materialized",
                        op.id
                    )));
                }
                mat_fragments[side] = Some(frags);
            }
        }
        let out = self.out_stream.remove(&op.id);
        // The sink op (no stream consumer, no materializing consumer)
        // feeds the client's result channel.
        let client = if out.is_none() && !self.out_materialized[op.id] {
            debug_assert_eq!(op.join, root_join, "only the root op feeds the client");
            Some(self.client.take().ok_or_else(|| {
                RelalgError::InvalidPlan("plan has more than one sink operation".into())
            })?)
        } else {
            None
        };

        // `i` indexes channels, fragments, and procs alike.
        #[allow(clippy::needless_range_loop)]
        for i in 0..degree {
            let mut sources: Vec<Source> = Vec::with_capacity(2);
            for (side, operand) in [(0usize, &op.left), (1usize, &op.right)] {
                let key_col = if side == 0 {
                    spec.left_key
                } else {
                    spec.right_key
                };
                let source = match operand {
                    OperandSource::Base { .. } => {
                        Source::Local(self.base_fragments[&(op.id, side)][i].clone())
                    }
                    OperandSource::Materialized { .. } => Source::Filtered {
                        fragments: mat_fragments[side].clone().expect("collected above"),
                        key_col,
                        bucket: i,
                        of: degree,
                    },
                    OperandSource::Stream { from } => Source::Stream {
                        rx: rxs[side].as_mut().expect("channels created")[i].clone(),
                        producers: self.plan.ops[*from].degree(),
                    },
                };
                sources.push(source);
            }
            let right = sources.pop().expect("two sides");
            let left = sources.pop().expect("two sides");

            let output = match &out {
                Some((txs, key_col, pool)) => OutputPort::Stream(Router::new(
                    txs.clone(),
                    *key_col,
                    self.config.batch_size,
                    pool.clone(),
                )),
                None if self.out_materialized[op.id] => OutputPort::Materialize {
                    store: self.store.clone(),
                    proc: op.procs[i],
                    name: format!("{}op{}", self.ns, op.id),
                    schema: self.binding.schema(op.join)?.clone(),
                    buffer: Vec::new(),
                    budget: Some(self.ctrl.budget().clone()),
                },
                None => {
                    let (tx, bpool) = client.as_ref().expect("taken above");
                    OutputPort::Client(ClientSink::new(
                        tx.clone(),
                        self.config.batch_size,
                        bpool.clone(),
                    ))
                }
            };

            let fail = self
                .config
                .fail
                .map(|f| f.op == op.id && f.instance == i)
                .unwrap_or(false);
            #[cfg_attr(not(feature = "faults"), allow(unused_mut))]
            let mut task = OpTask::join(
                op.algorithm,
                spec.clone(),
                left,
                right,
                output,
                self.config.batch_size,
                op.id,
                i,
                self.done_tx.clone(),
                self.config.startup_cost,
                fail,
                Some(self.ctrl.clone()),
            );
            if op.join == root_join {
                if let Some(resolver) = &self.resolver {
                    task.set_resolver(resolver.clone());
                }
            }
            #[cfg(feature = "faults")]
            if let Some(plan) = &self.fault_plan {
                task.arm_fault(plan.arm("join", op.id, i));
            }
            self.pool.submit(self.priorities[op.id], Box::new(task));
            self.spawned_instances += 1;
        }
        // `client` (the master sender) drops here once the sink op has
        // spawned: from now on only the sink instances hold senders.
        Ok(())
    }

    /// Spawns every post-join pipeline stage (residual filter, partitioned
    /// aggregate, limit). Stages consume only streams, so they are all
    /// submitted at query start and simply idle (blocked, yielding their
    /// worker) until the root join produces.
    fn spawn_stages(&mut self) -> Result<()> {
        let n_ops = self.plan.ops.len();
        let root = self.plan.tree.root();
        let mut producers = self
            .plan
            .op_for_join(root)
            .map(PlanOp::degree)
            .ok_or_else(|| RelalgError::InvalidPlan("plan has no root operation".into()))?;
        for (i, stage) in self.binding.stages().iter().enumerate() {
            let op_id = n_ops + i;
            let rxs = std::mem::take(&mut self.stage_rx[i]);
            if rxs.len() != stage.degree {
                return Err(RelalgError::InvalidPlan(format!(
                    "stage {i} expects {} input channels, got {}",
                    stage.degree,
                    rxs.len()
                )));
            }
            let out_entry = self.stage_out[i].take();
            let client = if out_entry.is_none() {
                Some(self.client.take().ok_or_else(|| {
                    RelalgError::InvalidPlan("plan has more than one sink operation".into())
                })?)
            } else {
                None
            };
            self.metrics.ops[op_id].instances = stage.degree;
            self.metrics.processes += stage.degree;
            for (inst, rx) in rxs.iter().enumerate() {
                let source = Source::Stream {
                    rx: rx.clone(),
                    producers,
                };
                let output = match &out_entry {
                    Some((txs, key_col, pool)) => OutputPort::Stream(Router::new(
                        txs.clone(),
                        *key_col,
                        self.config.batch_size,
                        pool.clone(),
                    )),
                    None => {
                        let (tx, bpool) = client.as_ref().expect("taken above");
                        OutputPort::Client(ClientSink::new(
                            tx.clone(),
                            self.config.batch_size,
                            bpool.clone(),
                        ))
                    }
                };
                let op: Box<dyn PhysicalOp> = match &stage.kind {
                    StageKind::Filter {
                        predicate,
                        projection,
                    } => Box::new(FilterOp::new(predicate.clone(), projection.clone())),
                    StageKind::Aggregate {
                        group,
                        aggs,
                        projection,
                    } => Box::new(AggregateOp::new(
                        group.clone(),
                        aggs.clone(),
                        projection.clone(),
                    )),
                    StageKind::Limit { k } => Box::new(LimitOp::new(*k)),
                };
                let fail = self
                    .config
                    .fail
                    .map(|f| f.op == op_id && f.instance == inst)
                    .unwrap_or(false);
                #[cfg_attr(not(feature = "faults"), allow(unused_mut))]
                let mut task = OpTask::new(
                    op,
                    vec![source],
                    output,
                    self.config.batch_size,
                    op_id,
                    inst,
                    self.done_tx.clone(),
                    self.config.startup_cost,
                    fail,
                    Some(self.ctrl.clone()),
                );
                #[cfg(feature = "faults")]
                if let Some(plan) = &self.fault_plan {
                    let label = match &stage.kind {
                        StageKind::Filter { .. } => "filter",
                        StageKind::Aggregate { .. } => "aggregate",
                        StageKind::Limit { .. } => "limit",
                    };
                    task.arm_fault(plan.arm(label, op_id, inst));
                }
                self.pool.submit(self.priorities[op_id], Box::new(task));
                self.spawned_instances += 1;
            }
            producers = stage.degree;
        }
        Ok(())
    }

    /// Drops the channel endpoints of not-yet-spawned ops so already
    /// running producers/consumers observe a disconnect and unwind.
    fn release_unspawned_endpoints(&mut self) {
        self.stream_rx.clear();
        self.out_stream.clear();
        self.stage_rx.clear();
        self.stage_out.clear();
        self.client = None;
    }
}

/// Runs one query's plan on a (shared) pool and store, streaming the root
/// output into `client`. `query_id` namespaces the query's materialized
/// fragments within the store. Returns once the query has quiesced: every
/// submitted task has reported exactly once, and the query's fragment
/// namespace has been reclaimed.
#[allow(clippy::too_many_arguments)]
fn run_query(
    plan: &ParallelPlan,
    binding: &QueryBinding,
    provider: &dyn RelationProvider,
    config: &ExecConfig,
    opts: &QueryOptions,
    pool: &WorkerPool,
    store: &Arc<FragmentStore>,
    query_id: u64,
    client: ClientEdge,
    ctrl: &Arc<QueryCtrl>,
) -> Result<QueryOutcome> {
    #[cfg(not(feature = "faults"))]
    let _ = opts; // options beyond deadline/budget are resolved upstream
                  // Config and plan were validated by `open_result_channel` — both
                  // callers go through it before spawning this coordinator.
    let n_ops = plan.ops.len();
    let n_stages = binding.stages().len();
    let n_tasks = n_ops + n_stages;
    let ns = format!("q{query_id}:");
    store.ensure_nodes(plan.processors);

    // --- Late materialization (planning-time rewrite). When eligible,
    // the join pipeline runs on narrow ref-carrying relations bound by
    // `late.narrow`, the full-width payloads stay pinned in the rewrite's
    // registry (charged to the budget below), and the root join's tasks
    // resolve refs back to the original schema — so everything from the
    // root's output port on (stages, client channel) is untouched.
    let late = crate::late::plan_late(plan, binding, provider, config.late)?;
    let exec_binding: &QueryBinding = late.as_ref().map_or(binding, |l| &l.narrow);
    let pinned_bytes = late.as_ref().map_or(0, |l| l.pinned_bytes);
    if pinned_bytes > 0 && !ctrl.budget().charge(pinned_bytes) {
        ctrl.abort(ctrl.budget().exhausted_error());
    }

    // --- Setup (not timed): ideal base fragmentation per §4.1. ---
    // Pushed-down filters run here, against the base relations themselves:
    // a zero-copy index gather keeps only the surviving rows (payloads
    // shared, not copied), so partitioning, streams, and the joins all see
    // the reduced inputs — the whole point of pushdown.
    let mut filtered_bases: HashMap<&str, Arc<Relation>> = HashMap::new();
    let mut base_fragments: HashMap<(usize, usize), Vec<Arc<Relation>>> = HashMap::new();
    for op in &plan.ops {
        let spec = exec_binding.spec(op.join)?;
        for (side, operand) in [(0usize, &op.left), (1usize, &op.right)] {
            if let OperandSource::Base { relation } = operand {
                let key_col = if side == 0 {
                    spec.left_key
                } else {
                    spec.right_key
                };
                // A late plan scans the synthesized narrow relations
                // (scan filters already applied, in original leaf
                // coordinates, when they were built).
                let rel = match &late {
                    Some(l) => l.relations.get(relation).cloned().ok_or_else(|| {
                        RelalgError::InvalidPlan(format!("late plan lost relation {relation}"))
                    })?,
                    None => match binding.scan_filter(relation) {
                        Some(pred) => match filtered_bases.get(relation.as_str()) {
                            Some(cached) => cached.clone(),
                            None => {
                                let base = provider.relation(relation)?;
                                let filtered = Arc::new(filter_gather(&base, pred)?);
                                filtered_bases.insert(relation.as_str(), filtered.clone());
                                filtered
                            }
                        },
                        None => provider.relation(relation)?,
                    },
                };
                let frags = hash_partition(&rel, op.degree(), key_col)?
                    .into_iter()
                    .map(Arc::new)
                    .collect();
                base_fragments.insert((op.id, side), frags);
            }
        }
    }

    // Stream channels, created up front (receivers taken at consumer
    // spawn, senders at producer spawn). Edge pools are sized from both
    // endpoint degrees.
    let mut stream_rx: HashMap<(usize, usize), Vec<Receiver<Msg>>> = HashMap::new();
    let mut out_stream: OutStreams = HashMap::new();
    let mut out_materialized: Vec<bool> = vec![false; n_ops];
    for op in &plan.ops {
        let spec = exec_binding.spec(op.join)?;
        for (side, operand) in [(0usize, &op.left), (1usize, &op.right)] {
            let key_col = if side == 0 {
                spec.left_key
            } else {
                spec.right_key
            };
            match operand {
                OperandSource::Stream { from } => {
                    // The edge carries the producer op's output rows; its
                    // pool is typed with that schema's column layout.
                    let layout = ColumnLayout::of(exec_binding.schema(plan.ops[*from].join)?);
                    let (txs, rxs, pool) = operand_channels(
                        plan.ops[*from].degree(),
                        op.degree(),
                        config.channel_capacity,
                        layout,
                    );
                    pool.set_budget(ctrl.budget().clone());
                    stream_rx.insert((op.id, side), rxs);
                    if out_stream.insert(*from, (txs, key_col, pool)).is_some() {
                        return Err(RelalgError::InvalidPlan(format!(
                            "op {from} has multiple stream consumers"
                        )));
                    }
                }
                OperandSource::Materialized { from } => {
                    out_materialized[*from] = true;
                }
                OperandSource::Base { .. } => {}
            }
        }
    }

    // Post-join pipeline channels: the root op streams into stage 0, each
    // stage into the next, and the last stage into the client channel.
    let mut stage_rx: Vec<Vec<Receiver<Msg>>> = Vec::with_capacity(n_stages);
    let mut stage_out: Vec<Option<OutEdge>> = (0..n_stages).map(|_| None).collect();
    let mut stage_streams = 0usize;
    if n_stages > 0 {
        let root_op = plan
            .op_for_join(plan.tree.root())
            .ok_or_else(|| RelalgError::InvalidPlan("plan has no root operation".into()))?;
        let mut prev_degree = root_op.degree();
        for (i, stage) in binding.stages().iter().enumerate() {
            // Edge i carries the previous producer's output: the root
            // join's schema for stage 0, else the prior stage's.
            let in_schema = if i == 0 {
                binding.schema(root_op.join)?
            } else {
                &binding.stages()[i - 1].schema
            };
            let (txs, rxs, bpool) = operand_channels(
                prev_degree,
                stage.degree,
                config.channel_capacity,
                ColumnLayout::of(in_schema),
            );
            bpool.set_budget(ctrl.budget().clone());
            stage_streams += prev_degree * stage.degree;
            stage_rx.push(rxs);
            let entry = (txs, stage.partition_col, bpool);
            if i == 0 {
                if out_stream.insert(root_op.id, entry).is_some() {
                    return Err(RelalgError::InvalidPlan(
                        "root op already has a stream consumer".into(),
                    ));
                }
            } else {
                stage_out[i - 1] = Some(entry);
            }
            prev_degree = stage.degree;
        }
    }

    // Scheduling priority: the op's right-deep segment wave (§4 order);
    // pipeline stages run after the root, in later waves still.
    let node_waves = segments(&plan.tree).node_waves();
    let mut priorities: Vec<usize> = plan
        .ops
        .iter()
        .map(|op| node_waves.get(op.join).copied().flatten().unwrap_or(0))
        .collect();
    let stage_base = priorities.iter().copied().max().unwrap_or(0) + 1;
    priorities.extend((0..n_stages).map(|i| stage_base + i));

    // --- Scheduling (timed). ---
    let started = Instant::now();
    let (done_tx, done_rx) = mpsc::channel::<DoneMsg>();

    let mut deps_remaining: Vec<usize> = plan.ops.iter().map(|o| o.start_after.len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
    for op in &plan.ops {
        for &d in &op.start_after {
            dependents[d].push(op.id);
        }
    }

    let mut metrics = Metrics::new(n_tasks);
    metrics.streams = plan.stats().tuple_streams + stage_streams;
    for op in &plan.ops {
        metrics.ops[op.id].est_out = op.est_out;
    }
    for (i, stage) in binding.stages().iter().enumerate() {
        metrics.ops[n_ops + i].est_out = stage.est_out;
        metrics.ops[n_ops + i].kind = stage.kind.metrics_kind();
    }
    let mut run = QueryRun {
        plan,
        binding: exec_binding,
        config,
        pool,
        store,
        ctrl,
        ns: ns.clone(),
        priorities,
        base_fragments,
        stream_rx,
        out_stream,
        out_materialized,
        stage_rx,
        stage_out,
        client: Some(client),
        done_tx,
        spawned: vec![false; n_ops],
        spawned_instances: 0,
        metrics,
        resolver: late.as_ref().map(|l| l.resolver.clone()),
        #[cfg(feature = "faults")]
        fault_plan: opts.fault_plan().cloned(),
    };

    let mut instances_left: Vec<usize> = plan
        .ops
        .iter()
        .map(|o| o.degree())
        .chain(binding.stages().iter().map(|s| s.degree))
        .collect();
    let mut received = 0usize;
    let mut first_err: Option<RelalgError> = None;

    if ctrl.is_canceled() {
        first_err = Some(RelalgError::Canceled);
        run.release_unspawned_endpoints();
    } else if let Err(e) = run
        .spawn_ready(&deps_remaining)
        .and_then(|()| run.spawn_stages())
    {
        // Setup failed part-way: any already-submitted tasks unwind via
        // dropped endpoints; keep draining below so the query is quiescent
        // (and the shared store clean) before we return.
        first_err = Some(e);
        run.release_unspawned_endpoints();
    }

    // Coordinator watchdog: with a deadline or stall timeout configured,
    // poll for completions on a short tick so limits are enforced even
    // when every task is parked (e.g. wedged on a dead peer). Without
    // limits, block exactly as before — zero overhead on the happy path.
    let watchdog_tick = Duration::from_millis(5);
    let watchdog = ctrl.deadline().is_some() || config.stall_timeout.is_some();
    let mut last_progress = (ctrl.progress(), Instant::now());

    while received < run.spawned_instances {
        let msg = if watchdog {
            match done_rx.recv_timeout(watchdog_tick) {
                Ok(msg) => Some(msg),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(RelalgError::Internal("scheduler channel broke".into()));
                }
            }
        } else {
            Some(
                done_rx
                    .recv()
                    .map_err(|_| RelalgError::Internal("scheduler channel broke".into()))?,
            )
        };
        let Some((op_id, res)) = msg else {
            // Watchdog tick: enforce the deadline centrally (tasks also
            // check it per step) and detect stalled pipelines.
            if !ctrl.is_aborted() && !ctrl.is_canceled() {
                if ctrl.deadline_exceeded() {
                    ctrl.abort(RelalgError::DeadlineExceeded);
                } else if let Some(timeout) = config.stall_timeout {
                    let progress = ctrl.progress();
                    if progress != last_progress.0 {
                        last_progress = (progress, Instant::now());
                    } else if last_progress.1.elapsed() >= timeout {
                        let dump = progress_dump(plan, binding, &instances_left, &run.metrics);
                        ctrl.abort(RelalgError::Stalled(dump));
                    }
                }
            }
            continue;
        };
        received += 1;
        // Completions are progress too: don't let a long-running final
        // drain that makes no per-step progress look like a stall.
        last_progress = (ctrl.progress(), Instant::now());
        if ctrl.is_canceled() && first_err.is_none() {
            // Cancellation arrived while tasks were in flight: stop
            // spawning new waves and let running tasks observe the token.
            first_err = Some(RelalgError::Canceled);
            run.release_unspawned_endpoints();
        }
        match res {
            Ok(stats) => {
                let m = &mut run.metrics.ops[op_id];
                m.tuples_in[0] += stats.tuples_in[0];
                m.tuples_in[1] += stats.tuples_in[1];
                m.tuples_out += stats.tuples_out;
                m.table_bytes += stats.table_bytes;
                run.metrics.sched_steps += stats.steps;
                run.metrics.sched_blocked += stats.blocked;
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                    // Unblock instances wired to never-spawned peers.
                    run.release_unspawned_endpoints();
                }
            }
        }
        instances_left[op_id] -= 1;
        // Pipeline stages (ids >= n_ops) have no dependents in the plan DAG.
        if op_id < n_ops && instances_left[op_id] == 0 && first_err.is_none() {
            // Op complete: release dependents.
            for &d in &dependents[op_id].clone() {
                deps_remaining[d] -= 1;
            }
            if let Err(e) = run.spawn_ready(&deps_remaining) {
                first_err = Some(e);
                run.release_unspawned_endpoints();
            }
        }
    }
    let elapsed = started.elapsed();

    // The query is quiescent: every submitted instance has reported.
    // Reclaim its namespace in the shared store, crediting the freed
    // fragment bytes back to the query's budget.
    let freed = store.remove_prefix(&ns);
    ctrl.budget().credit(freed as u64);
    // The pinned payload registry dies with the query (the resolver Arcs
    // dropped as the tasks completed); return its charge too.
    if pinned_bytes > 0 {
        ctrl.budget().credit(pinned_bytes);
    }
    run.metrics.peak_bytes = ctrl.budget().peak();
    run.metrics.panics_contained = ctrl.panics();

    if let Some(e) = first_err {
        // A cancelled query reports `Canceled` even when teardown surfaced
        // racing stream errors first; likewise an aborted query reports
        // its typed abort reason (deadline / budget / stall / contained
        // panic), not whichever secondary teardown error arrived first.
        return Err(if ctrl.is_canceled() {
            RelalgError::Canceled
        } else if let Some(abort) = ctrl.abort_error() {
            abort
        } else {
            e
        });
    }
    // A guardrail can trip on the very last step of the last instance
    // (e.g. an allocation pushes past the budget while that instance
    // completes): the abort slot is set but no task is left running to
    // observe it, so every completion arrived `Ok`. The typed abort still
    // wins over an otherwise clean finish.
    if let Some(abort) = ctrl.abort_error() {
        return Err(abort);
    }
    if run.spawned.iter().any(|s| !s) {
        return Err(RelalgError::InvalidPlan(
            "not all ops became ready (dependency cycle?)".into(),
        ));
    }

    Ok(QueryOutcome {
        elapsed,
        // Recorded client-side by the stream; `QueryHandle::wait` patches
        // it in after the coordinator returns.
        time_to_first_batch: None,
        metrics: run.metrics,
    })
}

/// Renders one line per operation for [`RelalgError::Stalled`]: the op's
/// kind and how many of its instances have finished, so a stall dump shows
/// where the pipeline wedged.
fn progress_dump(
    plan: &ParallelPlan,
    binding: &QueryBinding,
    instances_left: &[usize],
    metrics: &Metrics,
) -> String {
    let degrees: Vec<usize> = plan
        .ops
        .iter()
        .map(PlanOp::degree)
        .chain(binding.stages().iter().map(|s| s.degree))
        .collect();
    degrees
        .iter()
        .enumerate()
        .map(|(op, degree)| {
            let done = degree - instances_left.get(op).copied().unwrap_or(0);
            format!("op{op}[{}] {done}/{degree}", metrics.ops[op].kind.label())
        })
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::QueryStatus;
    use mj_core::generator::{generate, GeneratorInput};
    use mj_core::strategy::Strategy;
    use mj_plan::cardinality::{node_cards, UniformOneToOne};
    use mj_plan::cost::{tree_costs, CostModel};
    use mj_plan::query::to_xra;
    use mj_plan::shapes::{build, Shape};
    use mj_relalg::JoinAlgorithm;
    use mj_storage::{Catalog, WisconsinGenerator};

    fn setup(k: usize, n: usize) -> (Arc<Catalog>, u64) {
        let catalog = Arc::new(Catalog::new());
        let gen = WisconsinGenerator::new(n, 42);
        for (name, rel) in gen.generate_named("R", k) {
            catalog.register(name, rel);
        }
        (catalog, n as u64)
    }

    fn run(
        shape: Shape,
        strategy: Strategy,
        k: usize,
        n: usize,
        procs: usize,
    ) -> (ExecOutcome, Relation) {
        let (catalog, nn) = setup(k, n);
        let tree = build(shape, k).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n: nn });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let mut input = GeneratorInput::new(&tree, &cards, &costs, procs);
        input.allow_oversubscribe = procs < tree.join_count();
        let plan = generate(strategy, &input).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let outcome = run_plan(&plan, &binding, catalog.as_ref(), &ExecConfig::default()).unwrap();
        // Oracle: sequential evaluation of the same logical plan.
        let xra = to_xra(&tree, 3, JoinAlgorithm::Simple);
        let expected = xra.eval(catalog.as_ref()).unwrap();
        (outcome, expected)
    }

    #[test]
    fn every_strategy_matches_the_sequential_oracle() {
        for strategy in Strategy::ALL {
            for shape in [Shape::LeftLinear, Shape::WideBushy, Shape::RightLinear] {
                let (outcome, expected) = run(shape, strategy, 5, 200, 4);
                assert_eq!(outcome.relation.len(), 200, "{strategy} {shape}");
                assert!(
                    outcome.relation.multiset_eq(&expected),
                    "{strategy} {shape}: parallel result differs from oracle"
                );
            }
        }
    }

    #[test]
    fn ten_relation_paper_query_all_strategies() {
        for strategy in Strategy::ALL {
            let (outcome, expected) = run(Shape::RightBushy, strategy, 10, 100, 9);
            assert_eq!(outcome.relation.len(), 100, "{strategy}");
            assert!(outcome.relation.multiset_eq(&expected), "{strategy}");
        }
    }

    #[test]
    fn metrics_reflect_the_plan() {
        let (outcome, _) = run(Shape::LeftLinear, Strategy::SP, 5, 200, 4);
        // SP: 4 joins x 4 processors.
        assert_eq!(outcome.metrics.processes, 16);
        // Every join outputs 200 tuples.
        for m in &outcome.metrics.ops {
            assert_eq!(m.tuples_out, 200);
            assert_eq!(m.instances, 4);
        }
        assert!(outcome.elapsed.as_nanos() > 0);
    }

    #[test]
    fn fp_uses_less_processes_but_more_table_memory() {
        let (sp, _) = run(Shape::WideBushy, Strategy::SP, 5, 400, 4);
        let (fp, _) = run(Shape::WideBushy, Strategy::FP, 5, 400, 4);
        assert!(sp.metrics.processes > fp.metrics.processes);
        let sp_bytes: u64 = sp.metrics.ops.iter().map(|o| o.table_bytes).sum();
        let fp_bytes: u64 = fp.metrics.ops.iter().map(|o| o.table_bytes).sum();
        assert!(fp_bytes > sp_bytes, "pipelining joins hold two tables");
    }

    #[test]
    fn oversubscribed_plan_still_correct() {
        // 9 joins on 2 "processors" with sharing allowed.
        let (outcome, expected) = run(Shape::WideBushy, Strategy::FP, 10, 50, 2);
        assert!(outcome.relation.multiset_eq(&expected));
    }

    #[test]
    fn single_processor_execution() {
        let (outcome, expected) = run(Shape::LeftLinear, Strategy::SP, 4, 64, 1);
        assert!(outcome.relation.multiset_eq(&expected));
    }

    /// Runs with a fault injected at (op, instance) and asserts the engine
    /// reports the failure without hanging or panicking.
    fn run_with_failure(shape: Shape, strategy: Strategy, fail: crate::config::FailPoint) {
        let (catalog, n) = setup(6, 128);
        let tree = build(shape, 6).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let mut input = GeneratorInput::new(&tree, &cards, &costs, 4);
        input.allow_oversubscribe = true;
        let plan = generate(strategy, &input).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let config = ExecConfig {
            fail: Some(fail),
            ..ExecConfig::default()
        };
        let err = run_plan(&plan, &binding, catalog.as_ref(), &config)
            .expect_err("injected failure must surface");
        let msg = err.to_string();
        assert!(
            msg.contains("injected failure")
                // Racing teardown may surface a stream error first; both
                // prove the dataflow unwound instead of hanging.
                || msg.contains("closed before End")
                || msg.contains("consumer hung up"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn injected_failure_in_pipelined_plan_terminates() {
        // FP: every op is live-streaming; killing the bottom producer must
        // unwind the whole pipeline.
        run_with_failure(
            Shape::RightLinear,
            Strategy::FP,
            crate::config::FailPoint { op: 0, instance: 0 },
        );
    }

    #[test]
    fn injected_failure_in_materialized_plan_terminates() {
        // SP: sequential materialized phases; downstream ops must never
        // spawn after the failure.
        run_with_failure(
            Shape::LeftLinear,
            Strategy::SP,
            crate::config::FailPoint { op: 2, instance: 1 },
        );
    }

    #[test]
    fn injected_failure_at_the_root_terminates() {
        run_with_failure(
            Shape::WideBushy,
            Strategy::FP,
            crate::config::FailPoint { op: 4, instance: 0 },
        );
    }

    fn plan_for(
        tree: &mj_plan::tree::JoinTree,
        strategy: Strategy,
        n: u64,
        procs: usize,
    ) -> ParallelPlan {
        let cards = node_cards(tree, &UniformOneToOne { n });
        let costs = tree_costs(tree, &cards, &CostModel::default());
        let mut input = GeneratorInput::new(tree, &cards, &costs, procs);
        input.allow_oversubscribe = procs < tree.join_count();
        generate(strategy, &input).unwrap()
    }

    #[test]
    fn engine_runs_many_queries_on_one_fixed_pool() {
        let (catalog, n) = setup(6, 200);
        let config = ExecConfig {
            workers: 3,
            ..ExecConfig::default()
        };
        let engine = Engine::new(catalog.clone(), config).unwrap();
        assert_eq!(engine.workers(), 3);
        let tree = build(Shape::RightBushy, 6).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let xra = to_xra(&tree, 3, JoinAlgorithm::Simple);
        let expected = xra.eval(catalog.as_ref()).unwrap();
        for strategy in Strategy::ALL {
            let plan = plan_for(&tree, strategy, n, 4);
            let outcome = engine.run(&plan, &binding).unwrap();
            assert!(outcome.relation.multiset_eq(&expected), "{strategy}");
            assert!(outcome.metrics.sched_steps > 0);
        }
        assert_eq!(
            engine.pool().threads(),
            3,
            "four queries must not grow the worker-thread count"
        );
    }

    #[test]
    fn concurrent_queries_share_the_engine() {
        let (catalog, n) = setup(5, 150);
        let config = ExecConfig {
            workers: 4,
            ..ExecConfig::default()
        };
        let engine = Engine::new(catalog.clone(), config).unwrap();
        let tree = build(Shape::RightLinear, 5).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let expected = to_xra(&tree, 3, JoinAlgorithm::Simple)
            .eval(catalog.as_ref())
            .unwrap();
        std::thread::scope(|scope| {
            for strategy in [Strategy::FP, Strategy::SP, Strategy::RD, Strategy::FP] {
                let engine = &engine;
                let binding = &binding;
                let expected = &expected;
                let tree = &tree;
                scope.spawn(move || {
                    let plan = plan_for(tree, strategy, n, 3);
                    let outcome = engine.run(&plan, binding).unwrap();
                    assert!(
                        outcome.relation.multiset_eq(expected),
                        "{strategy} diverged under concurrency"
                    );
                });
            }
        });
        assert_eq!(
            engine.pool().threads(),
            4,
            "concurrent queries must share the fixed pool"
        );
        // All per-query namespaces were reclaimed from the shared store.
        assert_eq!(engine.store().total_bytes(), 0);
    }

    #[test]
    fn single_worker_pool_still_completes_pipelined_plans() {
        // The cooperative scheduler must finish an FP dataflow even when
        // one worker multiplexes every producer and consumer.
        let (catalog, n) = setup(6, 120);
        let config = ExecConfig {
            workers: 1,
            ..ExecConfig::default()
        };
        let engine = Engine::new(catalog.clone(), config).unwrap();
        let tree = build(Shape::RightLinear, 6).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let expected = to_xra(&tree, 3, JoinAlgorithm::Simple)
            .eval(catalog.as_ref())
            .unwrap();
        let plan = plan_for(&tree, Strategy::FP, n, 4);
        let outcome = engine.run(&plan, &binding).unwrap();
        assert!(outcome.relation.multiset_eq(&expected));
    }

    #[test]
    fn failure_on_every_single_point_terminates() {
        // Exhaustive small-scale sweep: no (op, instance) fault anywhere in
        // an RD plan can deadlock the engine.
        let (catalog, n) = setup(5, 64);
        let tree = build(Shape::RightBushy, 5).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let mut input = GeneratorInput::new(&tree, &cards, &costs, 4);
        input.allow_oversubscribe = true;
        let plan = generate(Strategy::RD, &input).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        for op in 0..plan.ops.len() {
            for instance in 0..plan.ops[op].degree() {
                let config = ExecConfig {
                    fail: Some(crate::config::FailPoint { op, instance }),
                    ..ExecConfig::default()
                };
                run_plan(&plan, &binding, catalog.as_ref(), &config)
                    .expect_err("fault must surface");
            }
        }
    }

    // --- Streaming + handles ---

    #[test]
    fn submit_streams_batches_before_outcome() {
        let (catalog, n) = setup(5, 300);
        let engine = Engine::new(catalog.clone(), ExecConfig::default()).unwrap();
        let tree = build(Shape::RightLinear, 5).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let plan = plan_for(&tree, Strategy::FP, n, 4);
        let mut handle = engine.submit(&plan, &binding).unwrap();
        let mut stream = handle.stream();
        assert_eq!(stream.schema().arity(), 3);
        let mut total = 0usize;
        let mut batches = 0usize;
        while let Some(batch) = stream.next_batch() {
            total += batch.len();
            batches += 1;
        }
        drop(stream);
        let outcome = handle.outcome().unwrap();
        assert_eq!(total, 300);
        assert!(batches >= 1);
        assert_eq!(outcome.metrics.total_tuples_out(), 4 * 300);
        assert_eq!(engine.store().total_bytes(), 0);
    }

    #[test]
    fn collect_drains_and_checks_outcome() {
        let (catalog, n) = setup(4, 128);
        let engine = Engine::new(catalog.clone(), ExecConfig::default()).unwrap();
        let tree = build(Shape::RightLinear, 4).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let plan = plan_for(&tree, Strategy::FP, n, 3);
        let relation = engine.submit(&plan, &binding).unwrap().collect().unwrap();
        assert_eq!(relation.len(), 128);
    }

    #[test]
    fn cancel_mid_stream_quiesces_and_engine_is_reusable() {
        let (catalog, n) = setup(5, 4_000);
        // Tiny batches and a capacity-1 channel: the root blocks on client
        // backpressure almost immediately, so the query is guaranteed to
        // still be in flight when we cancel.
        let config = ExecConfig {
            workers: 2,
            batch_size: 16,
            channel_capacity: 1,
            ..ExecConfig::default()
        };
        let engine = Engine::new(catalog.clone(), config).unwrap();
        let tree = build(Shape::RightLinear, 5).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let plan = plan_for(&tree, Strategy::FP, n, 4);
        let mut handle = engine.submit(&plan, &binding).unwrap();
        let mut stream = handle.stream();
        let first = stream.next_batch();
        assert!(first.is_some(), "a first batch must arrive");
        assert_eq!(handle.status(), QueryStatus::Running);
        handle.cancel();
        // The stream ends (possibly after a few in-flight batches).
        while stream.next_batch().is_some() {}
        drop(stream);
        let err = handle.outcome().expect_err("cancelled query must error");
        assert!(matches!(err, RelalgError::Canceled), "got {err}");
        // Quiescent: fragments reclaimed, pool intact and reusable.
        assert_eq!(engine.store().total_bytes(), 0);
        let outcome = engine.run(&plan, &binding).unwrap();
        assert_eq!(outcome.relation.len(), 4_000);
        assert_eq!(engine.pool().threads(), 2);
    }

    #[test]
    fn dropping_a_live_handle_cancels_and_quiesces() {
        let (catalog, n) = setup(5, 2_000);
        let config = ExecConfig {
            workers: 2,
            batch_size: 16,
            channel_capacity: 1,
            ..ExecConfig::default()
        };
        let engine = Engine::new(catalog.clone(), config).unwrap();
        let tree = build(Shape::RightLinear, 5).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let plan = plan_for(&tree, Strategy::FP, n, 4);
        let handle = engine.submit(&plan, &binding).unwrap();
        assert!(matches!(
            handle.status(),
            QueryStatus::Running | QueryStatus::Finished
        ));
        drop(handle); // cancels, drains, joins the coordinator
        assert_eq!(engine.store().total_bytes(), 0);
        // Engine still serves queries.
        let outcome = engine.run(&plan, &binding).unwrap();
        assert_eq!(outcome.relation.len(), 2_000);
    }

    #[test]
    fn status_reaches_finished_after_outcome() {
        let (catalog, n) = setup(3, 64);
        let engine = Engine::new(catalog.clone(), ExecConfig::default()).unwrap();
        let tree = build(Shape::RightLinear, 3).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let plan = plan_for(&tree, Strategy::FP, n, 2);
        let mut handle = engine.submit(&plan, &binding).unwrap();
        let relation = handle.stream().collect_relation();
        assert_eq!(relation.len(), 64);
        // The coordinator records the terminal state shortly after the
        // last End; poll briefly instead of racing it.
        for _ in 0..5_000 {
            if handle.status() == QueryStatus::Finished {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(handle.status(), QueryStatus::Finished);
        handle.outcome().unwrap();
    }

    // --- Guardrails: deadlines, budgets, admission control ---

    #[test]
    fn expired_deadline_aborts_with_typed_error_and_reclaims() {
        let (catalog, n) = setup(5, 2_000);
        let engine = Engine::new(catalog.clone(), ExecConfig::default()).unwrap();
        let tree = build(Shape::RightLinear, 5).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let plan = plan_for(&tree, Strategy::SP, n, 4);
        // A zero-remaining deadline: every task sees it expired on its
        // first step, so the query aborts deterministically.
        let opts = QueryOptions::new().with_deadline(Duration::from_nanos(1));
        let err = engine
            .submit_with(&plan, &binding, opts)
            .unwrap()
            .collect()
            .expect_err("expired deadline must abort");
        assert!(matches!(err, RelalgError::DeadlineExceeded), "got {err}");
        assert_eq!(engine.store().total_bytes(), 0, "fragments reclaimed");
        // Engine unaffected: the same plan completes without a deadline.
        let outcome = engine.run(&plan, &binding).unwrap();
        assert_eq!(outcome.relation.len(), 2_000);
        let stats = engine.stats();
        assert_eq!(stats.queries_timed_out, 1);
        assert_eq!(stats.queries_completed, 1);
    }

    #[test]
    fn tiny_memory_budget_aborts_with_resource_exhausted() {
        let (catalog, n) = setup(5, 2_000);
        let engine = Engine::new(catalog.clone(), ExecConfig::default()).unwrap();
        let tree = build(Shape::RightLinear, 5).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        // SP materializes intermediates and builds hash tables: plenty of
        // charged bytes against a 1-byte budget.
        let plan = plan_for(&tree, Strategy::SP, n, 4);
        let opts = QueryOptions::new().with_memory_budget(1);
        let err = engine
            .submit_with(&plan, &binding, opts)
            .unwrap()
            .collect()
            .expect_err("1-byte budget must trip");
        match err {
            RelalgError::ResourceExhausted { used, budget } => {
                assert_eq!(budget, 1);
                assert!(used > 1, "reported usage exceeds the budget: {used}");
            }
            other => panic!("expected ResourceExhausted, got {other}"),
        }
        assert_eq!(engine.store().total_bytes(), 0, "fragments reclaimed");
        let outcome = engine.run(&plan, &binding).unwrap();
        assert_eq!(outcome.relation.len(), 2_000, "engine intact after abort");
        assert_eq!(engine.stats().budget_aborts, 1);
    }

    #[test]
    fn generous_budget_does_not_disturb_results_and_reports_peak() {
        let (catalog, n) = setup(4, 256);
        let engine = Engine::new(catalog.clone(), ExecConfig::default()).unwrap();
        let tree = build(Shape::RightLinear, 4).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let plan = plan_for(&tree, Strategy::SP, n, 3);
        let opts = QueryOptions::new().with_memory_budget(1 << 30);
        let mut handle = engine.submit_with(&plan, &binding, opts).unwrap();
        let relation = handle.stream().collect_relation();
        assert_eq!(relation.len(), 256);
        let outcome = handle.outcome().unwrap();
        assert!(
            outcome.metrics.peak_bytes > 0,
            "SP plans charge materialized fragments and hash tables"
        );
        assert_eq!(outcome.metrics.panics_contained, 0);
        assert_eq!(engine.stats().peak_bytes, outcome.metrics.peak_bytes);
    }

    #[test]
    fn admission_rejects_beyond_queue_and_recovers() {
        let (catalog, n) = setup(5, 4_000);
        let config = ExecConfig {
            workers: 2,
            batch_size: 16,
            channel_capacity: 1,
            max_concurrent: Some(1),
            admission_queue: 0, // pure queue-or-reject: no waiting at all
            ..ExecConfig::default()
        };
        let engine = Engine::new(catalog.clone(), config).unwrap();
        let tree = build(Shape::RightLinear, 5).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let plan = plan_for(&tree, Strategy::FP, n, 4);
        // First query holds the only slot (it blocks on client
        // backpressure, so it stays in flight until we drain it).
        let mut first = engine.submit(&plan, &binding).unwrap();
        let mut stream = first.stream();
        assert!(stream.next_batch().is_some());
        let err = engine
            .submit(&plan, &binding)
            .expect_err("second query must be rejected");
        assert!(matches!(err, RelalgError::Overloaded { .. }), "got {err}");
        // Drain the first; its slot frees and the engine admits again.
        while stream.next_batch().is_some() {}
        drop(stream);
        first.outcome().unwrap();
        let outcome = engine.run(&plan, &binding).unwrap();
        assert_eq!(outcome.relation.len(), 4_000);
        let stats = engine.stats();
        assert_eq!(stats.queries_rejected, 1);
        assert_eq!(stats.queries_completed, 2);
    }

    #[test]
    fn admission_queue_serves_waiters_fifo() {
        let (catalog, n) = setup(4, 512);
        let config = ExecConfig {
            workers: 2,
            max_concurrent: Some(1),
            admission_queue: 8,
            ..ExecConfig::default()
        };
        let engine = Engine::new(catalog.clone(), config).unwrap();
        let tree = build(Shape::RightLinear, 4).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let plan = plan_for(&tree, Strategy::FP, n, 3);
        // Four threads submit through a 1-slot gate; all must complete.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = &engine;
                let plan = &plan;
                let binding = &binding;
                scope.spawn(move || {
                    let outcome = engine.run(plan, binding).unwrap();
                    assert_eq!(outcome.relation.len(), 512);
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.queries_completed, 4);
        assert_eq!(stats.queries_rejected, 0);
        assert_eq!(engine.store().total_bytes(), 0);
    }

    #[test]
    fn duration_histogram_buckets_sum_to_queries_total() {
        let (catalog, n) = setup(4, 256);
        let engine = Engine::new(catalog.clone(), ExecConfig::default()).unwrap();
        let tree = build(Shape::RightLinear, 4).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let plan = plan_for(&tree, Strategy::FP, n, 3);
        for _ in 0..3 {
            let outcome = engine.run(&plan, &binding).unwrap();
            // TTFB is end-to-end (submission to client pull), so it can
            // exceed `elapsed` (which excludes teardown) only by the
            // drain gap; it must at least exist for a non-empty result.
            assert!(outcome.time_to_first_batch.is_some());
        }
        // One canceled query also reaches a terminal state and must be
        // observed by the duration histogram.
        let handle = engine.submit(&plan, &binding).unwrap();
        handle.cancel();
        let _ = handle.outcome();
        let stats = engine.stats();
        assert_eq!(
            stats.queries_total(),
            stats.queries_completed + stats.queries_canceled
        );
        assert_eq!(stats.query_duration.count, stats.queries_total());
        assert_eq!(
            stats.query_duration.buckets.iter().sum::<u64>(),
            stats.queries_total(),
            "histogram buckets must sum to queries_total"
        );
        assert!(stats.time_to_first_batch.count >= 3);
        assert_eq!(
            stats.time_to_first_batch.buckets.iter().sum::<u64>(),
            stats.time_to_first_batch.count
        );
        assert!(stats.query_duration.sum_us > 0);
    }

    #[test]
    fn stats_snapshot_is_consistent_while_hammered() {
        // Regression test for the racy field-by-field snapshot: N threads
        // hammer queries (some admitted, some rejected) while a poller
        // reads stats. Every snapshot must satisfy
        //   terminal outcomes + rejected <= submitted
        // which only holds if all counters are read consistently.
        let (catalog, n) = setup(3, 96);
        let config = ExecConfig {
            workers: 2,
            max_concurrent: Some(1),
            admission_queue: 1,
            ..ExecConfig::default()
        };
        let engine = Engine::new(catalog.clone(), config).unwrap();
        let tree = build(Shape::RightLinear, 3).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let plan = plan_for(&tree, Strategy::FP, n, 2);
        let done = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = &engine;
                let plan = &plan;
                let binding = &binding;
                let done = &done;
                scope.spawn(move || {
                    for _ in 0..8 {
                        match engine.submit(plan, binding) {
                            Ok(handle) => {
                                let _ = handle.collect();
                            }
                            Err(RelalgError::Overloaded { queue_depth }) => {
                                assert_eq!(queue_depth, 1);
                            }
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            let engine = &engine;
            let done = &done;
            scope.spawn(move || {
                let mut polls = 0u64;
                while done.load(Ordering::Relaxed) < 4 || polls == 0 {
                    let s = engine.stats();
                    let terminal = s.queries_total();
                    assert!(
                        terminal + s.queries_rejected <= s.queries_submitted,
                        "inconsistent snapshot: {terminal} terminal + {} rejected > {} submitted",
                        s.queries_rejected,
                        s.queries_submitted
                    );
                    assert!(s.queries_active <= 2, "active beyond max_concurrent+queue");
                    assert_eq!(s.query_duration.count, terminal);
                    polls += 1;
                    std::thread::yield_now();
                }
            });
        });
        // Quiesced: every submission is accounted for exactly once.
        let s = engine.stats();
        assert_eq!(s.queries_submitted, 32);
        assert_eq!(s.queries_total() + s.queries_rejected, 32);
        assert_eq!(s.queries_active, 0);
        assert_eq!(s.query_duration.count, s.queries_total());
    }

    #[test]
    fn stall_watchdog_aborts_an_undrained_stream() {
        let (catalog, n) = setup(5, 4_000);
        // Opt-in stall detection: an idle client IS a stall under this
        // config, which is exactly what this test exploits.
        let config = ExecConfig {
            workers: 2,
            batch_size: 16,
            channel_capacity: 1,
            stall_timeout: Some(Duration::from_millis(100)),
            ..ExecConfig::default()
        };
        let engine = Engine::new(catalog.clone(), config).unwrap();
        let tree = build(Shape::RightLinear, 5).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let plan = plan_for(&tree, Strategy::FP, n, 4);
        let mut handle = engine.submit(&plan, &binding).unwrap();
        let mut stream = handle.stream();
        // Pull one batch, then stop draining: the pipeline wedges on
        // client backpressure and the watchdog must fire.
        assert!(stream.next_batch().is_some());
        std::thread::sleep(Duration::from_millis(300));
        while stream.next_batch().is_some() {}
        drop(stream);
        let err = handle.outcome().expect_err("stall must abort");
        match err {
            RelalgError::Stalled(dump) => {
                assert!(dump.contains("op0[join]"), "dump names ops: {dump}")
            }
            other => panic!("expected Stalled, got {other}"),
        }
        assert_eq!(engine.store().total_bytes(), 0);
        assert_eq!(engine.stats().queries_stalled, 1);
    }
}
