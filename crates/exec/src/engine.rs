//! Plan interpretation: spawn operation processes, wire streams, schedule
//! phases, collect the result.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use mj_core::plan_ir::{OperandSource, ParallelPlan};
use mj_core::validate::validate_plan;
use mj_relalg::{JoinAlgorithm, RelalgError, Relation, RelationProvider, Result, Tuple};
use mj_storage::{hash_partition, FragmentStore};
use parking_lot::Mutex;

use crate::binding::QueryBinding;
use crate::config::ExecConfig;
use crate::metrics::{InstanceStats, Metrics};
use crate::operator::{run_pipelining_instance, run_simple_instance, OutputPort};
use crate::source::Source;
use crate::stream::{operand_channels, BatchPool, Msg, Router};

/// Producer op id -> (senders to the consumer's instances, consumer key
/// column, the edge's shared batch-buffer pool).
type OutStreams = HashMap<usize, (Vec<Sender<Msg>>, usize, Arc<BatchPool>)>;

/// The result of executing a plan.
#[derive(Debug)]
pub struct ExecOutcome {
    /// The query result (the root join's output).
    pub relation: Relation,
    /// Response time: scheduling start to last operation process exit
    /// (the paper's metric; initial data fragmentation is setup, not
    /// response time, matching §4.1's pre-fragmented starting state).
    pub elapsed: Duration,
    /// Execution metrics.
    pub metrics: Metrics,
}

/// Executes `plan` against the relations in `provider`.
pub fn run_plan(
    plan: &ParallelPlan,
    binding: &QueryBinding,
    provider: &dyn RelationProvider,
    config: &ExecConfig,
) -> Result<ExecOutcome> {
    config.validate().map_err(RelalgError::InvalidPlan)?;
    validate_plan(plan)?;
    let n_ops = plan.ops.len();

    // --- Setup (not timed): ideal base fragmentation per §4.1. ---
    // side_fragments[(op, side)] = per-instance base fragments.
    let mut base_fragments: HashMap<(usize, usize), Vec<Arc<Relation>>> = HashMap::new();
    for op in &plan.ops {
        let spec = binding.spec(op.join)?;
        for (side, operand) in [(0usize, &op.left), (1usize, &op.right)] {
            if let OperandSource::Base { relation } = operand {
                let key_col = if side == 0 {
                    spec.left_key
                } else {
                    spec.right_key
                };
                let rel = provider.relation(relation)?;
                let frags = hash_partition(&rel, op.degree(), key_col)?
                    .into_iter()
                    .map(Arc::new)
                    .collect();
                base_fragments.insert((op.id, side), frags);
            }
        }
    }

    // Stream channels, created up front (receivers taken at consumer
    // spawn, senders at producer spawn).
    let mut stream_rx: HashMap<(usize, usize), Vec<Receiver<Msg>>> = HashMap::new();
    let mut out_stream: OutStreams = HashMap::new();
    // Producer op -> consumer uses materialization.
    let mut out_materialized: Vec<bool> = vec![false; n_ops];
    for op in &plan.ops {
        let spec = binding.spec(op.join)?;
        for (side, operand) in [(0usize, &op.left), (1usize, &op.right)] {
            let key_col = if side == 0 {
                spec.left_key
            } else {
                spec.right_key
            };
            match operand {
                OperandSource::Stream { from } => {
                    let (txs, rxs, pool) = operand_channels(op.degree(), config.channel_capacity);
                    stream_rx.insert((op.id, side), rxs);
                    if out_stream.insert(*from, (txs, key_col, pool)).is_some() {
                        return Err(RelalgError::InvalidPlan(format!(
                            "op {from} has multiple stream consumers"
                        )));
                    }
                }
                OperandSource::Materialized { from } => {
                    out_materialized[*from] = true;
                }
                OperandSource::Base { .. } => {}
            }
        }
    }

    let store = Arc::new(FragmentStore::new(plan.processors));
    let sink_buffer: Arc<Mutex<Vec<Tuple>>> = Arc::new(Mutex::new(Vec::new()));
    let root_join = plan.tree.root();

    // --- Scheduling (timed). ---
    let started = Instant::now();
    let (done_tx, done_rx) = mpsc::channel::<(usize, Result<InstanceStats>)>();

    let mut deps_remaining: Vec<usize> = plan.ops.iter().map(|o| o.start_after.len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
    for op in &plan.ops {
        for &d in &op.start_after {
            dependents[d].push(op.id);
        }
    }

    let mut metrics = Metrics::new(n_ops);
    metrics.streams = plan.stats().tuple_streams;
    let mut handles = Vec::new();
    let mut instances_left: Vec<usize> = plan.ops.iter().map(|o| o.degree()).collect();
    let mut spawned_instances = 0usize;
    let mut received = 0usize;
    let mut first_err: Option<RelalgError> = None;
    let mut spawned: Vec<bool> = vec![false; n_ops];

    // Spawns every op whose dependencies are met.
    let spawn_ready = |deps_remaining: &Vec<usize>,
                       spawned: &mut Vec<bool>,
                       stream_rx: &mut HashMap<(usize, usize), Vec<Receiver<Msg>>>,
                       out_stream: &mut OutStreams,
                       handles: &mut Vec<std::thread::JoinHandle<()>>,
                       spawned_instances: &mut usize,
                       metrics: &mut Metrics|
     -> Result<()> {
        for op in &plan.ops {
            if spawned[op.id] || deps_remaining[op.id] > 0 {
                continue;
            }
            spawned[op.id] = true;
            let spec = binding.spec(op.join)?;
            let degree = op.degree();
            metrics.ops[op.id].instances = degree;
            metrics.processes += degree;

            // Per-side instance source builders.
            let mut rxs: [Option<Vec<Receiver<Msg>>>; 2] =
                [stream_rx.remove(&(op.id, 0)), stream_rx.remove(&(op.id, 1))];
            let mut mat_fragments: [Option<Vec<Arc<Relation>>>; 2] = [None, None];
            for (side, operand) in [(0usize, &op.left), (1usize, &op.right)] {
                if let OperandSource::Materialized { from } = operand {
                    let frags = store.collect(&format!("op{from}"));
                    if frags.is_empty() {
                        return Err(RelalgError::InvalidPlan(format!(
                            "op {} reads op{from} before it materialized",
                            op.id
                        )));
                    }
                    mat_fragments[side] = Some(frags);
                }
            }
            let out = out_stream.remove(&op.id);

            // `i` indexes channels, fragments, and procs alike.
            #[allow(clippy::needless_range_loop)]
            for i in 0..degree {
                let mut sources: Vec<Source> = Vec::with_capacity(2);
                for (side, operand) in [(0usize, &op.left), (1usize, &op.right)] {
                    let key_col = if side == 0 {
                        spec.left_key
                    } else {
                        spec.right_key
                    };
                    let source = match operand {
                        OperandSource::Base { .. } => {
                            Source::Local(base_fragments[&(op.id, side)][i].clone())
                        }
                        OperandSource::Materialized { .. } => Source::Filtered {
                            fragments: mat_fragments[side].clone().expect("collected above"),
                            key_col,
                            bucket: i,
                            of: degree,
                        },
                        OperandSource::Stream { from } => Source::Stream {
                            rx: rxs[side].as_mut().expect("channels created")[i].clone(),
                            producers: plan.ops[*from].degree(),
                        },
                    };
                    sources.push(source);
                }
                let right = sources.pop().expect("two sides");
                let left = sources.pop().expect("two sides");

                let output = match &out {
                    Some((txs, key_col, pool)) => OutputPort::Stream(Router::new(
                        txs.clone(),
                        *key_col,
                        config.batch_size,
                        pool.clone(),
                    )),
                    None if out_materialized[op.id] => OutputPort::Materialize {
                        store: store.clone(),
                        proc: op.procs[i],
                        name: format!("op{}", op.id),
                        schema: binding.schema(op.join)?.clone(),
                        buffer: Vec::new(),
                    },
                    None => {
                        debug_assert_eq!(op.join, root_join, "only the root op sinks");
                        OutputPort::Sink {
                            collected: sink_buffer.clone(),
                            buffer: Vec::new(),
                        }
                    }
                };

                let algorithm = op.algorithm;
                let spec = spec.clone();
                let batch = config.batch_size;
                let startup = config.startup_cost;
                let fail = config
                    .fail
                    .map(|f| f.op == op.id && f.instance == i)
                    .unwrap_or(false);
                let tx = done_tx.clone();
                let id = op.id;
                let handle = std::thread::Builder::new()
                    .name(format!("op{id}-i{i}"))
                    .spawn(move || {
                        if let Some(d) = startup {
                            std::thread::sleep(d);
                        }
                        if fail {
                            // Injected fault: die without touching the
                            // streams, dropping our channel endpoints.
                            let _ = tx.send((
                                id,
                                Err(RelalgError::InvalidPlan(format!(
                                    "injected failure at op {id} instance {i}"
                                ))),
                            ));
                            return;
                        }
                        let res = match algorithm {
                            JoinAlgorithm::Simple => {
                                run_simple_instance(spec, left, right, output, batch)
                            }
                            JoinAlgorithm::Pipelining => {
                                run_pipelining_instance(spec, left, right, output, batch)
                            }
                        };
                        let _ = tx.send((id, res));
                    })
                    .map_err(|e| RelalgError::InvalidPlan(format!("spawn failed: {e}")))?;
                handles.push(handle);
                *spawned_instances += 1;
            }
        }
        Ok(())
    };

    spawn_ready(
        &deps_remaining,
        &mut spawned,
        &mut stream_rx,
        &mut out_stream,
        &mut handles,
        &mut spawned_instances,
        &mut metrics,
    )?;

    while received < spawned_instances {
        let (op_id, res) = done_rx
            .recv()
            .map_err(|_| RelalgError::InvalidPlan("scheduler channel broke".into()))?;
        received += 1;
        match res {
            Ok(stats) => {
                let m = &mut metrics.ops[op_id];
                m.tuples_in[0] += stats.tuples_in[0];
                m.tuples_in[1] += stats.tuples_in[1];
                m.tuples_out += stats.tuples_out;
                m.table_bytes += stats.table_bytes;
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                    // Unblock producers streaming to never-spawned
                    // consumers.
                    stream_rx.clear();
                }
            }
        }
        instances_left[op_id] -= 1;
        if instances_left[op_id] == 0 && first_err.is_none() {
            // Op complete: release dependents.
            for &d in &dependents[op_id].clone() {
                deps_remaining[d] -= 1;
            }
            spawn_ready(
                &deps_remaining,
                &mut spawned,
                &mut stream_rx,
                &mut out_stream,
                &mut handles,
                &mut spawned_instances,
                &mut metrics,
            )?;
        }
    }
    drop(done_tx);
    for h in handles {
        let _ = h.join();
    }
    let elapsed = started.elapsed();

    if let Some(e) = first_err {
        return Err(e);
    }
    if spawned.iter().any(|s| !s) {
        return Err(RelalgError::InvalidPlan(
            "not all ops became ready (dependency cycle?)".into(),
        ));
    }

    let tuples = std::mem::take(&mut *sink_buffer.lock());
    let relation = Relation::new_unchecked(binding.schema(root_join)?.clone(), tuples);
    Ok(ExecOutcome {
        relation,
        elapsed,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_core::generator::{generate, GeneratorInput};
    use mj_core::strategy::Strategy;
    use mj_plan::cardinality::{node_cards, UniformOneToOne};
    use mj_plan::cost::{tree_costs, CostModel};
    use mj_plan::query::to_xra;
    use mj_plan::shapes::{build, Shape};
    use mj_storage::{Catalog, WisconsinGenerator};

    fn setup(k: usize, n: usize) -> (Arc<Catalog>, u64) {
        let catalog = Arc::new(Catalog::new());
        let gen = WisconsinGenerator::new(n, 42);
        for (name, rel) in gen.generate_named("R", k) {
            catalog.register(name, rel);
        }
        (catalog, n as u64)
    }

    fn run(
        shape: Shape,
        strategy: Strategy,
        k: usize,
        n: usize,
        procs: usize,
    ) -> (ExecOutcome, Relation) {
        let (catalog, nn) = setup(k, n);
        let tree = build(shape, k).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n: nn });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let mut input = GeneratorInput::new(&tree, &cards, &costs, procs);
        input.allow_oversubscribe = procs < tree.join_count();
        let plan = generate(strategy, &input).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let outcome = run_plan(&plan, &binding, catalog.as_ref(), &ExecConfig::default()).unwrap();
        // Oracle: sequential evaluation of the same logical plan.
        let xra = to_xra(&tree, 3, JoinAlgorithm::Simple);
        let expected = xra.eval(catalog.as_ref()).unwrap();
        (outcome, expected)
    }

    #[test]
    fn every_strategy_matches_the_sequential_oracle() {
        for strategy in Strategy::ALL {
            for shape in [Shape::LeftLinear, Shape::WideBushy, Shape::RightLinear] {
                let (outcome, expected) = run(shape, strategy, 5, 200, 4);
                assert_eq!(outcome.relation.len(), 200, "{strategy} {shape}");
                assert!(
                    outcome.relation.multiset_eq(&expected),
                    "{strategy} {shape}: parallel result differs from oracle"
                );
            }
        }
    }

    #[test]
    fn ten_relation_paper_query_all_strategies() {
        for strategy in Strategy::ALL {
            let (outcome, expected) = run(Shape::RightBushy, strategy, 10, 100, 9);
            assert_eq!(outcome.relation.len(), 100, "{strategy}");
            assert!(outcome.relation.multiset_eq(&expected), "{strategy}");
        }
    }

    #[test]
    fn metrics_reflect_the_plan() {
        let (outcome, _) = run(Shape::LeftLinear, Strategy::SP, 5, 200, 4);
        // SP: 4 joins x 4 processors.
        assert_eq!(outcome.metrics.processes, 16);
        // Every join outputs 200 tuples.
        for m in &outcome.metrics.ops {
            assert_eq!(m.tuples_out, 200);
            assert_eq!(m.instances, 4);
        }
        assert!(outcome.elapsed.as_nanos() > 0);
    }

    #[test]
    fn fp_uses_less_processes_but_more_table_memory() {
        let (sp, _) = run(Shape::WideBushy, Strategy::SP, 5, 400, 4);
        let (fp, _) = run(Shape::WideBushy, Strategy::FP, 5, 400, 4);
        assert!(sp.metrics.processes > fp.metrics.processes);
        let sp_bytes: u64 = sp.metrics.ops.iter().map(|o| o.table_bytes).sum();
        let fp_bytes: u64 = fp.metrics.ops.iter().map(|o| o.table_bytes).sum();
        assert!(fp_bytes > sp_bytes, "pipelining joins hold two tables");
    }

    #[test]
    fn oversubscribed_plan_still_correct() {
        // 9 joins on 2 "processors" with sharing allowed.
        let (outcome, expected) = run(Shape::WideBushy, Strategy::FP, 10, 50, 2);
        assert!(outcome.relation.multiset_eq(&expected));
    }

    #[test]
    fn single_processor_execution() {
        let (outcome, expected) = run(Shape::LeftLinear, Strategy::SP, 4, 64, 1);
        assert!(outcome.relation.multiset_eq(&expected));
    }

    /// Runs with a fault injected at (op, instance) and asserts the engine
    /// reports the failure without hanging or panicking.
    fn run_with_failure(shape: Shape, strategy: Strategy, fail: crate::config::FailPoint) {
        let (catalog, n) = setup(6, 128);
        let tree = build(shape, 6).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let mut input = GeneratorInput::new(&tree, &cards, &costs, 4);
        input.allow_oversubscribe = true;
        let plan = generate(strategy, &input).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let config = ExecConfig {
            fail: Some(fail),
            ..ExecConfig::default()
        };
        let err = run_plan(&plan, &binding, catalog.as_ref(), &config)
            .expect_err("injected failure must surface");
        let msg = err.to_string();
        assert!(
            msg.contains("injected failure")
                // Racing teardown may surface a stream error first; both
                // prove the dataflow unwound instead of hanging.
                || msg.contains("closed before End")
                || msg.contains("consumer hung up"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn injected_failure_in_pipelined_plan_terminates() {
        // FP: every op is live-streaming; killing the bottom producer must
        // unwind the whole pipeline.
        run_with_failure(
            Shape::RightLinear,
            Strategy::FP,
            crate::config::FailPoint { op: 0, instance: 0 },
        );
    }

    #[test]
    fn injected_failure_in_materialized_plan_terminates() {
        // SP: sequential materialized phases; downstream ops must never
        // spawn after the failure.
        run_with_failure(
            Shape::LeftLinear,
            Strategy::SP,
            crate::config::FailPoint { op: 2, instance: 1 },
        );
    }

    #[test]
    fn injected_failure_at_the_root_terminates() {
        run_with_failure(
            Shape::WideBushy,
            Strategy::FP,
            crate::config::FailPoint { op: 4, instance: 0 },
        );
    }

    #[test]
    fn failure_on_every_single_point_terminates() {
        // Exhaustive small-scale sweep: no (op, instance) fault anywhere in
        // an RD plan can deadlock the engine.
        let (catalog, n) = setup(5, 64);
        let tree = build(Shape::RightBushy, 5).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let mut input = GeneratorInput::new(&tree, &cards, &costs, 4);
        input.allow_oversubscribe = true;
        let plan = generate(Strategy::RD, &input).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        for op in 0..plan.ops.len() {
            for instance in 0..plan.ops[op].degree() {
                let config = ExecConfig {
                    fail: Some(crate::config::FailPoint { op, instance }),
                    ..ExecConfig::default()
                };
                run_plan(&plan, &binding, catalog.as_ref(), &config)
                    .expect_err("fault must surface");
            }
        }
    }
}
