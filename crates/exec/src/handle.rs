//! Cancellable query handles and pull-based result streams.
//!
//! [`Engine::submit`](crate::engine::Engine::submit) returns a
//! [`QueryHandle`] immediately: the query's operator tasks run on the
//! shared worker pool while a per-query coordinator thread tracks
//! completions. Results are **not** materialized into an
//! `ExecOutcome.relation` first — the root operator instances feed a
//! bounded channel ([`ClientSink`](crate::stream::ClientSink)) that the
//! handle's [`ResultStream`] drains batch by batch, so the first result
//! tuples reach the client while deeper operators are still producing, and
//! a slow client backpressures the worker pool instead of buffering
//! unboundedly.
//!
//! Cancellation is quiescent: [`QueryHandle::cancel`] flips the query's
//! cancel token; every operator task observes it on its next scheduling
//! step, reports [`RelalgError::Canceled`] exactly once through PR 2's
//! completion protocol, and the coordinator reclaims the query's fragment
//! namespace before [`QueryHandle::outcome`] returns. The engine is
//! immediately reusable.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, TryRecvError};
use mj_relalg::{RelalgError, Relation, Result, Schema, Tuple};

use crate::budget::MemoryBudget;
use crate::metrics::counters::EngineCounters;
use crate::metrics::Metrics;
use crate::stream::{Batch, Msg};

/// Lifecycle state of a submitted query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryStatus {
    /// The query's tasks are still running (or queued).
    Running,
    /// Every task completed and all results were delivered.
    Finished,
    /// The query failed; [`QueryHandle::outcome`] carries the error.
    Failed,
    /// The query was cancelled and has quiesced.
    Canceled,
}

// Running is the (default) zero state; the coordinator writes the rest.
const STATE_FINISHED: u8 = 1;
const STATE_FAILED: u8 = 2;
const STATE_CANCELED: u8 = 3;

/// Shared control block of one submitted query: the cancel token the
/// operator tasks poll, the terminal state the coordinator records, and the
/// guardrail state (deadline, memory budget, abort reason, progress and
/// contained-panic counters) added by the robustness layer.
#[derive(Debug, Default)]
pub struct QueryCtrl {
    cancel: AtomicBool,
    /// Graceful early termination: the query's answer is already complete
    /// (a satisfied LIMIT), so upstream operators should stop producing
    /// and report success instead of an error.
    stop: AtomicBool,
    state: AtomicU8,
    /// Guardrail abort: like `cancel`, but carries a typed reason (deadline,
    /// budget, contained panic, stall). First reason wins; every task of the
    /// query observes it on its next scheduling step and reports it.
    aborted: AtomicBool,
    abort: Mutex<Option<RelalgError>>,
    /// Monotone count of productive task steps, sampled by the coordinator
    /// watchdog to detect stalled pipelines.
    progress: AtomicU64,
    /// Panics contained (converted to `Internal`) within this query.
    panics: AtomicU64,
    /// End-to-end time to first batch in microseconds, recorded once by
    /// the [`ResultStream`] when the client pulls its first batch
    /// (stored `+1` so 0 keeps meaning "no batch delivered yet").
    first_batch_us: AtomicU64,
    /// Wall-clock instant after which the query is aborted; `None` = none.
    deadline: Option<Instant>,
    /// The query's memory budget (unlimited when no cap was configured).
    budget: Arc<MemoryBudget>,
}

impl QueryCtrl {
    /// Creates a control block in the `Running` state with no deadline and
    /// an unlimited budget.
    pub fn new() -> Arc<Self> {
        Arc::new(QueryCtrl::default())
    }

    /// Creates a control block with guardrails attached.
    pub fn with_limits(deadline: Option<Instant>, budget: Arc<MemoryBudget>) -> Arc<Self> {
        Arc::new(QueryCtrl {
            deadline,
            budget,
            ..QueryCtrl::default()
        })
    }

    /// Requests cancellation. Idempotent; observed by every task on its
    /// next scheduling step.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// True once cancellation has been requested.
    pub fn is_canceled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Signals that the query's result is complete (a LIMIT was satisfied):
    /// every other task of this query winds down *successfully* on its next
    /// scheduling step — the graceful sibling of [`cancel`](Self::cancel),
    /// raised by the operator framework, not the client.
    pub fn stop_early(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// True once a downstream operator declared the result complete.
    pub fn early_stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Aborts the query with a typed guardrail reason. The first reason
    /// wins (idempotent for followers); every task observes the abort on
    /// its next scheduling step, reports the reason exactly once through
    /// the completion protocol, and the coordinator surfaces it from
    /// `outcome()` after the usual quiesce/reclaim.
    pub fn abort(&self, reason: RelalgError) {
        let mut slot = self.abort.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(reason);
            drop(slot);
            self.aborted.store(true, Ordering::Release);
        }
    }

    /// True once a guardrail abort has been raised.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// The abort reason, if one has been raised.
    pub fn abort_error(&self) -> Option<RelalgError> {
        if !self.is_aborted() {
            return None;
        }
        self.abort
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The query's wall-clock deadline, if one was configured.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True once the configured deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The query's memory budget (unlimited when no cap was configured).
    pub fn budget(&self) -> &Arc<MemoryBudget> {
        &self.budget
    }

    /// Records one productive task step (watchdog heartbeat).
    pub fn note_progress(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Total productive task steps so far.
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Records one contained panic within this query.
    pub fn note_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Panics contained within this query so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Records the client pulling the first result batch `ttfb` after
    /// submission. First call wins; later calls are no-ops.
    pub(crate) fn note_first_batch(&self, ttfb: Duration) {
        let us = ttfb.as_micros().min(u64::MAX as u128 - 1) as u64;
        let _ =
            self.first_batch_us
                .compare_exchange(0, us + 1, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// End-to-end time from submission to the client pulling the first
    /// result batch; `None` while (or if) no batch was ever delivered.
    pub fn time_to_first_batch(&self) -> Option<Duration> {
        match self.first_batch_us.load(Ordering::Relaxed) {
            0 => None,
            us => Some(Duration::from_micros(us - 1)),
        }
    }

    /// Records the coordinator's terminal result.
    pub(crate) fn finish(&self, result: &Result<QueryOutcome>) {
        let state = match result {
            Ok(_) => STATE_FINISHED,
            Err(RelalgError::Canceled) => STATE_CANCELED,
            Err(_) => STATE_FAILED,
        };
        self.state.store(state, Ordering::Release);
    }

    /// The query's current lifecycle state.
    pub fn status(&self) -> QueryStatus {
        match self.state.load(Ordering::Acquire) {
            STATE_FINISHED => QueryStatus::Finished,
            STATE_FAILED => QueryStatus::Failed,
            STATE_CANCELED => QueryStatus::Canceled,
            _ => QueryStatus::Running,
        }
    }
}

/// What a completed query reports: timing and metrics. The result tuples
/// themselves travel through the [`ResultStream`] — they are never
/// materialized inside the engine.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Response time: scheduling start to last operation-process exit (the
    /// paper's metric; base fragmentation is setup, not response time).
    pub elapsed: Duration,
    /// End-to-end time from submission to the client pulling the first
    /// result batch off the stream; `None` when no batch was delivered
    /// (empty result, or the query failed before producing output).
    pub time_to_first_batch: Option<Duration>,
    /// Execution metrics.
    pub metrics: Metrics,
}

/// The result of one non-blocking poll of a [`ResultStream`]
/// ([`ResultStream::poll_next_batch`]).
#[derive(Debug)]
pub enum BatchPoll {
    /// A result batch is ready.
    Batch(Batch),
    /// No batch buffered right now, but producers are still live — poll
    /// again later (the stream never blocks the caller).
    Pending,
    /// The stream is exhausted: every producer finished or unwound.
    /// Terminal status/errors surface from [`QueryHandle::outcome`].
    Done,
}

/// A pull-based iterator over the query's result [`Batch`]es, fed directly
/// from the root operator instances through a bounded channel.
///
/// Dropping the stream before it is exhausted cancels the query (there is
/// nobody left to deliver results to); dropping it after the final `End`
/// is a no-op.
pub struct ResultStream {
    rx: Receiver<Msg>,
    /// Root instances that have not sent `End` yet.
    remaining: usize,
    schema: Arc<Schema>,
    ctrl: Arc<QueryCtrl>,
    ended: bool,
    /// Submission instant, for end-to-end time-to-first-batch.
    started: Instant,
    /// Whether the first batch has been delivered (TTFB recorded).
    first_seen: bool,
    /// Engine counters to feed the time-to-first-batch histogram
    /// (`None` for transient single-query engines like `run_plan`).
    counters: Option<Arc<EngineCounters>>,
}

impl ResultStream {
    pub(crate) fn new(
        rx: Receiver<Msg>,
        producers: usize,
        schema: Arc<Schema>,
        ctrl: Arc<QueryCtrl>,
        started: Instant,
        counters: Option<Arc<EngineCounters>>,
    ) -> Self {
        ResultStream {
            rx,
            remaining: producers,
            schema,
            ctrl,
            ended: producers == 0,
            started,
            first_seen: false,
            counters,
        }
    }

    /// The schema of the streamed tuples.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Records time-to-first-batch on the first delivered batch: into the
    /// query's control block (surfaced by `QueryOutcome`) and the engine's
    /// TTFB histogram. Measured here, client-side, so it is genuinely
    /// end-to-end — submission to the client holding result tuples.
    fn note_first_batch(&mut self) {
        if self.first_seen {
            return;
        }
        self.first_seen = true;
        let ttfb = self.started.elapsed();
        self.ctrl.note_first_batch(ttfb);
        if let Some(counters) = &self.counters {
            counters.note_first_batch(ttfb);
        }
    }

    /// Blocks for the next batch. `None` once every root instance has
    /// finished — or unwound: a query that failed (or was cancelled)
    /// simply ends the stream early, and the error surfaces from
    /// [`QueryHandle::outcome`].
    pub fn next_batch(&mut self) -> Option<Batch> {
        while !self.ended {
            match self.rx.recv() {
                Ok(Msg::Batch(batch)) => {
                    self.note_first_batch();
                    return Some(batch);
                }
                Ok(Msg::End) => {
                    self.remaining -= 1;
                    if self.remaining == 0 {
                        self.ended = true;
                    }
                }
                // Every sender gone without the full End count: the
                // dataflow unwound (error or cancel).
                Err(_) => self.ended = true,
            }
        }
        None
    }

    /// Non-blocking sibling of [`next_batch`](Self::next_batch): returns
    /// [`BatchPoll::Pending`] instead of parking the caller when no batch
    /// is buffered. This is what lets one connection-worker thread
    /// multiplex many clients' streams — poll each stream in turn, never
    /// sleeping inside any single query.
    pub fn poll_next_batch(&mut self) -> BatchPoll {
        while !self.ended {
            match self.rx.try_recv() {
                Ok(Msg::Batch(batch)) => {
                    self.note_first_batch();
                    return BatchPoll::Batch(batch);
                }
                Ok(Msg::End) => {
                    self.remaining -= 1;
                    if self.remaining == 0 {
                        self.ended = true;
                    }
                }
                Err(TryRecvError::Empty) => return BatchPoll::Pending,
                Err(TryRecvError::Disconnected) => self.ended = true,
            }
        }
        BatchPoll::Done
    }

    /// Drains the stream into a materialized [`Relation`] (convenience for
    /// clients that do not want incremental consumption). Completeness is
    /// not guaranteed unless [`QueryHandle::outcome`] reports success.
    pub fn collect_relation(mut self) -> Relation {
        let mut tuples: Vec<Tuple> = Vec::new();
        while let Some(mut batch) = self.next_batch() {
            tuples.extend(batch.drain());
        }
        Relation::new_unchecked(self.schema.clone(), tuples)
    }
}

impl Iterator for ResultStream {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        self.next_batch()
    }
}

impl Drop for ResultStream {
    fn drop(&mut self) {
        // Abandoning a live stream cancels the query; a drained stream
        // (all Ends seen) drops silently.
        if !self.ended {
            self.ctrl.cancel();
        }
    }
}

impl std::fmt::Debug for ResultStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ResultStream(schema {}, {} producers outstanding)",
            self.schema, self.remaining
        )
    }
}

/// A handle to an in-flight query: stream its results, poll its status,
/// cancel it, and collect its final outcome.
///
/// Dropping the handle cancels the query and waits for quiescence, so a
/// handle can never leak running tasks.
pub struct QueryHandle {
    stream: Option<ResultStream>,
    ctrl: Arc<QueryCtrl>,
    coordinator: Option<JoinHandle<Result<QueryOutcome>>>,
}

impl QueryHandle {
    pub(crate) fn new(
        stream: ResultStream,
        ctrl: Arc<QueryCtrl>,
        coordinator: JoinHandle<Result<QueryOutcome>>,
    ) -> Self {
        QueryHandle {
            stream: Some(stream),
            ctrl,
            coordinator: Some(coordinator),
        }
    }

    /// Takes the result stream. Panics if called twice — the stream is the
    /// single consumption point of the query's output.
    pub fn stream(&mut self) -> ResultStream {
        self.stream
            .take()
            .expect("QueryHandle::stream() may only be taken once")
    }

    /// The schema of the result tuples.
    pub fn schema(&self) -> Option<Arc<Schema>> {
        self.stream.as_ref().map(|s| s.schema().clone())
    }

    /// Requests cancellation: every task of this query observes the token
    /// on its next scheduling step and reports exactly once; fragments are
    /// reclaimed before [`outcome`](Self::outcome) returns. Cancelling a
    /// query that already completed is a no-op.
    pub fn cancel(&self) {
        self.ctrl.cancel();
    }

    /// The query's current lifecycle state.
    pub fn status(&self) -> QueryStatus {
        self.ctrl.status()
    }

    /// Waits for the query to quiesce and returns its outcome. If the
    /// stream was never taken, any undelivered results are drained and
    /// discarded first (so `outcome()` cannot deadlock against a full
    /// result channel). Returns [`RelalgError::Canceled`] if the query was
    /// cancelled before completing.
    ///
    /// If you **did** take the stream, finish with it before calling this:
    /// drain it to the end, drop it (which cancels a live query), or call
    /// [`cancel`](Self::cancel) first. `outcome()` blocks until the query
    /// quiesces, and a query cannot quiesce while its root tasks are
    /// backpressured against a taken-but-idle stream — holding the
    /// undrained stream on the same thread that calls `outcome()` would
    /// wait forever. (Draining from another thread is fine; this call then
    /// simply waits for that drain.)
    pub fn outcome(mut self) -> Result<QueryOutcome> {
        self.wait()
    }

    /// Drains the stream into a relation and returns it alongside the
    /// outcome — the one-call path for clients that want the whole result
    /// (`run_plan`'s behaviour, minus the transient engine).
    pub fn collect(mut self) -> Result<Relation> {
        let stream = self.stream.take().ok_or_else(|| {
            RelalgError::InvalidPlan("result stream already taken; drain it instead".into())
        })?;
        let relation = stream.collect_relation();
        self.wait()?;
        Ok(relation)
    }

    fn wait(&mut self) -> Result<QueryOutcome> {
        // Discard any untaken results so root tasks are never wedged on a
        // full channel nobody reads.
        if let Some(mut stream) = self.stream.take() {
            while stream.next_batch().is_some() {}
        }
        match self.coordinator.take() {
            Some(handle) => {
                let mut result = handle
                    .join()
                    .map_err(|_| RelalgError::InvalidPlan("query coordinator panicked".into()))?;
                // TTFB is recorded client-side by the stream; the
                // coordinator cannot know it, so patch it in here.
                if let Ok(outcome) = &mut result {
                    outcome.time_to_first_batch = self.ctrl.time_to_first_batch();
                }
                result
            }
            None => Err(RelalgError::InvalidPlan(
                "query outcome already taken".into(),
            )),
        }
    }
}

impl Drop for QueryHandle {
    fn drop(&mut self) {
        if self.coordinator.is_some() {
            self.ctrl.cancel();
            let _ = self.wait();
        }
    }
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueryHandle({:?})", self.status())
    }
}
