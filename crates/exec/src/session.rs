//! The session facade: the front door a client actually calls.
//!
//! Everything below this module — catalogs, query graphs, phase-1
//! optimizers, strategy costing, plan generation, bindings, the worker
//! pool — is machinery the paper says a *system* should drive (§3–§4).
//! [`Database`] packages it behind three calls:
//!
//! ```text
//! let db = Database::open(DbConfig::default())?;
//! db.register("orders", orders)?;            // + the other relations
//! db.analyze()?;                             // per-column statistics
//! let mut handle = db.query("SELECT * FROM orders JOIN ...")?;
//! for batch in handle.stream() { /* results stream incrementally */ }
//! ```
//!
//! `query` parses the text ([`mj_plan::parse`]), resolves relation and
//! column names against the catalog (spanned errors), derives selectivities
//! from the catalog's per-column distinct counts (the System-R formula the
//! planner already uses), plans with the cost-based [`Planner`], and
//! submits to the shared [`Engine`] — returning a cancellable
//! [`QueryHandle`] whose [`ResultStream`](crate::handle::ResultStream)
//! delivers batches while the query runs.
//!
//! Every failure mode surfaces as a [`MjError`] — the top-level error that
//! unifies the per-crate error types (`From` impls for [`ParseError`] and
//! [`RelalgError`]) and carries byte spans for parse/bind diagnostics.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mj_plan::parse::{
    parse_query, render_span, ColumnRef, ParseError, QueryAst, Scalar, SelectItem, SelectList, Span,
};
use mj_plan::query::{JoinQuery, SelectItemSpec, SelectSpec};
use mj_relalg::expr::Expr;
use mj_relalg::ops::AggFunc;
use mj_relalg::{CmpOp, DataType, Predicate, RelalgError, Relation, RelationProvider, Value};
use mj_storage::Catalog;

use crate::config::{ExecConfig, QueryOptions};
use crate::engine::Engine;
use crate::handle::QueryHandle;
use crate::metrics::{EngineStats, MetricsSnapshot};
use crate::planner::{PlannedQuery, Planner, PlannerOptions};

/// The top-level error of the session API, unifying the per-crate error
/// types behind one enum. Parse and bind failures carry byte [`Span`]s
/// into the query text; [`MjError::render`] draws the caret line.
#[derive(Clone, Debug, PartialEq)]
pub enum MjError {
    /// The query text did not parse.
    Parse(ParseError),
    /// The query parsed but a name/column/type did not resolve against the
    /// catalog.
    Bind {
        /// What failed to bind.
        message: String,
        /// The offending token's byte range in the query text.
        span: Span,
    },
    /// A relation name was registered twice.
    DuplicateRelation(String),
    /// The database configuration is invalid (zero workers, zero
    /// processors, zero batch size, ...).
    Config(String),
    /// The planner could not produce an executable plan for the query.
    Plan(RelalgError),
    /// Execution failed after planning succeeded.
    Exec(RelalgError),
    /// The query was cancelled before it completed.
    Canceled,
    /// The query ran past its deadline and was aborted.
    DeadlineExceeded,
    /// The query exceeded its memory budget and was aborted; the engine
    /// and its sibling queries are unaffected.
    ResourceExhausted {
        /// Bytes the query had charged when the budget tripped.
        used: u64,
        /// The configured budget in bytes.
        budget: u64,
    },
    /// The pipeline made no progress for the configured stall timeout;
    /// the payload is a per-operator progress dump.
    Stalled(String),
    /// A worker task panicked; the panic was contained to this query and
    /// converted into this error (the payload is the panic message).
    Internal(String),
    /// The engine's concurrent-query limit and admission wait queue are
    /// both full; the submission was rejected without running. Carries the
    /// wait-queue depth at rejection so clients can back off
    /// proportionally (the query server forwards it on the wire).
    Overloaded {
        /// Submissions waiting in the admission queue when this one was
        /// rejected.
        queue_depth: usize,
    },
    /// A prepared-statement call failed before planning or execution:
    /// argument arity mismatch, an execute against an unknown or closed
    /// statement id, or a malformed argument. Unlike [`MjError::Bind`]
    /// there is no query-text span — the failure is in the *call*, not
    /// the statement text.
    Params(String),
}

impl MjError {
    /// A bind error at `span`.
    pub fn bind(message: impl Into<String>, span: Span) -> Self {
        MjError::Bind {
            message: message.into(),
            span,
        }
    }

    /// The span of a parse/bind error, if this error carries one.
    pub fn span(&self) -> Option<Span> {
        match self {
            MjError::Parse(e) => Some(e.span),
            MjError::Bind { span, .. } => Some(*span),
            _ => None,
        }
    }

    /// Renders the error against the query source: spanned errors get the
    /// offending line with a caret underline, everything else the plain
    /// message.
    pub fn render(&self, source: &str) -> String {
        match self.span() {
            Some(span) => render_span(source, span, &self.to_string()),
            None => format!("{self}\n"),
        }
    }
}

impl fmt::Display for MjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MjError::Parse(e) => write!(f, "{e}"),
            MjError::Bind { message, span } => {
                write!(f, "bind error at {}: {message}", span.start)
            }
            MjError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` is already registered")
            }
            MjError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            MjError::Plan(e) => write!(f, "planning failed: {e}"),
            MjError::Exec(e) => write!(f, "execution failed: {e}"),
            MjError::Canceled => write!(f, "query canceled"),
            MjError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            MjError::ResourceExhausted { used, budget } => write!(
                f,
                "query memory budget exhausted: {used} bytes used of {budget} allowed"
            ),
            MjError::Stalled(dump) => write!(f, "query stalled: {dump}"),
            MjError::Internal(msg) => write!(f, "internal error (contained panic): {msg}"),
            MjError::Overloaded { queue_depth } => write!(
                f,
                "engine overloaded: concurrent query limit and wait queue \
                 ({queue_depth} deep) are full"
            ),
            MjError::Params(msg) => write!(f, "prepared-statement error: {msg}"),
        }
    }
}

impl std::error::Error for MjError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MjError::Parse(e) => Some(e),
            MjError::Plan(e) | MjError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for MjError {
    fn from(e: ParseError) -> Self {
        MjError::Parse(e)
    }
}

impl From<RelalgError> for MjError {
    fn from(e: RelalgError) -> Self {
        match e {
            RelalgError::Canceled => MjError::Canceled,
            RelalgError::DeadlineExceeded => MjError::DeadlineExceeded,
            RelalgError::ResourceExhausted { used, budget } => {
                MjError::ResourceExhausted { used, budget }
            }
            RelalgError::Stalled(dump) => MjError::Stalled(dump),
            RelalgError::Internal(msg) => MjError::Internal(msg),
            RelalgError::Overloaded { queue_depth } => MjError::Overloaded { queue_depth },
            other => MjError::Exec(other),
        }
    }
}

/// Result alias of the session API.
pub type MjResult<T> = std::result::Result<T, MjError>;

// Process-global plan-cache tallies, following the relaxed-atomics pattern
// of the batch-pool counters: the cache records hits/misses/evictions here
// and `EngineStats` folds them in at snapshot time.
static PLAN_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static PLAN_CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn plan_cache_hits() -> u64 {
    PLAN_CACHE_HITS.load(Ordering::Relaxed)
}

pub(crate) fn plan_cache_misses() -> u64 {
    PLAN_CACHE_MISSES.load(Ordering::Relaxed)
}

pub(crate) fn plan_cache_evictions() -> u64 {
    PLAN_CACHE_EVICTIONS.load(Ordering::Relaxed)
}

/// Default capacity of a [`Database`]'s prepared-statement plan cache.
pub const PLAN_CACHE_CAPACITY: usize = 64;

/// A prepared statement: the parsed, bound, and cost-planned form of a
/// parameterized query, reusable across executions without re-planning.
///
/// Produced by [`Database::prepare`] (which consults the session's shared
/// plan cache) and executed by [`Database::execute_prepared`], which
/// substitutes the `?N` placeholders with literal arguments in a
/// clone-and-rewrite of the cached plan's predicates — the tree, parallel
/// allocation, and estimates are reused as-is.
pub struct PreparedStatement {
    /// Original statement text (re-prepared verbatim on staleness).
    text: String,
    /// Number of `?N` placeholders (contiguous from `?1`).
    params: u32,
    /// Result column names, in output order.
    columns: Vec<String>,
    /// The bound output spec (select list, grouping, limit).
    spec: SelectSpec,
    /// The cached cost-based plan, predicates still holding `?N` leaves.
    planned: PlannedQuery,
    /// Catalog generation the plan was built against.
    generation: u64,
}

impl PreparedStatement {
    /// The statement text as given to [`Database::prepare`].
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Number of `?N` placeholders the statement expects (contiguous from
    /// `?1`, so this is also the required argument count).
    pub fn params(&self) -> u32 {
        self.params
    }

    /// Result column names, in output order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The bound select spec (output items, grouping, limit).
    pub fn spec(&self) -> &SelectSpec {
        &self.spec
    }

    /// The cached plan, with `?N` placeholders still unbound. Useful for
    /// explain output and oracle-based differential tests
    /// ([`PlannedQuery::bind_params`] produces the executable form).
    pub fn planned(&self) -> &PlannedQuery {
        &self.planned
    }

    /// The catalog generation this plan was built against. When the live
    /// catalog has moved past it, the plan is stale and
    /// [`Database::execute_prepared`] transparently re-prepares.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl fmt::Debug for PreparedStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PreparedStatement({:?}, {} params, gen {})",
            self.text, self.params, self.generation
        )
    }
}

/// A bounded LRU cache of prepared plans, keyed by whitespace-normalized
/// statement text and shared by every connection of a [`Database`].
///
/// Entries carry the catalog generation they were planned against; a
/// lookup whose entry is stale counts as a miss (and the refreshed plan
/// replaces the stale entry, counting an eviction). Eviction under
/// capacity pressure removes the least-recently-used entry.
struct PlanCache {
    capacity: usize,
    inner: Mutex<PlanCacheInner>,
}

#[derive(Default)]
struct PlanCacheInner {
    entries: HashMap<String, PlanCacheSlot>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
}

struct PlanCacheSlot {
    stmt: Arc<PreparedStatement>,
    last_used: u64,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(PlanCacheInner::default()),
        }
    }

    /// Looks up `key`, requiring the entry's generation to match
    /// `generation`. A fresh entry is a hit; a stale or absent entry is a
    /// miss (stale entries are left in place — `insert` replaces them).
    fn get(&self, key: &str, generation: u64) -> Option<Arc<PreparedStatement>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(slot) if slot.stmt.generation == generation => {
                slot.last_used = tick;
                PLAN_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                Some(slot.stmt.clone())
            }
            _ => {
                PLAN_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly planned statement, evicting the LRU entry if the
    /// cache is full (replacing a stale entry under the same key also
    /// counts as an eviction).
    fn insert(&self, key: String, stmt: Arc<PreparedStatement>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.entries.get_mut(&key) {
            PLAN_CACHE_EVICTIONS.fetch_add(1, Ordering::Relaxed);
            slot.stmt = stmt;
            slot.last_used = tick;
            return;
        }
        if inner.entries.len() >= self.capacity {
            if let Some(lru) = inner
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&lru);
                PLAN_CACHE_EVICTIONS.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.entries.insert(
            key,
            PlanCacheSlot {
                stmt,
                last_used: tick,
            },
        );
    }

    fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }
}

/// Collapses whitespace runs to single spaces — the plan-cache key, so
/// re-formatted but identical statements share one cached plan. (Comments
/// are left in place: they only split tokens, never change them, so two
/// texts with different comments simply occupy different cache keys.)
fn normalize_query_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_ws = true;
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(ch);
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Every `?N` placeholder of the AST with its span, in syntactic order.
fn collect_params(ast: &QueryAst) -> Vec<(u32, Span)> {
    let mut out = Vec::new();
    for clause in &ast.where_clauses {
        for side in [&clause.left, &clause.right] {
            if let Scalar::Param(n, span) = side {
                out.push((*n, *span));
            }
        }
    }
    out
}

/// Validates that the AST's placeholders are numbered contiguously from
/// `?1` and returns the parameter count (0 when the query has none).
fn validate_params(ast: &QueryAst) -> MjResult<u32> {
    let seen = collect_params(ast);
    let max = seen.iter().map(|(n, _)| *n).max().unwrap_or(0);
    for wanted in 1..=max {
        if !seen.iter().any(|(n, _)| *n == wanted) {
            let (_, span) = seen
                .iter()
                .find(|(n, _)| *n == max)
                .copied()
                .expect("max came from seen");
            return Err(MjError::bind(
                format!(
                    "parameters must be numbered contiguously from ?1: \
                     ?{max} is used but ?{wanted} is not"
                ),
                span,
            ));
        }
    }
    Ok(max)
}

/// Configuration of a [`Database`]: the execution engine's tunables plus
/// the planner's options (logical processors, cost models, strategy
/// override).
#[derive(Clone, Copy, Debug)]
pub struct DbConfig {
    /// Worker pool, batching, and channel tunables.
    pub exec: ExecConfig,
    /// Cost-based planner options (notably `processors`, the logical
    /// parallelism every plan is allocated over).
    pub planner: PlannerOptions,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            exec: ExecConfig::default(),
            planner: PlannerOptions::new(8),
        }
    }
}

impl DbConfig {
    /// Validates the configuration without opening anything.
    pub fn validate(&self) -> MjResult<()> {
        self.exec.validate().map_err(MjError::Config)?;
        if self.planner.processors == 0 {
            return Err(MjError::Config(
                "planner processors must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// A database session: one [`Catalog`], one [`Engine`] (fixed worker
/// pool), one [`Planner`]. Shareable across client threads (`&Database` is
/// all a client needs); every in-flight query multiplexes onto the same
/// workers.
pub struct Database {
    catalog: Arc<Catalog>,
    engine: Engine,
    planner: Planner,
    /// Shared prepared-statement plan cache (bounded LRU, generation-
    /// validated against the catalog).
    plan_cache: PlanCache,
}

impl Database {
    /// Opens an empty database. Validates the whole configuration up
    /// front: zero workers, zero processors, or zero batch/channel sizes
    /// are [`MjError::Config`], never a panic.
    pub fn open(config: DbConfig) -> MjResult<Database> {
        config.validate()?;
        let catalog = Arc::new(Catalog::new());
        let engine = Engine::new(catalog.clone(), config.exec)
            .map_err(|e| MjError::Config(e.to_string()))?;
        Ok(Database {
            catalog,
            engine,
            planner: Planner::new(config.planner),
            plan_cache: PlanCache::new(PLAN_CACHE_CAPACITY),
        })
    }

    /// Registers a relation under `name`. Duplicate names are rejected
    /// atomically ([`MjError::DuplicateRelation`]); the original stays.
    pub fn register(&self, name: impl Into<String>, relation: Arc<Relation>) -> MjResult<()> {
        let name = name.into();
        self.catalog
            .register_new(name.clone(), relation)
            .map_err(|e| match e {
                // `register_new` only rejects name collisions today; keep
                // any future failure mode's real cause visible.
                RelalgError::InvalidPlan(_) => MjError::DuplicateRelation(name),
                other => MjError::Exec(other),
            })
    }

    /// Scans every registered relation and records exact per-column
    /// distinct counts — what the planner's System-R selectivity formula
    /// runs on. Call after registration (and after bulk changes).
    pub fn analyze(&self) -> MjResult<()> {
        for name in self.catalog.names() {
            self.catalog.analyze(&name).map_err(MjError::Exec)?;
        }
        Ok(())
    }

    /// The catalog behind this session.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The shared execution engine (worker pool, fragment store).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The planner options this session plans with.
    pub fn planner_options(&self) -> &PlannerOptions {
        self.planner.options()
    }

    /// Parses and binds `text` into a validated [`JoinQuery`] (joins plus
    /// any WHERE filters) and the bound [`SelectSpec`] (output items,
    /// grouping, limit) — the frontend half of [`query`](Self::query),
    /// exposed for tools that want the bound query without planning it.
    pub fn bind(&self, text: &str) -> MjResult<(JoinQuery, SelectSpec)> {
        let ast = parse_query(text)?;
        if let Some((n, span)) = collect_params(&ast).first().copied() {
            return Err(MjError::bind(
                format!(
                    "placeholder ?{n} requires a prepared statement; \
                     use prepare/execute instead of an ad-hoc query"
                ),
                span,
            ));
        }
        bind_ast(&ast, &self.catalog)
    }

    /// Plans `text` end to end (parse → bind → cost-based planner) without
    /// executing — what `mj sql --explain` prints.
    pub fn plan(&self, text: &str) -> MjResult<PlannedQuery> {
        let (query, spec) = self.bind(text)?;
        self.planner
            .plan_select(&query, &spec)
            .map_err(MjError::Plan)
    }

    /// Parses, binds, plans, and submits `text`, returning a cancellable
    /// [`QueryHandle`] immediately. Results stream through
    /// [`QueryHandle::stream`] while the query runs on the shared pool.
    pub fn query(&self, text: &str) -> MjResult<QueryHandle> {
        self.query_with(text, QueryOptions::default())
    }

    /// [`query`](Self::query) with per-query [`QueryOptions`]: a deadline
    /// and/or memory budget that override the session-wide defaults in
    /// [`ExecConfig`]. Limit violations surface as typed errors on the
    /// handle ([`MjError::DeadlineExceeded`], [`MjError::ResourceExhausted`])
    /// — never as a process abort — and leave the session reusable.
    pub fn query_with(&self, text: &str, opts: QueryOptions) -> MjResult<QueryHandle> {
        let planned = self.plan(text)?;
        self.engine
            .submit_with(&planned.plan, &planned.binding, opts)
            .map_err(MjError::from)
    }

    /// Prepares `text` as a reusable statement: parse → validate `?N`
    /// placeholders (contiguous from `?1`) → bind → cost-based plan, all
    /// through the session's shared bounded-LRU plan cache. A repeated
    /// prepare of the same (whitespace-normalized) text against an
    /// unchanged catalog is a cache hit and skips every one of those
    /// steps; any catalog mutation (`register`, `analyze`, statistics
    /// updates) bumps the generation and forces a re-plan on the next
    /// prepare — a stale plan never runs against a changed catalog.
    pub fn prepare(&self, text: &str) -> MjResult<Arc<PreparedStatement>> {
        let key = normalize_query_text(text);
        let generation = self.catalog.generation();
        if let Some(stmt) = self.plan_cache.get(&key, generation) {
            return Ok(stmt);
        }
        let ast = parse_query(text)?;
        let params = validate_params(&ast)?;
        let (query, spec) = bind_ast(&ast, &self.catalog)?;
        let planned = self
            .planner
            .plan_select(&query, &spec)
            .map_err(MjError::Plan)?;
        let columns = planned
            .binding
            .result_schema(planned.plan.tree.root())
            .map_err(MjError::Plan)?
            .attrs()
            .iter()
            .map(|a| a.name.clone())
            .collect();
        let stmt = Arc::new(PreparedStatement {
            text: text.to_string(),
            params,
            columns,
            spec,
            planned,
            generation,
        });
        self.plan_cache.insert(key, stmt.clone());
        Ok(stmt)
    }

    /// Executes a prepared statement with the given placeholder arguments
    /// (`args[0]` binds `?1`). See
    /// [`execute_prepared_with`](Self::execute_prepared_with).
    pub fn execute_prepared(
        &self,
        stmt: &Arc<PreparedStatement>,
        args: &[i64],
    ) -> MjResult<QueryHandle> {
        self.execute_prepared_with(stmt, args, QueryOptions::default())
    }

    /// Executes a prepared statement with per-query [`QueryOptions`]:
    /// checks argument arity ([`MjError::Params`] on mismatch), re-prepares
    /// transparently through the shared cache if the catalog has mutated
    /// since the statement was planned, substitutes the `?N` placeholders
    /// into the plan's predicates without re-planning
    /// ([`PlannedQuery::bind_params`]), and submits to the engine.
    pub fn execute_prepared_with(
        &self,
        stmt: &Arc<PreparedStatement>,
        args: &[i64],
        opts: QueryOptions,
    ) -> MjResult<QueryHandle> {
        if args.len() != stmt.params as usize {
            return Err(MjError::Params(format!(
                "statement expects {} argument(s), got {}",
                stmt.params,
                args.len()
            )));
        }
        // Staleness check: a catalog mutation since planning means the
        // cached tree/estimates may no longer be valid — re-prepare (a
        // cache miss) rather than run a stale plan.
        let current = if stmt.generation == self.catalog.generation() {
            stmt.clone()
        } else {
            self.prepare(&stmt.text)?
        };
        if args.is_empty() {
            return self
                .engine
                .submit_with(&current.planned.plan, &current.planned.binding, opts)
                .map_err(MjError::from);
        }
        let bound = current.planned.bind_params(args).map_err(MjError::Plan)?;
        self.engine
            .submit_with(&bound.plan, &bound.binding, opts)
            .map_err(MjError::from)
    }

    /// Number of plans currently resident in the shared plan cache.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Engine-lifetime robustness counters: completions, cancellations,
    /// timeouts, budget aborts, contained panics, admission rejections,
    /// peak charged bytes, and the query-latency histograms — one
    /// atomically consistent snapshot (every per-query counter is read
    /// under a single lock), so `queries_completed + queries_failed +
    /// queries_canceled + queries_timed_out + queries_stalled +
    /// budget_aborts + queries_rejected <= queries_submitted` holds even
    /// when polled concurrently with running queries.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// The accept-listed metrics export ([`crate::metrics::METRICS_ACCEPT_LIST`])
    /// built from one consistent [`stats`](Self::stats) snapshot — what
    /// the query server serves as `GET /metrics` (Prometheus text via
    /// [`MetricsSnapshot::to_prometheus`]) and as JSON (serde).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.engine.metrics_snapshot()
    }

    /// Plans and submits an already-validated [`JoinQuery`] (the
    /// programmatic twin of [`query`](Self::query) for clients that build
    /// queries directly). Keeps every column of every relation, in
    /// tree-independent `(relation, column)` order.
    pub fn query_ast(&self, query: &JoinQuery) -> MjResult<QueryHandle> {
        let planned = self.planner.plan(query).map_err(MjError::Plan)?;
        self.engine
            .submit(&planned.plan, &planned.binding)
            .map_err(MjError::from)
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Database({} relations, {} workers, {} planner processors)",
            self.catalog.len(),
            self.engine.workers(),
            self.planner.options().processors
        )
    }
}

/// Binds a parsed query against the catalog: resolves relation and column
/// names (spanned errors), derives join *and filter* selectivities from
/// per-column distinct counts, lowers WHERE conjuncts onto their
/// relations, and maps the select list / GROUP BY / LIMIT into a
/// [`SelectSpec`].
fn bind_ast(ast: &QueryAst, catalog: &Catalog) -> MjResult<(JoinQuery, SelectSpec)> {
    if ast.joins.is_empty() {
        return Err(MjError::bind(
            format!(
                "the engine evaluates multi-join queries; join `{}` to at least one other \
                 relation",
                ast.from.name
            ),
            ast.from.span,
        ));
    }

    let mut query = JoinQuery::new();
    let mut index: HashMap<&str, usize> = HashMap::new();
    for ident in ast.relations() {
        if index.contains_key(ident.name.as_str()) {
            return Err(MjError::bind(
                format!("relation `{}` appears twice in the query", ident.name),
                ident.span,
            ));
        }
        let stats = catalog
            .stats(&ident.name)
            .map_err(|_| MjError::bind(format!("unknown relation `{}`", ident.name), ident.span))?;
        let schema = catalog
            .relation(&ident.name)
            .map_err(|_| MjError::bind(format!("unknown relation `{}`", ident.name), ident.span))?
            .schema()
            .clone();
        let idx = query
            .add_relation(&ident.name, stats.cardinality, schema)
            .map_err(|e| MjError::bind(e.to_string(), ident.span))?;
        index.insert(ident.name.as_str(), idx);
    }

    // Resolve the join conditions left to right; each ON clause may only
    // reference relations already in scope (FROM plus earlier/this JOIN).
    let mut in_scope: Vec<&str> = vec![ast.from.name.as_str()];
    for clause in &ast.joins {
        in_scope.push(clause.relation.name.as_str());
        let (a, ca) = resolve_column(&clause.left, &index, &in_scope, &query)?;
        let (b, cb) = resolve_column(&clause.right, &index, &in_scope, &query)?;
        if a == b {
            return Err(MjError::bind(
                "a join condition must relate two different relations",
                clause.on_span,
            ));
        }
        let da = catalog
            .column_distinct(&query.graph().names()[a], ca)
            .map_err(MjError::Exec)?
            .max(1);
        let db = catalog
            .column_distinct(&query.graph().names()[b], cb)
            .map_err(MjError::Exec)?
            .max(1);
        let selectivity = 1.0 / da.max(db) as f64;
        query
            .add_join(a, b, ca, cb, selectivity)
            .map_err(|e| MjError::bind(e.to_string(), clause.on_span))?;
    }

    // WHERE: every relation is in scope (the clause sits after all JOINs).
    let all: Vec<&str> = index.keys().copied().collect();
    for clause in &ast.where_clauses {
        bind_where_clause(clause, catalog, &index, &all, &mut query)?;
    }

    // GROUP BY columns.
    let mut group_by: Vec<(usize, usize)> = Vec::new();
    for col in &ast.group_by {
        let rc = resolve_column(col, &index, &all, &query)?;
        if !group_by.contains(&rc) {
            group_by.push(rc);
        }
    }

    // Select list.
    let mut items: Vec<SelectItemSpec> = Vec::new();
    match &ast.select {
        SelectList::Star => {
            if !group_by.is_empty() {
                return Err(MjError::bind(
                    "SELECT * cannot be combined with GROUP BY; list the grouped columns \
                     and aggregates explicitly",
                    ast.group_by[0].span(),
                ));
            }
            items.extend(
                query
                    .all_columns()
                    .into_iter()
                    .map(|(r, c)| SelectItemSpec::Column(r, c)),
            );
        }
        SelectList::Items(list) => {
            let has_aggregates = list.iter().any(|i| matches!(i, SelectItem::Aggregate(_)));
            let mut used_names: Vec<String> = Vec::new();
            for item in list {
                match item {
                    SelectItem::Column(col) => {
                        let rc = resolve_column(col, &index, &all, &query)?;
                        if (has_aggregates || !group_by.is_empty()) && !group_by.contains(&rc) {
                            return Err(MjError::bind(
                                format!(
                                    "column `{}.{}` must appear in GROUP BY to be selected \
                                     alongside aggregates",
                                    col.relation.name, col.column.name
                                ),
                                col.span(),
                            ));
                        }
                        items.push(SelectItemSpec::Column(rc.0, rc.1));
                    }
                    SelectItem::Aggregate(call) => {
                        let input = match &call.arg {
                            Some(col) => {
                                let rc = resolve_column(col, &index, &all, &query)?;
                                if call.func != AggFunc::Count {
                                    let attr = query
                                        .schema(rc.0)
                                        .map_err(MjError::Exec)?
                                        .attr(rc.1)
                                        .map_err(MjError::Exec)?;
                                    if attr.ty != DataType::Int {
                                        return Err(MjError::bind(
                                            format!(
                                                "{:?} needs an integer column, `{}.{}` is {}",
                                                call.func,
                                                col.relation.name,
                                                col.column.name,
                                                attr.ty
                                            ),
                                            col.span(),
                                        ));
                                    }
                                }
                                Some(rc)
                            }
                            None => None,
                        };
                        let base = agg_output_name(call.func, call.arg.as_ref());
                        let mut name = base.clone();
                        let mut suffix = 2;
                        while used_names.contains(&name) {
                            name = format!("{base}_{suffix}");
                            suffix += 1;
                        }
                        used_names.push(name.clone());
                        items.push(SelectItemSpec::Aggregate {
                            func: call.func,
                            input,
                            name,
                        });
                    }
                }
            }
        }
    }
    // (`GROUP BY` with only plain columns is grouped-distinct output —
    // every selected column was already checked to be a group column.)

    // Estimated distinct-group count from catalog statistics (product of
    // per-column distincts, saturating).
    let group_distinct_hint = if group_by.is_empty() {
        None
    } else {
        let mut product: u64 = 1;
        for &(r, c) in &group_by {
            let d = catalog
                .column_distinct(&query.graph().names()[r], c)
                .map_err(MjError::Exec)?
                .max(1);
            product = product.saturating_mul(d);
        }
        Some(product)
    };

    let spec = SelectSpec {
        items,
        group_by,
        limit: ast.limit.map(|l| l.rows),
        group_distinct_hint,
    };
    Ok((query, spec))
}

/// Output attribute name for an aggregate call: `count` for `COUNT(*)`,
/// `sum_<col>` style otherwise.
fn agg_output_name(func: AggFunc, arg: Option<&ColumnRef>) -> String {
    let prefix = match func {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    };
    match arg {
        Some(col) => format!("{prefix}_{}", col.column.name),
        None => prefix.to_string(),
    }
}

/// Binds one WHERE conjunct onto its relation as a pushed-down filter:
/// classifies the two sides (column vs literal), checks types, derives a
/// System-R-style selectivity from the catalog's distinct counts, and
/// attaches the predicate to the [`JoinQuery`].
fn bind_where_clause(
    clause: &mj_plan::parse::WhereClause,
    catalog: &Catalog,
    index: &HashMap<&str, usize>,
    scope: &[&str],
    query: &mut JoinQuery,
) -> MjResult<()> {
    let bind_side = |s: &Scalar| -> MjResult<BoundScalar> {
        match s {
            Scalar::Column(col) => {
                let (r, c) = resolve_column(col, index, scope, query)?;
                Ok(BoundScalar::Column(r, c))
            }
            Scalar::Int(v, _) => Ok(BoundScalar::Int(*v)),
            Scalar::Param(n, _) => Ok(BoundScalar::Param(*n)),
        }
    };
    let left = bind_side(&clause.left)?;
    let right = bind_side(&clause.right)?;

    let (rel, predicate, selectivity) = match (left, right) {
        (BoundScalar::Column(r, c), BoundScalar::Int(v)) => {
            check_int_column(query, r, c, &clause.left)?;
            (
                r,
                Predicate::Cmp {
                    left: Expr::Attr(c),
                    op: clause.op,
                    right: Expr::Lit(Value::Int(v)),
                },
                literal_selectivity(catalog, query, r, c, clause.op)?,
            )
        }
        (BoundScalar::Int(v), BoundScalar::Column(r, c)) => {
            check_int_column(query, r, c, &clause.right)?;
            // `5 < r.a` is `r.a > 5`: flip so the attribute leads.
            (
                r,
                Predicate::Cmp {
                    left: Expr::Attr(c),
                    op: flip_cmp(clause.op),
                    right: Expr::Lit(Value::Int(v)),
                },
                literal_selectivity(catalog, query, r, c, flip_cmp(clause.op))?,
            )
        }
        (BoundScalar::Column(ra, ca), BoundScalar::Column(rb, cb)) => {
            if ra != rb {
                return Err(MjError::bind(
                    "a WHERE predicate may reference only one relation; cross-relation \
                     conditions belong in a JOIN ... ON clause",
                    clause.span,
                ));
            }
            let ta = query
                .schema(ra)
                .map_err(MjError::Exec)?
                .attr(ca)
                .map_err(MjError::Exec)?
                .ty;
            let tb = query
                .schema(rb)
                .map_err(MjError::Exec)?
                .attr(cb)
                .map_err(MjError::Exec)?
                .ty;
            if ta != tb {
                return Err(MjError::bind(
                    format!("cannot compare a {ta} column with a {tb} column"),
                    clause.span,
                ));
            }
            (
                ra,
                Predicate::Cmp {
                    left: Expr::Attr(ca),
                    op: clause.op,
                    right: Expr::Attr(cb),
                },
                // Same-relation column comparison: the classic 1/10 guess.
                0.1,
            )
        }
        (BoundScalar::Column(r, c), BoundScalar::Param(n)) => {
            check_int_column(query, r, c, &clause.left)?;
            // Placeholders plan exactly like literals: selectivity of a
            // literal comparison never depends on the literal's value, so
            // the cached plan is valid for every argument binding.
            (
                r,
                Predicate::Cmp {
                    left: Expr::Attr(c),
                    op: clause.op,
                    right: Expr::Param(n),
                },
                literal_selectivity(catalog, query, r, c, clause.op)?,
            )
        }
        (BoundScalar::Param(n), BoundScalar::Column(r, c)) => {
            check_int_column(query, r, c, &clause.right)?;
            // `?1 < r.a` is `r.a > ?1`: flip so the attribute leads.
            (
                r,
                Predicate::Cmp {
                    left: Expr::Attr(c),
                    op: flip_cmp(clause.op),
                    right: Expr::Param(n),
                },
                literal_selectivity(catalog, query, r, c, flip_cmp(clause.op))?,
            )
        }
        (
            BoundScalar::Int(_) | BoundScalar::Param(_),
            BoundScalar::Int(_) | BoundScalar::Param(_),
        ) => {
            return Err(MjError::bind(
                "a WHERE predicate must reference a column",
                clause.span,
            ));
        }
    };
    query
        .add_filter(rel, predicate, selectivity)
        .map_err(|e| MjError::bind(e.to_string(), clause.span))
}

enum BoundScalar {
    Column(usize, usize),
    Int(i64),
    Param(u32),
}

/// The mirrored comparison (operands swapped).
fn flip_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Rejects string columns in integer-literal comparisons, pointing at the
/// column reference.
fn check_int_column(query: &JoinQuery, rel: usize, col: usize, side: &Scalar) -> MjResult<()> {
    let attr = query
        .schema(rel)
        .map_err(MjError::Exec)?
        .attr(col)
        .map_err(MjError::Exec)?;
    if attr.ty != DataType::Int {
        return Err(MjError::bind(
            format!(
                "cannot compare {} column `{}` with an integer literal",
                attr.ty, attr.name
            ),
            side.span(),
        ));
    }
    Ok(())
}

/// System-R-style selectivity of `col op literal` from the catalog's
/// distinct counts: `1/d` for equality, `1 - 1/d` for inequality, the
/// classic 1/3 for ranges. Clamped into `(0, 1]`.
fn literal_selectivity(
    catalog: &Catalog,
    query: &JoinQuery,
    rel: usize,
    col: usize,
    op: CmpOp,
) -> MjResult<f64> {
    let d = catalog
        .column_distinct(&query.graph().names()[rel], col)
        .map_err(MjError::Exec)?
        .max(1) as f64;
    let sel = match op {
        CmpOp::Eq => 1.0 / d,
        CmpOp::Ne => 1.0 - 1.0 / d,
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => 1.0 / 3.0,
    };
    Ok(sel.clamp(1e-3, 1.0))
}

/// Resolves `relation.column` to `(relation index, column index)`,
/// checking the relation is in `scope`.
fn resolve_column(
    col: &ColumnRef,
    index: &HashMap<&str, usize>,
    scope: &[&str],
    query: &JoinQuery,
) -> MjResult<(usize, usize)> {
    let rel_name = col.relation.name.as_str();
    let rel = match index.get(rel_name) {
        Some(&idx) if scope.contains(&rel_name) => idx,
        Some(_) => {
            return Err(MjError::bind(
                format!(
                    "relation `{rel_name}` is not in scope yet; a join condition may only \
                     reference relations joined so far"
                ),
                col.relation.span,
            ))
        }
        None => {
            return Err(MjError::bind(
                format!("relation `{rel_name}` is not part of this query"),
                col.relation.span,
            ))
        }
    };
    let schema = query.schema(rel).map_err(MjError::Exec)?;
    let column = schema.index_of(&col.column.name).map_err(|_| {
        MjError::bind(
            format!(
                "relation `{rel_name}` has no column `{}` (columns: {})",
                col.column.name,
                schema
                    .attrs()
                    .iter()
                    .map(|a| a.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            col.column.span,
        )
    })?;
    Ok((rel, column))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::{Attribute, Schema, Tuple};

    fn rel(cols: &[&str], rows: usize) -> Arc<Relation> {
        let schema = Schema::new(cols.iter().map(|c| Attribute::int(*c)).collect()).shared();
        let arity = cols.len();
        let tuples = (0..rows as i64)
            .map(|i| Tuple::from_ints(&vec![i; arity]))
            .collect();
        Arc::new(Relation::new_unchecked(schema, tuples))
    }

    fn small_db() -> Database {
        let db = Database::open(DbConfig::default()).unwrap();
        db.register("users", rel(&["id", "team"], 32)).unwrap();
        db.register("orders", rel(&["user_id", "item"], 32))
            .unwrap();
        db.register("items", rel(&["id", "price"], 32)).unwrap();
        db.analyze().unwrap();
        db
    }

    #[test]
    fn open_rejects_bad_configs() {
        let mut config = DbConfig::default();
        config.exec.workers = 0;
        assert!(matches!(Database::open(config), Err(MjError::Config(_))));
        let mut config = DbConfig::default();
        config.planner.processors = 0;
        assert!(matches!(Database::open(config), Err(MjError::Config(_))));
        let mut config = DbConfig::default();
        config.exec.batch_size = 0;
        assert!(matches!(Database::open(config), Err(MjError::Config(_))));
        let mut config = DbConfig::default();
        config.exec.channel_capacity = 0;
        assert!(matches!(Database::open(config), Err(MjError::Config(_))));
    }

    #[test]
    fn duplicate_registration_is_an_error() {
        let db = small_db();
        let err = db.register("users", rel(&["id"], 4)).unwrap_err();
        assert!(
            matches!(err, MjError::DuplicateRelation(ref n) if n == "users"),
            "{err}"
        );
        // Original relation untouched.
        assert_eq!(db.catalog().relation("users").unwrap().schema().arity(), 2);
    }

    #[test]
    fn query_streams_a_two_way_join() {
        let db = small_db();
        let result = db
            .query("SELECT * FROM users JOIN orders ON users.id = orders.user_id")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(result.len(), 32, "id and user_id are both 0..32");
        assert_eq!(result.schema().arity(), 4);
    }

    #[test]
    fn explicit_projection_controls_output() {
        let db = small_db();
        let result = db
            .query(
                "SELECT orders.item, users.team FROM users \
                 JOIN orders ON users.id = orders.user_id",
            )
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(result.schema().arity(), 2);
        assert_eq!(result.schema().attr(0).unwrap().name, "item");
        assert_eq!(result.schema().attr(1).unwrap().name, "team");
        assert_eq!(result.len(), 32);
    }

    #[test]
    fn unknown_relation_is_a_spanned_bind_error() {
        let db = small_db();
        let src = "SELECT * FROM users JOIN ghosts ON users.id = ghosts.id";
        let err = db.query(src).unwrap_err();
        let span = err.span().expect("bind errors carry a span");
        assert_eq!(&src[span.start..span.end], "ghosts");
        assert!(
            err.to_string().contains("unknown relation `ghosts`"),
            "{err}"
        );
        assert!(err.render(src).contains("^"), "{}", err.render(src));
    }

    #[test]
    fn unknown_column_and_out_of_scope_are_bind_errors() {
        let db = small_db();
        let src = "SELECT * FROM users JOIN orders ON users.nope = orders.user_id";
        let err = db.query(src).unwrap_err();
        let span = err.span().unwrap();
        assert_eq!(&src[span.start..span.end], "nope");
        assert!(err.to_string().contains("no column `nope`"), "{err}");

        // `items` is referenced before it is joined.
        let src = "SELECT * FROM users JOIN orders ON users.id = items.id \
                   JOIN items ON orders.item = items.id";
        let err = db.query(src).unwrap_err();
        assert!(err.to_string().contains("not in scope"), "{err}");
    }

    #[test]
    fn single_relation_query_is_rejected_with_span() {
        let db = small_db();
        let err = db.query("SELECT * FROM users").unwrap_err();
        assert!(matches!(err, MjError::Bind { .. }), "{err}");
        assert!(err.to_string().contains("at least one"), "{err}");
    }

    #[test]
    fn parse_errors_pass_through_with_spans() {
        let db = small_db();
        let err = db.query("SELECT * FROM users JOIN").unwrap_err();
        assert!(matches!(err, MjError::Parse(_)), "{err}");
        assert_eq!(err.span().unwrap().start, 24);
    }

    #[test]
    fn query_ast_runs_a_programmatic_query() {
        let db = small_db();
        let (query, _) = db
            .bind("SELECT * FROM users JOIN orders ON users.id = orders.user_id")
            .unwrap();
        let result = db.query_ast(&query).unwrap().collect().unwrap();
        assert_eq!(result.len(), 32);
    }

    #[test]
    fn self_join_condition_is_rejected() {
        let db = small_db();
        let err = db
            .query("SELECT * FROM users JOIN orders ON users.id = users.team")
            .unwrap_err();
        assert!(err.to_string().contains("two different relations"), "{err}");
    }

    const PREPARED_TEXT: &str = "SELECT * FROM users JOIN orders \
                                 ON users.id = orders.user_id WHERE users.id < ?1";

    #[test]
    fn prepared_execute_matches_adhoc_literals() {
        let db = small_db();
        let stmt = db.prepare(PREPARED_TEXT).unwrap();
        assert_eq!(stmt.params(), 1);
        assert_eq!(stmt.columns().len(), 4);
        // Boundary-hugging arguments: below, at, and past the key range.
        for k in [0i64, 1, 7, 31, 32, 100] {
            let got = db.execute_prepared(&stmt, &[k]).unwrap().collect().unwrap();
            let adhoc = db
                .query(&format!(
                    "SELECT * FROM users JOIN orders \
                     ON users.id = orders.user_id WHERE users.id < {k}"
                ))
                .unwrap()
                .collect()
                .unwrap();
            assert_eq!(got.len(), adhoc.len(), "arg {k}");
            assert_eq!(got.len() as i64, k.clamp(0, 32), "arg {k}");
        }
    }

    #[test]
    fn params_lead_and_flip_like_literals() {
        let db = small_db();
        // `?1 <= users.id` must flip into `users.id >= ?1`.
        let stmt = db
            .prepare(
                "SELECT * FROM users JOIN orders \
                 ON users.id = orders.user_id WHERE ?1 <= users.id",
            )
            .unwrap();
        let got = db
            .execute_prepared(&stmt, &[30])
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(got.len(), 2, "ids 30 and 31 remain");
    }

    #[test]
    fn plan_cache_hits_and_catalog_invalidation() {
        let db = small_db();
        let before = db.stats();
        let s1 = db.prepare(PREPARED_TEXT).unwrap();
        // Same statement, different whitespace: one shared cache entry.
        let s2 = db
            .prepare(
                "SELECT *  FROM users  JOIN orders \
                 ON users.id = orders.user_id\nWHERE users.id < ?1",
            )
            .unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "whitespace variants share the plan");
        let mid = db.stats();
        assert!(mid.plan_cache_hits > before.plan_cache_hits);
        assert!(mid.plan_cache_misses > before.plan_cache_misses);

        // `register` bumps the catalog generation: next prepare re-plans.
        db.register("extra", rel(&["id"], 4)).unwrap();
        let s3 = db.prepare(PREPARED_TEXT).unwrap();
        assert!(!Arc::ptr_eq(&s1, &s3), "stale plan must be replaced");
        let after_register = db.stats();
        assert!(after_register.plan_cache_misses > mid.plan_cache_misses);

        // `analyze` is a statistics write: it invalidates too.
        db.analyze().unwrap();
        let s4 = db.prepare(PREPARED_TEXT).unwrap();
        assert!(!Arc::ptr_eq(&s3, &s4));
        assert!(db.stats().plan_cache_misses > after_register.plan_cache_misses);
    }

    #[test]
    fn stale_statement_reprepares_transparently() {
        let db = small_db();
        let stmt = db.prepare(PREPARED_TEXT).unwrap();
        // Mutate the catalog between prepare and execute.
        db.register("latecomer", rel(&["id"], 4)).unwrap();
        db.analyze().unwrap();
        let got = db
            .execute_prepared(&stmt, &[10])
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(got.len(), 10, "stale handle still answers correctly");
    }

    #[test]
    fn prepared_argument_arity_is_checked() {
        let db = small_db();
        let stmt = db.prepare(PREPARED_TEXT).unwrap();
        for bad in [&[][..], &[1, 2][..]] {
            let err = db.execute_prepared(&stmt, bad).unwrap_err();
            assert!(matches!(err, MjError::Params(_)), "{err}");
            assert!(err.to_string().contains("expects 1 argument"), "{err}");
        }
    }

    #[test]
    fn adhoc_query_rejects_placeholders() {
        let db = small_db();
        let err = db.query(PREPARED_TEXT).unwrap_err();
        assert!(matches!(err, MjError::Bind { .. }), "{err}");
        assert!(err.to_string().contains("prepared statement"), "{err}");
        let span = err.span().unwrap();
        assert_eq!(&PREPARED_TEXT[span.start..span.end], "?1");
    }

    #[test]
    fn param_numbering_must_be_contiguous() {
        let db = small_db();
        let src = "SELECT * FROM users JOIN orders \
                   ON users.id = orders.user_id WHERE users.id < ?2";
        let err = db.prepare(src).unwrap_err();
        assert!(err.to_string().contains("contiguously"), "{err}");
        assert_eq!(
            &src[err.span().unwrap().start..err.span().unwrap().end],
            "?2"
        );
    }

    #[test]
    fn plan_cache_is_bounded_with_lru_eviction() {
        let db = small_db();
        let evictions_before = db.stats().plan_cache_evictions;
        for i in 0..(PLAN_CACHE_CAPACITY + 8) {
            db.prepare(&format!(
                "SELECT * FROM users JOIN orders \
                 ON users.id = orders.user_id WHERE users.id < {i}"
            ))
            .unwrap();
        }
        assert!(db.plan_cache_len() <= PLAN_CACHE_CAPACITY);
        assert!(db.stats().plan_cache_evictions >= evictions_before + 8);
    }
}
