//! Tuple streams: bounded channels plus the hash-split router.
//!
//! A redistribution between an n-instance producer and an m-instance
//! consumer opens n×m logical streams (§3.5): each producer instance holds
//! a sender to each consumer instance and routes every tuple by hashing
//! the consumer's key column — the same hash that fragments base relations,
//! so co-partitioned operands stay aligned.
//!
//! Batch buffers are pooled per redistribution edge: a consumer that
//! finishes a [`Batch`] returns the emptied `Vec` to the shared
//! [`BatchPool`], and producers reuse it for the next flush. In steady
//! state the edge moves tuples with **zero** buffer allocations — the only
//! per-tuple cost is the (cheap, shared-payload) tuple move itself.

use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};
use mj_relalg::hash::bucket_of;
use mj_relalg::{RelalgError, Result, Tuple};
use parking_lot::Mutex;

/// A bounded recycler of batch buffers shared by one redistribution edge.
pub struct BatchPool {
    free: Mutex<Vec<Vec<Tuple>>>,
    limit: usize,
}

impl BatchPool {
    /// Creates a pool retaining at most `limit` spare buffers.
    pub fn new(limit: usize) -> Arc<Self> {
        Arc::new(BatchPool {
            free: Mutex::new(Vec::new()),
            limit: limit.max(1),
        })
    }

    /// Takes a spare buffer, or allocates one of `capacity`.
    pub fn take(&self, capacity: usize) -> Vec<Tuple> {
        match self.free.lock().pop() {
            Some(buf) => buf,
            None => Vec::with_capacity(capacity),
        }
    }

    /// Returns an emptied buffer for reuse (dropped if the pool is full).
    pub fn put(&self, mut buf: Vec<Tuple>) {
        buf.clear();
        let mut free = self.free.lock();
        if free.len() < self.limit {
            free.push(buf);
        }
    }

    /// Spare buffers currently pooled (for tests).
    pub fn spares(&self) -> usize {
        self.free.lock().len()
    }
}

/// A batch of tuples in flight. Dropping the batch returns its buffer to
/// the owning pool — consumers just drain and drop.
pub struct Batch {
    tuples: Vec<Tuple>,
    pool: Option<Arc<BatchPool>>,
}

impl Batch {
    /// Wraps a full buffer for sending; `pool` receives the buffer back
    /// when the batch is dropped.
    pub fn new(tuples: Vec<Tuple>, pool: Arc<BatchPool>) -> Self {
        Batch {
            tuples,
            pool: Some(pool),
        }
    }

    /// A pool-less batch (tests and ad-hoc streams).
    pub fn unpooled(tuples: Vec<Tuple>) -> Self {
        Batch { tuples, pool: None }
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples, borrowed.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consumes the tuples, leaving the buffer to be recycled on drop.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Tuple> {
        self.tuples.drain(..)
    }
}

impl Drop for Batch {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.tuples));
        }
    }
}

impl std::fmt::Debug for Batch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Batch({} tuples)", self.tuples.len())
    }
}

/// A message on a tuple stream.
#[derive(Debug)]
pub enum Msg {
    /// A batch of tuples.
    Batch(Batch),
    /// The sending producer instance is done.
    End,
}

/// Creates the channels for one redistributed operand: `consumers`
/// receivers, each of capacity `capacity` batches, plus the edge's shared
/// buffer pool (sized so every in-flight slot plus every producer-side
/// fill buffer can be pooled).
pub fn operand_channels(
    consumers: usize,
    capacity: usize,
) -> (Vec<Sender<Msg>>, Vec<Receiver<Msg>>, Arc<BatchPool>) {
    let mut txs = Vec::with_capacity(consumers);
    let mut rxs = Vec::with_capacity(consumers);
    for _ in 0..consumers {
        let (tx, rx) = bounded(capacity);
        txs.push(tx);
        rxs.push(rx);
    }
    let pool = BatchPool::new(consumers * (capacity + 2));
    (txs, rxs, pool)
}

/// A producer instance's split sender: buffers tuples per destination and
/// ships batches, reusing buffers from the edge's pool.
pub struct Router {
    senders: Vec<Sender<Msg>>,
    key_col: usize,
    batch: usize,
    buffers: Vec<Vec<Tuple>>,
    pool: Arc<BatchPool>,
    sent: u64,
}

impl Router {
    /// Creates a router over the destination senders, splitting on
    /// `key_col` of the routed tuples.
    pub fn new(
        senders: Vec<Sender<Msg>>,
        key_col: usize,
        batch: usize,
        pool: Arc<BatchPool>,
    ) -> Self {
        let buffers = senders.iter().map(|_| pool.take(batch)).collect();
        Router {
            senders,
            key_col,
            batch,
            buffers,
            pool,
            sent: 0,
        }
    }

    /// Number of destinations.
    pub fn destinations(&self) -> usize {
        self.senders.len()
    }

    /// Tuples routed so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Routes one tuple, flushing the destination buffer when full. The
    /// replacement buffer comes from the pool (take-and-swap), so steady
    /// state allocates nothing.
    pub fn route(&mut self, tuple: Tuple) -> Result<()> {
        let key = tuple.int(self.key_col)?;
        let dest = bucket_of(key, self.senders.len());
        self.buffers[dest].push(tuple);
        self.sent += 1;
        if self.buffers[dest].len() >= self.batch {
            let full = std::mem::replace(&mut self.buffers[dest], self.pool.take(self.batch));
            self.senders[dest]
                .send(Msg::Batch(Batch::new(full, self.pool.clone())))
                .map_err(|_| RelalgError::InvalidPlan("consumer hung up".into()))?;
        }
        Ok(())
    }

    /// Flushes all buffers and sends `End` to every destination.
    pub fn finish(mut self) -> Result<()> {
        for (dest, buf) in self.buffers.iter_mut().enumerate() {
            if !buf.is_empty() {
                let batch = std::mem::take(buf);
                self.senders[dest]
                    .send(Msg::Batch(Batch::new(batch, self.pool.clone())))
                    .map_err(|_| RelalgError::InvalidPlan("consumer hung up".into()))?;
            }
        }
        for s in &self.senders {
            s.send(Msg::End)
                .map_err(|_| RelalgError::InvalidPlan("consumer hung up".into()))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_key_and_flushes_on_finish() {
        let (txs, rxs, pool) = operand_channels(3, 8);
        // Consume concurrently: the channels are bounded, so routing 100
        // tuples before draining anything would block on backpressure once
        // one destination exceeds capacity x batch tuples.
        let consumers: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(dest, rx)| {
                std::thread::spawn(move || {
                    let mut n = 0usize;
                    let mut ended = false;
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Msg::Batch(batch) => {
                                for t in batch.tuples() {
                                    assert_eq!(
                                        bucket_of(t.int(0).unwrap(), 3),
                                        dest,
                                        "tuple routed to wrong destination"
                                    );
                                }
                                n += batch.len();
                            }
                            Msg::End => {
                                ended = true;
                                break;
                            }
                        }
                    }
                    assert!(ended, "destination {dest} missing End");
                    n
                })
            })
            .collect();

        let mut router = Router::new(txs, 0, 4, pool);
        for k in 0..100i64 {
            router.route(Tuple::from_ints(&[k, k])).unwrap();
        }
        assert_eq!(router.sent(), 100);
        router.finish().unwrap();
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn single_destination_gets_everything() {
        // 10 tuples at batch 2 = 5 batches + End; capacity must cover them
        // because this test drains only after finish().
        let (txs, rxs, pool) = operand_channels(1, 8);
        let mut router = Router::new(txs, 0, 2, pool);
        for k in 0..10i64 {
            router.route(Tuple::from_ints(&[k])).unwrap();
        }
        router.finish().unwrap();
        let mut n = 0;
        while let Ok(Msg::Batch(b)) = rxs[0].recv() {
            n += b.len();
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        // A full bounded channel must stall route() rather than drop or
        // error; draining one message releases exactly one send.
        let (txs, rxs, pool) = operand_channels(1, 1);
        let rx = rxs.into_iter().next().unwrap();
        let producer = std::thread::spawn(move || {
            let mut router = Router::new(txs, 0, 1, pool);
            // batch=1: every route() is a send. Second send blocks until
            // the consumer below drains the first.
            for k in 0..50i64 {
                router.route(Tuple::from_ints(&[k])).unwrap();
            }
            router.finish().unwrap();
        });
        let mut seen = 0usize;
        while let Ok(msg) = rx.recv() {
            match msg {
                Msg::Batch(b) => seen += b.len(),
                Msg::End => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, 50);
    }

    #[test]
    fn hung_up_consumer_is_an_error() {
        let (txs, rxs, pool) = operand_channels(1, 1);
        drop(rxs);
        let mut router = Router::new(txs, 0, 1, pool);
        // The first route triggers a batch send into a closed channel.
        let r = router.route(Tuple::from_ints(&[1]));
        assert!(r.is_err());
    }

    #[test]
    fn dropped_batches_recycle_their_buffers() {
        let (txs, rxs, pool) = operand_channels(1, 8);
        let mut router = Router::new(txs, 0, 2, pool.clone());
        for k in 0..8i64 {
            router.route(Tuple::from_ints(&[k])).unwrap();
        }
        router.finish().unwrap();
        assert_eq!(pool.spares(), 0, "buffers are in flight, not pooled");
        let mut drained = 0;
        while let Ok(msg) = rxs[0].recv() {
            match msg {
                Msg::Batch(mut b) => {
                    drained += b.drain().count();
                    // Dropping `b` here returns the buffer to the pool.
                }
                Msg::End => break,
            }
        }
        assert_eq!(drained, 8);
        assert_eq!(pool.spares(), 4, "all four flushed buffers returned");

        // A new router on the same pool reuses those buffers.
        let (txs2, _rxs2, _) = operand_channels(1, 8);
        let _router2 = Router::new(txs2, 0, 2, pool.clone());
        assert_eq!(pool.spares(), 3, "router took a pooled buffer");
    }

    #[test]
    fn pool_respects_limit() {
        let pool = BatchPool::new(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(4));
        }
        assert_eq!(pool.spares(), 2);
        let a = pool.take(4);
        assert_eq!(a.capacity(), 4);
        assert_eq!(pool.spares(), 1);
    }
}
