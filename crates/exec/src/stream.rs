//! Tuple streams: bounded channels plus the hash-split router.
//!
//! A redistribution between an n-instance producer and an m-instance
//! consumer opens n×m logical streams (§3.5): each producer instance holds
//! a sender to each consumer instance and routes every tuple by hashing
//! the consumer's key column — the same hash that fragments base relations,
//! so co-partitioned operands stay aligned.

use crossbeam::channel::{bounded, Receiver, Sender};
use mj_relalg::hash::bucket_of;
use mj_relalg::{RelalgError, Result, Tuple};

/// A message on a tuple stream.
#[derive(Debug)]
pub enum Msg {
    /// A batch of tuples.
    Batch(Vec<Tuple>),
    /// The sending producer instance is done.
    End,
}

/// Creates the channels for one redistributed operand: `consumers`
/// receivers, each of capacity `capacity` batches.
pub fn operand_channels(
    consumers: usize,
    capacity: usize,
) -> (Vec<Sender<Msg>>, Vec<Receiver<Msg>>) {
    let mut txs = Vec::with_capacity(consumers);
    let mut rxs = Vec::with_capacity(consumers);
    for _ in 0..consumers {
        let (tx, rx) = bounded(capacity);
        txs.push(tx);
        rxs.push(rx);
    }
    (txs, rxs)
}

/// A producer instance's split sender: buffers tuples per destination and
/// ships batches.
pub struct Router {
    senders: Vec<Sender<Msg>>,
    key_col: usize,
    batch: usize,
    buffers: Vec<Vec<Tuple>>,
    sent: u64,
}

impl Router {
    /// Creates a router over the destination senders, splitting on
    /// `key_col` of the routed tuples.
    pub fn new(senders: Vec<Sender<Msg>>, key_col: usize, batch: usize) -> Self {
        let buffers = senders.iter().map(|_| Vec::with_capacity(batch)).collect();
        Router { senders, key_col, batch, buffers, sent: 0 }
    }

    /// Number of destinations.
    pub fn destinations(&self) -> usize {
        self.senders.len()
    }

    /// Tuples routed so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Routes one tuple, flushing the destination buffer when full.
    pub fn route(&mut self, tuple: Tuple) -> Result<()> {
        let key = tuple.int(self.key_col)?;
        let dest = bucket_of(key, self.senders.len());
        self.buffers[dest].push(tuple);
        self.sent += 1;
        if self.buffers[dest].len() >= self.batch {
            let batch = std::mem::replace(&mut self.buffers[dest], Vec::with_capacity(self.batch));
            self.senders[dest]
                .send(Msg::Batch(batch))
                .map_err(|_| RelalgError::InvalidPlan("consumer hung up".into()))?;
        }
        Ok(())
    }

    /// Flushes all buffers and sends `End` to every destination.
    pub fn finish(mut self) -> Result<()> {
        for (dest, buf) in self.buffers.iter_mut().enumerate() {
            if !buf.is_empty() {
                let batch = std::mem::take(buf);
                self.senders[dest]
                    .send(Msg::Batch(batch))
                    .map_err(|_| RelalgError::InvalidPlan("consumer hung up".into()))?;
            }
        }
        for s in &self.senders {
            s.send(Msg::End)
                .map_err(|_| RelalgError::InvalidPlan("consumer hung up".into()))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_key_and_flushes_on_finish() {
        let (txs, rxs) = operand_channels(3, 8);
        // Consume concurrently: the channels are bounded, so routing 100
        // tuples before draining anything would block on backpressure once
        // one destination exceeds capacity x batch tuples.
        let consumers: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(dest, rx)| {
                std::thread::spawn(move || {
                    let mut n = 0usize;
                    let mut ended = false;
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Msg::Batch(batch) => {
                                for t in &batch {
                                    assert_eq!(
                                        bucket_of(t.int(0).unwrap(), 3),
                                        dest,
                                        "tuple routed to wrong destination"
                                    );
                                }
                                n += batch.len();
                            }
                            Msg::End => {
                                ended = true;
                                break;
                            }
                        }
                    }
                    assert!(ended, "destination {dest} missing End");
                    n
                })
            })
            .collect();

        let mut router = Router::new(txs, 0, 4);
        for k in 0..100i64 {
            router.route(Tuple::from_ints(&[k, k])).unwrap();
        }
        assert_eq!(router.sent(), 100);
        router.finish().unwrap();
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn single_destination_gets_everything() {
        // 10 tuples at batch 2 = 5 batches + End; capacity must cover them
        // because this test drains only after finish().
        let (txs, rxs) = operand_channels(1, 8);
        let mut router = Router::new(txs, 0, 2);
        for k in 0..10i64 {
            router.route(Tuple::from_ints(&[k])).unwrap();
        }
        router.finish().unwrap();
        let mut n = 0;
        while let Ok(Msg::Batch(b)) = rxs[0].recv() {
            n += b.len();
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        // A full bounded channel must stall route() rather than drop or
        // error; draining one message releases exactly one send.
        let (txs, rxs) = operand_channels(1, 1);
        let rx = rxs.into_iter().next().unwrap();
        let producer = std::thread::spawn(move || {
            let mut router = Router::new(txs, 0, 1);
            // batch=1: every route() is a send. Second send blocks until
            // the consumer below drains the first.
            for k in 0..50i64 {
                router.route(Tuple::from_ints(&[k])).unwrap();
            }
            router.finish().unwrap();
        });
        let mut seen = 0usize;
        loop {
            match rx.recv().expect("producer alive") {
                Msg::Batch(b) => seen += b.len(),
                Msg::End => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, 50);
    }

    #[test]
    fn hung_up_consumer_is_an_error() {
        let (txs, rxs) = operand_channels(1, 1);
        drop(rxs);
        let mut router = Router::new(txs, 0, 1);
        // The first route triggers a batch send into a closed channel.
        let r = router.route(Tuple::from_ints(&[1]));
        assert!(r.is_err());
    }
}
