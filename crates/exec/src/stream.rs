//! Columnar batch streams: bounded channels plus the hash-split router.
//!
//! A redistribution between an n-instance producer and an m-instance
//! consumer opens n×m logical streams (§3.5): each producer instance holds
//! a sender to each consumer instance and routes every row by hashing the
//! consumer's key column — the same hash that fragments base relations,
//! so co-partitioned operands stay aligned.
//!
//! Batches travel **column-wise** ([`ColumnBatch`]): one `i64` buffer per
//! integer column, a `Value` fallback column otherwise. The router splits
//! a whole batch at a time — hash the key column into a destination vector
//! ([`bucket_keys`]), then gather each destination's rows column-at-a-time
//! — instead of dispatching per tuple. Rows ([`Tuple`]) are materialized
//! only at the client boundary ([`ClientSink`] / [`Batch::drain`]).
//!
//! Column buffers are pooled per redistribution edge: a consumer that
//! finishes a [`Batch`] returns the emptied buffers to the shared
//! [`BatchPool`], and producers reuse them for the next flush. The pool is
//! created with the edge's [`ColumnLayout`], so takes/misses and the
//! attached memory budget account **real columnar bytes** (8 bytes per
//! pooled `i64` slot, one `Value` slot per fallback column — see
//! [`ColumnLayout::row_bytes`]), not a per-row struct guess. The pool is
//! sized from **both** endpoint counts ([`edge_buffer_bound`]): every
//! in-flight channel slot plus every producer-side fill buffer can be
//! pooled, so in steady state the edge moves rows with **zero** buffer
//! allocations. The pool counts takes and misses so benches can assert the
//! hit rate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use mj_relalg::column::{bucket_keys, ColumnBatch, ColumnLayout};
use mj_relalg::{RelalgError, Result, Tuple};
use parking_lot::Mutex;

/// Process-wide batch-pool take count, summed across every edge pool (the
/// per-pool counters die with their query; these feed `EngineStats`).
static POOL_TAKES: AtomicU64 = AtomicU64::new(0);
/// Process-wide batch-pool miss count (takes that had to allocate).
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Buffer takes served by all batch pools since process start.
pub fn pool_takes() -> u64 {
    POOL_TAKES.load(Ordering::Relaxed)
}

/// Buffer takes that missed (allocated) across all batch pools since
/// process start.
pub fn pool_misses() -> u64 {
    POOL_MISSES.load(Ordering::Relaxed)
}

/// A bounded recycler of column-batch buffers shared by one
/// redistribution edge. Layout-aware: every pooled buffer has the edge's
/// column types, and budget accounting charges the buffers' real
/// allocated bytes.
pub struct BatchPool {
    free: Mutex<Vec<ColumnBatch>>,
    limit: usize,
    layout: ColumnLayout,
    takes: AtomicU64,
    misses: AtomicU64,
    /// The owning query's memory budget, when one is attached: allocating
    /// takes charge it, dropped buffers credit it, and the remainder is
    /// credited when the pool itself drops at query teardown.
    budget: Mutex<Option<Arc<crate::budget::MemoryBudget>>>,
    charged: AtomicU64,
}

impl BatchPool {
    /// Creates a pool retaining at most `limit` spare buffers of the given
    /// column layout.
    pub fn new(limit: usize, layout: ColumnLayout) -> Arc<Self> {
        Arc::new(BatchPool {
            free: Mutex::new(Vec::new()),
            limit: limit.max(1),
            layout,
            takes: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            budget: Mutex::new(None),
            charged: AtomicU64::new(0),
        })
    }

    /// The column layout of this pool's buffers.
    pub fn layout(&self) -> &ColumnLayout {
        &self.layout
    }

    /// Attaches the owning query's memory budget: every buffer this pool
    /// allocates from here on is charged against it.
    pub fn set_budget(&self, budget: Arc<crate::budget::MemoryBudget>) {
        *self.budget.lock() = Some(budget);
    }

    /// Takes a spare buffer, or allocates one with room for `capacity`
    /// rows. Allocations charge the attached budget with the buffer's
    /// actual columnar bytes.
    pub fn take(&self, capacity: usize) -> ColumnBatch {
        self.takes.fetch_add(1, Ordering::Relaxed);
        POOL_TAKES.fetch_add(1, Ordering::Relaxed);
        match self.free.lock().pop() {
            Some(buf) => buf,
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                POOL_MISSES.fetch_add(1, Ordering::Relaxed);
                let buf = ColumnBatch::with_capacity(&self.layout, capacity);
                let bytes = buf.capacity_bytes();
                if bytes > 0 {
                    if let Some(budget) = self.budget.lock().as_ref() {
                        budget.charge(bytes);
                        self.charged.fetch_add(bytes, Ordering::Relaxed);
                    }
                }
                buf
            }
        }
    }

    /// Returns an emptied buffer for reuse (dropped — and its bytes
    /// credited back — if the pool is full or the buffer has a foreign
    /// layout).
    pub fn put(&self, mut buf: ColumnBatch) {
        buf.clear();
        let bytes = buf.capacity_bytes();
        let dropped = {
            let mut free = self.free.lock();
            if free.len() < self.limit && buf.layout() == self.layout {
                free.push(buf);
                false
            } else {
                true
            }
        };
        if dropped {
            self.credit(bytes);
        }
    }

    /// Credits up to `bytes` back to the attached budget (bounded by what
    /// this pool actually charged, so shared edges never over-credit).
    fn credit(&self, bytes: u64) {
        if let Some(budget) = self.budget.lock().as_ref() {
            let mut charged = self.charged.load(Ordering::Relaxed);
            loop {
                let credit = bytes.min(charged);
                if credit == 0 {
                    return;
                }
                match self.charged.compare_exchange_weak(
                    charged,
                    charged - credit,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        budget.credit(credit);
                        return;
                    }
                    Err(seen) => charged = seen,
                }
            }
        }
    }

    /// Spare buffers currently pooled (for tests).
    pub fn spares(&self) -> usize {
        self.free.lock().len()
    }

    /// Buffers handed out so far.
    pub fn takes(&self) -> u64 {
        self.takes.load(Ordering::Relaxed)
    }

    /// Takes that had to allocate because the pool was empty. With a
    /// correctly sized pool this stays at the cold-start buffer count; a
    /// growing miss count means buffers are being dropped and reallocated
    /// in steady state.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of takes served from the pool (1.0 when nothing was taken).
    pub fn hit_rate(&self) -> f64 {
        let takes = self.takes();
        if takes == 0 {
            return 1.0;
        }
        1.0 - self.misses() as f64 / takes as f64
    }
}

impl Drop for BatchPool {
    fn drop(&mut self) {
        // Query teardown: return whatever the edge still holds (pooled
        // spares and in-flight buffers) to the budget.
        let remaining = self.charged.load(Ordering::Relaxed);
        if remaining > 0 {
            if let Some(budget) = self.budget.lock().as_ref() {
                budget.credit(remaining);
            }
        }
    }
}

/// A columnar batch of rows in flight. Dropping the batch returns its
/// column buffers to the owning pool — consumers read (or drain) and drop.
pub struct Batch {
    cols: ColumnBatch,
    pool: Option<Arc<BatchPool>>,
}

impl Batch {
    /// Wraps a full buffer for sending; `pool` receives the buffers back
    /// when the batch is dropped.
    pub fn new(cols: ColumnBatch, pool: Arc<BatchPool>) -> Self {
        Batch {
            cols,
            pool: Some(pool),
        }
    }

    /// A pool-less batch (tests and ad-hoc streams).
    pub fn unpooled(cols: ColumnBatch) -> Self {
        Batch { cols, pool: None }
    }

    /// A pool-less batch built from rows (tests).
    pub fn from_tuples(tuples: &[Tuple]) -> Result<Self> {
        let mut cols = ColumnBatch::shapeless();
        for t in tuples {
            cols.push_tuple(t)?;
        }
        Ok(Batch::unpooled(cols))
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.cols.rows()
    }

    /// True if the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The columns, borrowed (the zero-copy consumer path).
    pub fn columns(&self) -> &ColumnBatch {
        &self.cols
    }

    /// Logical bytes of the rows held.
    pub fn est_bytes(&self) -> u64 {
        self.cols.est_bytes()
    }

    /// Materializes row `i` as a [`Tuple`] (client boundary).
    pub fn row(&self, i: usize) -> Result<Tuple> {
        self.cols.row(i)
    }

    /// Materializes all rows (client boundary / tests).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.cols.rows());
        for i in 0..self.cols.rows() {
            // Rows of a well-formed batch always materialize.
            out.push(self.cols.row(i).expect("batch row within bounds"));
        }
        out
    }

    /// Materializes and consumes the rows, leaving the emptied column
    /// buffers to be recycled on drop. This is where the columnar world
    /// turns back into [`Tuple`]s for the client.
    pub fn drain(&mut self) -> std::vec::IntoIter<Tuple> {
        let tuples = self.to_tuples();
        self.cols.clear();
        tuples.into_iter()
    }
}

impl Drop for Batch {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.cols));
        }
    }
}

impl std::fmt::Debug for Batch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Batch({} rows x {} cols)",
            self.cols.rows(),
            self.cols.arity()
        )
    }
}

/// A message on a batch stream.
#[derive(Debug)]
pub enum Msg {
    /// A columnar batch of rows.
    Batch(Batch),
    /// The sending producer instance is done.
    End,
}

/// The number of batch buffers one redistribution edge can have live at
/// once: every in-flight channel slot, each producer's per-destination fill
/// buffers plus one parked (backpressured) batch, and one batch being
/// drained by each consumer. The edge pool must retain this many spares or
/// steady state drops and reallocates buffers.
pub fn edge_buffer_bound(producers: usize, consumers: usize, capacity: usize) -> usize {
    consumers * capacity + producers * (consumers + 1) + consumers
}

/// Creates the channels for one redistributed operand between a
/// `producers`-instance producer and a `consumers`-instance consumer:
/// `consumers` receivers, each of capacity `capacity` batches, plus the
/// edge's shared buffer pool (typed with the operand's column `layout`),
/// sized from **both** endpoint counts (each producer instance holds
/// `consumers` fill buffers on top of the in-flight slots, so a
/// consumer-only bound would thrash the pool).
pub fn operand_channels(
    producers: usize,
    consumers: usize,
    capacity: usize,
    layout: ColumnLayout,
) -> (Vec<Sender<Msg>>, Vec<Receiver<Msg>>, Arc<BatchPool>) {
    let mut txs = Vec::with_capacity(consumers);
    let mut rxs = Vec::with_capacity(consumers);
    for _ in 0..consumers {
        let (tx, rx) = bounded(capacity);
        txs.push(tx);
        rxs.push(rx);
    }
    let pool = BatchPool::new(edge_buffer_bound(producers, consumers, capacity), layout);
    (txs, rxs, pool)
}

fn hung_up() -> RelalgError {
    RelalgError::InvalidPlan("consumer hung up".into())
}

/// Creates the root-result channel of one query: `producers` root-operator
/// instances all send into one bounded channel the client side
/// (`ResultStream`) drains. The pool is sized like a redistribution edge
/// with a single consumer, so steady-state streaming recycles every batch
/// buffer the client drops.
pub fn client_channel(
    producers: usize,
    capacity: usize,
    layout: ColumnLayout,
) -> (Sender<Msg>, Receiver<Msg>, Arc<BatchPool>) {
    let (tx, rx) = bounded(capacity);
    let pool = BatchPool::new(edge_buffer_bound(producers, 1, capacity), layout);
    (tx, rx, pool)
}

/// A root instance's sender into the query's result channel: buffers rows
/// column-wise and ships them to the client with the same non-blocking,
/// one-parked-batch discipline as [`Router`], minus the hash split (all
/// root instances feed one [`ResultStream`](crate::handle::ResultStream)).
/// Backpressure from a slow client therefore propagates into the worker
/// pool: a root task whose send parks yields its worker instead of
/// buffering unboundedly.
pub struct ClientSink {
    tx: Sender<Msg>,
    batch: usize,
    buffer: ColumnBatch,
    pool: Arc<BatchPool>,
    sent: u64,
    /// A batch (or End) that hit the full channel and awaits retry.
    pending: Option<Msg>,
    /// Whether `End` has been queued (finish is then complete once
    /// `pending` clears).
    end_queued: bool,
}

impl ClientSink {
    /// Creates a sink over the query's result sender.
    pub fn new(tx: Sender<Msg>, batch: usize, pool: Arc<BatchPool>) -> Self {
        let buffer = pool.take(batch);
        ClientSink {
            tx,
            batch,
            buffer,
            pool,
            sent: 0,
            pending: None,
            end_queued: false,
        }
    }

    /// Rows accepted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Attempts to deliver the parked message, if any. `Ok(true)` means the
    /// sink can accept work; `Ok(false)` means the channel is still full.
    pub fn poll_unblocked(&mut self) -> Result<bool> {
        match self.pending.take() {
            None => Ok(true),
            Some(msg) => match self.tx.try_send(msg) {
                Ok(()) => Ok(true),
                Err(TrySendError::Full(msg)) => {
                    self.pending = Some(msg);
                    Ok(false)
                }
                Err(TrySendError::Disconnected(_)) => Err(hung_up()),
            },
        }
    }

    fn try_send_or_park(&mut self, msg: Msg) -> Result<()> {
        debug_assert!(self.pending.is_none(), "parked message not cleared");
        match self.tx.try_send(msg) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(msg)) => {
                self.pending = Some(msg);
                Ok(())
            }
            Err(TrySendError::Disconnected(_)) => Err(hung_up()),
        }
    }

    fn flush_buffer(&mut self) -> Result<()> {
        let full = std::mem::replace(&mut self.buffer, self.pool.take(self.batch));
        self.try_send_or_park(Msg::Batch(Batch::new(full, self.pool.clone())))
    }

    /// Non-blocking row push: accepts the tuple unless a previously parked
    /// batch still cannot be delivered, in which case the tuple is handed
    /// back (`Ok(Some(tuple))`) and the caller should yield its worker.
    pub fn try_push(&mut self, tuple: Tuple) -> Result<Option<Tuple>> {
        if !self.poll_unblocked()? {
            return Ok(Some(tuple));
        }
        self.buffer.push_tuple(&tuple)?;
        self.sent += 1;
        if self.buffer.rows() >= self.batch {
            self.flush_buffer()?;
        }
        Ok(None)
    }

    /// Non-blocking columnar append: moves rows `*pos..` of `cols` into
    /// the sink, flushing full buffers. Returns the rows accepted this
    /// call and whether the input was fully consumed (`false` means the
    /// channel is applying backpressure — yield and retry). `*pos` is
    /// advanced past the accepted rows.
    pub fn try_append_batch(&mut self, cols: &ColumnBatch, pos: &mut usize) -> Result<(u64, bool)> {
        let mut emitted = 0u64;
        while *pos < cols.rows() {
            if !self.poll_unblocked()? {
                return Ok((emitted, false));
            }
            let room = self.batch.saturating_sub(self.buffer.rows()).max(1);
            let take = room.min(cols.rows() - *pos);
            self.buffer.append_rows(cols, *pos..*pos + take)?;
            *pos += take;
            emitted += take as u64;
            self.sent += take as u64;
            if self.buffer.rows() >= self.batch {
                self.flush_buffer()?;
            }
        }
        Ok((emitted, true))
    }

    /// Non-blocking finish: flushes the remaining buffer and queues `End`,
    /// resumable across backpressure. `Ok(true)` once everything (including
    /// `End`) has been delivered.
    pub fn try_finish(&mut self) -> Result<bool> {
        if !self.poll_unblocked()? {
            return Ok(false);
        }
        if !self.end_queued {
            if !self.buffer.is_empty() {
                let full = std::mem::take(&mut self.buffer);
                self.try_send_or_park(Msg::Batch(Batch::new(full, self.pool.clone())))?;
                if self.pending.is_some() {
                    return Ok(false);
                }
            }
            self.end_queued = true;
            self.try_send_or_park(Msg::End)?;
        }
        Ok(self.pending.is_none())
    }

    /// Blocking push (dedicated-thread path; never call from a pooled task).
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        let mut tuple = tuple;
        loop {
            match self.try_push(tuple)? {
                None => return Ok(()),
                Some(back) => {
                    tuple = back;
                    self.flush_pending_blocking()?;
                }
            }
        }
    }

    /// Blocking finish (dedicated-thread path).
    pub fn finish_blocking(&mut self) -> Result<()> {
        loop {
            if self.try_finish()? {
                return Ok(());
            }
            self.flush_pending_blocking()?;
        }
    }

    fn flush_pending_blocking(&mut self) -> Result<()> {
        if let Some(msg) = self.pending.take() {
            self.tx.send(msg).map_err(|_| hung_up())?;
        }
        Ok(())
    }
}

/// A producer instance's split sender: buffers rows per destination
/// (column-wise) and ships batches, reusing buffers from the edge's pool.
///
/// The columnar path ([`try_route_batch`](Router::try_route_batch)) splits
/// a whole batch at a time: hash the key column into a destination vector,
/// build one selection vector per destination, and gather each
/// destination's rows column-at-a-time — per-row dispatch happens only in
/// the row-compat [`try_route`](Router::try_route) used by tests and
/// blocking drivers.
///
/// The router exposes two interfaces over one state machine:
///
/// * **Non-blocking** ([`try_route`](Router::try_route),
///   [`try_finish`](Router::try_finish)) — used by worker-pool tasks. A
///   batch that cannot be sent right now parks in a one-slot `pending`
///   buffer and the caller yields its worker instead of parking a thread.
/// * **Blocking** ([`route`](Router::route), [`finish`](Router::finish)) —
///   used by dedicated-thread drivers (unit tests, baseline benches). These
///   wrap the non-blocking path with a real channel send on backpressure.
pub struct Router {
    senders: Vec<Sender<Msg>>,
    key_col: usize,
    batch: usize,
    buffers: Vec<ColumnBatch>,
    pool: Arc<BatchPool>,
    sent: u64,
    /// A batch (or End) that hit a full channel and awaits retry.
    pending: Option<(usize, Msg)>,
    /// Destinations fully finished (flushed + End queued) so far.
    finish_pos: usize,
    /// Scratch: per-row destination of the batch being split.
    dest_scratch: Vec<u32>,
    /// Scratch: per-destination selection vectors for the gather.
    sel_scratch: Vec<Vec<u32>>,
}

impl Router {
    /// Creates a router over the destination senders, splitting on
    /// `key_col` of the routed rows.
    pub fn new(
        senders: Vec<Sender<Msg>>,
        key_col: usize,
        batch: usize,
        pool: Arc<BatchPool>,
    ) -> Self {
        assert!(!senders.is_empty(), "router needs at least one destination");
        let buffers = senders.iter().map(|_| pool.take(batch)).collect();
        let sel_scratch = senders.iter().map(|_| Vec::new()).collect();
        Router {
            senders,
            key_col,
            batch,
            buffers,
            pool,
            sent: 0,
            pending: None,
            finish_pos: 0,
            dest_scratch: Vec::new(),
            sel_scratch,
        }
    }

    /// Number of destinations.
    pub fn destinations(&self) -> usize {
        self.senders.len()
    }

    /// Rows routed so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Attempts to deliver the parked message, if any. `Ok(true)` means the
    /// router is clear to accept work; `Ok(false)` means the destination is
    /// still full (yield and retry).
    pub fn poll_unblocked(&mut self) -> Result<bool> {
        match self.pending.take() {
            None => Ok(true),
            Some((dest, msg)) => match self.senders[dest].try_send(msg) {
                Ok(()) => Ok(true),
                Err(TrySendError::Full(msg)) => {
                    self.pending = Some((dest, msg));
                    Ok(false)
                }
                Err(TrySendError::Disconnected(_)) => Err(hung_up()),
            },
        }
    }

    /// Sends or parks `msg`; `Ok(true)` if it was sent. Requires no parked
    /// message (callers clear via [`poll_unblocked`](Self::poll_unblocked)).
    fn try_send_or_park(&mut self, dest: usize, msg: Msg) -> Result<bool> {
        debug_assert!(self.pending.is_none(), "parked message not cleared");
        match self.senders[dest].try_send(msg) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(msg)) => {
                self.pending = Some((dest, msg));
                Ok(false)
            }
            Err(TrySendError::Disconnected(_)) => Err(hung_up()),
        }
    }

    fn flush_dest(&mut self, dest: usize) -> Result<bool> {
        let full = std::mem::replace(&mut self.buffers[dest], self.pool.take(self.batch));
        self.try_send_or_park(dest, Msg::Batch(Batch::new(full, self.pool.clone())))
    }

    /// Flushes every destination buffer at or over the batch threshold,
    /// stopping at the first park.
    fn flush_full(&mut self) -> Result<()> {
        for dest in 0..self.senders.len() {
            if self.pending.is_some() {
                return Ok(());
            }
            if self.buffers[dest].rows() >= self.batch {
                self.flush_dest(dest)?;
            }
        }
        Ok(())
    }

    /// Non-blocking row route (row-compat path for tests and blocking
    /// drivers): accepts the tuple unless a previously parked batch still
    /// cannot be delivered, in which case the tuple is handed back
    /// (`Ok(Some(tuple))`) and the caller should yield. A full destination
    /// buffer is flushed with `try_send`; on backpressure the flushed batch
    /// parks (the tuple itself is still accepted). The replacement buffer
    /// comes from the pool (take-and-swap), so steady state allocates
    /// nothing.
    pub fn try_route(&mut self, tuple: Tuple) -> Result<Option<Tuple>> {
        if !self.poll_unblocked()? {
            return Ok(Some(tuple));
        }
        // A single destination needs no key: this also lets degree-1
        // consumers (LIMIT, global aggregates) receive schemas whose
        // routing column is not an integer.
        let dest = if self.senders.len() == 1 {
            0
        } else {
            mj_relalg::hash::bucket_of(tuple.int(self.key_col)?, self.senders.len())
        };
        self.buffers[dest].push_tuple(&tuple)?;
        self.sent += 1;
        if self.buffers[dest].rows() >= self.batch {
            self.flush_dest(dest)?;
        }
        Ok(None)
    }

    /// Non-blocking columnar route: splits rows `*pos..` of `cols` across
    /// the destinations in one vectorized pass (hash the key column, then
    /// gather per destination) and flushes full buffers. Returns the rows
    /// accepted and whether the input was fully consumed (`false` means a
    /// previously parked batch still blocks the router — yield and retry).
    /// `*pos` is advanced past the accepted rows.
    pub fn try_route_batch(&mut self, cols: &ColumnBatch, pos: &mut usize) -> Result<(u64, bool)> {
        if *pos >= cols.rows() {
            self.flush_full()?;
            return Ok((0, true));
        }
        if !self.poll_unblocked()? {
            return Ok((0, false));
        }
        let n = cols.rows() - *pos;
        if self.senders.len() == 1 {
            self.buffers[0].append_rows(cols, *pos..cols.rows())?;
        } else {
            let keys = cols.int_col(self.key_col)?;
            bucket_keys(&keys[*pos..], self.senders.len(), &mut self.dest_scratch);
            for sel in &mut self.sel_scratch {
                sel.clear();
            }
            for (i, &d) in self.dest_scratch.iter().enumerate() {
                self.sel_scratch[d as usize].push((*pos + i) as u32);
            }
            for dest in 0..self.senders.len() {
                let sel = std::mem::take(&mut self.sel_scratch[dest]);
                if !sel.is_empty() {
                    self.buffers[dest].append_gather(cols, &sel)?;
                }
                self.sel_scratch[dest] = sel;
            }
        }
        *pos = cols.rows();
        self.sent += n as u64;
        self.flush_full()?;
        Ok((n as u64, true))
    }

    /// Non-blocking finish: flushes every buffer and queues `End` to every
    /// destination, resumable across backpressure. Returns `Ok(true)` once
    /// everything (including the last `End`) has been delivered; `Ok(false)`
    /// means a send parked and the caller should yield and call again.
    pub fn try_finish(&mut self) -> Result<bool> {
        if !self.poll_unblocked()? {
            return Ok(false);
        }
        while self.finish_pos < self.senders.len() {
            let dest = self.finish_pos;
            if !self.buffers[dest].is_empty() {
                let full = std::mem::take(&mut self.buffers[dest]);
                if !self.try_send_or_park(dest, Msg::Batch(Batch::new(full, self.pool.clone())))? {
                    return Ok(false);
                }
            }
            self.finish_pos = dest + 1;
            if !self.try_send_or_park(dest, Msg::End)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Delivers any parked message with a blocking send (dedicated-thread
    /// path only; never call from a pooled task).
    fn flush_pending_blocking(&mut self) -> Result<()> {
        if let Some((dest, msg)) = self.pending.take() {
            self.senders[dest].send(msg).map_err(|_| hung_up())?;
        }
        Ok(())
    }

    /// Routes one tuple, blocking on backpressure (dedicated-thread path).
    pub fn route(&mut self, tuple: Tuple) -> Result<()> {
        self.flush_pending_blocking()?;
        match self.try_route(tuple)? {
            None => Ok(()),
            Some(_) => unreachable!("pending was flushed above"),
        }
    }

    /// Flushes all buffers and sends `End` to every destination, blocking
    /// on backpressure (dedicated-thread path).
    pub fn finish(mut self) -> Result<()> {
        loop {
            if self.try_finish()? {
                return Ok(());
            }
            self.flush_pending_blocking()?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::hash::bucket_of;

    #[test]
    fn routes_by_key_and_flushes_on_finish() {
        let (txs, rxs, pool) = operand_channels(1, 3, 8, ColumnLayout::ints(2));
        // Consume concurrently: the channels are bounded, so routing 100
        // rows before draining anything would block on backpressure once
        // one destination exceeds capacity x batch rows.
        let consumers: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(dest, rx)| {
                std::thread::spawn(move || {
                    let mut n = 0usize;
                    let mut ended = false;
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Msg::Batch(batch) => {
                                for &k in batch.columns().int_col(0).unwrap() {
                                    assert_eq!(
                                        bucket_of(k, 3),
                                        dest,
                                        "row routed to wrong destination"
                                    );
                                }
                                n += batch.len();
                            }
                            Msg::End => {
                                ended = true;
                                break;
                            }
                        }
                    }
                    assert!(ended, "destination {dest} missing End");
                    n
                })
            })
            .collect();

        let mut router = Router::new(txs, 0, 4, pool);
        for k in 0..100i64 {
            router.route(Tuple::from_ints(&[k, k])).unwrap();
        }
        assert_eq!(router.sent(), 100);
        router.finish().unwrap();
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn batch_route_splits_like_row_route() {
        let (txs, rxs, pool) = operand_channels(1, 4, 64, ColumnLayout::ints(2));
        let mut router = Router::new(txs, 0, 16, pool);
        let mut cols = ColumnBatch::with_capacity(&ColumnLayout::ints(2), 100);
        for k in 0..100i64 {
            cols.push_tuple(&Tuple::from_ints(&[k, k * 2])).unwrap();
        }
        let mut pos = 0;
        let (n, done) = router.try_route_batch(&cols, &mut pos).unwrap();
        assert_eq!((n, done, pos), (100, true, 100));
        assert!(router.try_finish().unwrap());
        let mut total = 0usize;
        for (dest, rx) in rxs.into_iter().enumerate() {
            loop {
                match rx.try_recv() {
                    Ok(Msg::Batch(b)) => {
                        for &k in b.columns().int_col(0).unwrap() {
                            assert_eq!(bucket_of(k, 4), dest);
                        }
                        total += b.len();
                    }
                    Ok(Msg::End) => break,
                    Err(_) => panic!("destination {dest} missing End"),
                }
            }
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn single_destination_gets_everything() {
        // 10 rows at batch 2 = 5 batches + End; capacity must cover them
        // because this test drains only after finish().
        let (txs, rxs, pool) = operand_channels(1, 1, 8, ColumnLayout::ints(1));
        let mut router = Router::new(txs, 0, 2, pool);
        for k in 0..10i64 {
            router.route(Tuple::from_ints(&[k])).unwrap();
        }
        router.finish().unwrap();
        let mut n = 0;
        while let Ok(Msg::Batch(b)) = rxs[0].recv() {
            n += b.len();
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        // A full bounded channel must stall route() rather than drop or
        // error; draining one message releases exactly one send.
        let (txs, rxs, pool) = operand_channels(1, 1, 1, ColumnLayout::ints(1));
        let rx = rxs.into_iter().next().unwrap();
        let producer = std::thread::spawn(move || {
            let mut router = Router::new(txs, 0, 1, pool);
            // batch=1: every route() is a send. Second send blocks until
            // the consumer below drains the first.
            for k in 0..50i64 {
                router.route(Tuple::from_ints(&[k])).unwrap();
            }
            router.finish().unwrap();
        });
        let mut seen = 0usize;
        while let Ok(msg) = rx.recv() {
            match msg {
                Msg::Batch(b) => seen += b.len(),
                Msg::End => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, 50);
    }

    #[test]
    fn hung_up_consumer_is_an_error() {
        let (txs, rxs, pool) = operand_channels(1, 1, 1, ColumnLayout::ints(1));
        drop(rxs);
        let mut router = Router::new(txs, 0, 1, pool);
        // The first route triggers a batch send into a closed channel.
        let r = router.route(Tuple::from_ints(&[1]));
        assert!(r.is_err());
    }

    #[test]
    fn dropped_batches_recycle_their_buffers() {
        let (txs, rxs, pool) = operand_channels(1, 1, 8, ColumnLayout::ints(1));
        let mut router = Router::new(txs, 0, 2, pool.clone());
        for k in 0..8i64 {
            router.route(Tuple::from_ints(&[k])).unwrap();
        }
        router.finish().unwrap();
        assert_eq!(pool.spares(), 0, "buffers are in flight, not pooled");
        let mut drained = 0;
        while let Ok(msg) = rxs[0].recv() {
            match msg {
                Msg::Batch(mut b) => {
                    drained += b.drain().count();
                    // Dropping `b` here returns the buffer to the pool.
                }
                Msg::End => break,
            }
        }
        assert_eq!(drained, 8);
        assert_eq!(pool.spares(), 4, "all four flushed buffers returned");

        // A new router on the same pool reuses those buffers.
        let (txs2, _rxs2, _) = operand_channels(1, 1, 8, ColumnLayout::ints(1));
        let _router2 = Router::new(txs2, 0, 2, pool.clone());
        assert_eq!(pool.spares(), 3, "router took a pooled buffer");
    }

    #[test]
    fn try_route_parks_on_backpressure_instead_of_blocking() {
        // capacity 1, batch 1: the second flush cannot be delivered until
        // the consumer drains. try_route must park it and keep accepting
        // (bounded by one parked batch), then hand tuples back.
        let (txs, rxs, pool) = operand_channels(1, 1, 1, ColumnLayout::ints(1));
        let mut router = Router::new(txs, 0, 1, pool);
        assert!(router.try_route(Tuple::from_ints(&[1])).unwrap().is_none());
        // Second tuple is accepted; its flush parks (channel full).
        assert!(router.try_route(Tuple::from_ints(&[2])).unwrap().is_none());
        // Third tuple is handed back: the parked batch still can't move.
        let back = router.try_route(Tuple::from_ints(&[3])).unwrap();
        assert_eq!(back.unwrap().int(0).unwrap(), 3);
        assert!(!router.poll_unblocked().unwrap());
        // Drain one message; the parked batch can now be delivered.
        let Msg::Batch(b) = rxs[0].recv().unwrap() else {
            panic!("expected batch");
        };
        assert_eq!(b.len(), 1);
        drop(b);
        assert!(router.poll_unblocked().unwrap());
        assert!(router.try_route(Tuple::from_ints(&[3])).unwrap().is_none());
        assert_eq!(router.sent(), 3);
    }

    #[test]
    fn try_finish_resumes_across_backpressure() {
        let (txs, rxs, pool) = operand_channels(1, 1, 1, ColumnLayout::ints(1));
        let mut router = Router::new(txs, 0, 8, pool);
        for k in 0..5i64 {
            assert!(router.try_route(Tuple::from_ints(&[k])).unwrap().is_none());
        }
        // First try_finish flushes the batch into the single slot; the End
        // then parks, so finish is not yet complete.
        assert!(!router.try_finish().unwrap());
        let mut rows = 0;
        loop {
            match rxs[0].try_recv() {
                Ok(Msg::Batch(b)) => rows += b.len(),
                Ok(Msg::End) => break,
                Err(_) => {
                    // Everything queued? Keep draining until End arrives.
                    router.try_finish().unwrap();
                }
            }
        }
        assert_eq!(rows, 5);
        assert!(router.try_finish().unwrap(), "finish is idempotent");
    }

    #[test]
    fn hung_up_consumer_errors_in_try_path() {
        let (txs, rxs, pool) = operand_channels(1, 1, 1, ColumnLayout::ints(1));
        drop(rxs);
        let mut router = Router::new(txs, 0, 1, pool);
        assert!(router.try_route(Tuple::from_ints(&[1])).is_err());
    }

    #[test]
    fn pool_counts_takes_and_misses() {
        let pool = BatchPool::new(8, ColumnLayout::ints(1));
        let a = pool.take(4); // miss: pool starts empty
        pool.put(a);
        let _b = pool.take(4); // hit
        assert_eq!(pool.takes(), 2);
        assert_eq!(pool.misses(), 1);
        assert!((pool.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pool_charges_and_credits_real_columnar_bytes() {
        let budget = crate::budget::MemoryBudget::unlimited();
        let layout = ColumnLayout::ints(2);
        let pool = BatchPool::new(1, layout.clone());
        pool.set_budget(budget.clone());
        // Columnar accounting: a 4-row buffer of two i64 columns is
        // exactly 4 x 16 bytes — not 4 x size_of::<Tuple>().
        let per = (4 * layout.row_bytes()) as u64;
        assert_eq!(per, 64);
        let a = pool.take(4);
        let b = pool.take(4);
        assert_eq!(budget.used(), 2 * per, "allocating takes charge");
        pool.put(a);
        assert_eq!(budget.used(), 2 * per, "pooled spares stay charged");
        pool.put(b);
        assert_eq!(budget.used(), per, "overflow drops credit back");
        drop(pool);
        assert_eq!(budget.used(), 0, "pool teardown returns the remainder");
    }

    #[test]
    fn steady_state_routing_reuses_pooled_buffers() {
        // Producer/consumer in lockstep on one edge: after the cold-start
        // allocations, every take must be served from the pool.
        let (txs, rxs, pool) = operand_channels(1, 1, 8, ColumnLayout::ints(1));
        let mut router = Router::new(txs, 0, 2, pool.clone());
        let mut drained = 0usize;
        for k in 0..1000i64 {
            router.route(Tuple::from_ints(&[k])).unwrap();
            while let Ok(Msg::Batch(mut b)) = rxs[0].try_recv() {
                drained += b.drain().count();
            }
        }
        router.finish().unwrap();
        while let Ok(Msg::Batch(mut b)) = rxs[0].recv() {
            drained += b.drain().count();
        }
        assert_eq!(drained, 1000);
        let bound = edge_buffer_bound(1, 1, 8) as u64;
        assert!(
            pool.misses() <= bound,
            "pool thrashes: {} misses > structural bound {bound}",
            pool.misses()
        );
        assert!(
            pool.hit_rate() > 0.95,
            "steady-state hit rate {:.3} too low",
            pool.hit_rate()
        );
    }

    #[test]
    fn client_sink_batches_and_finishes() {
        let (tx, rx, pool) = client_channel(2, 8, ColumnLayout::ints(1));
        let mut a = ClientSink::new(tx.clone(), 2, pool.clone());
        let mut b = ClientSink::new(tx, 2, pool);
        for k in 0..5i64 {
            assert!(a.try_push(Tuple::from_ints(&[k])).unwrap().is_none());
        }
        b.push(Tuple::from_ints(&[99])).unwrap();
        assert!(a.try_finish().unwrap());
        b.finish_blocking().unwrap();
        assert_eq!(a.sent(), 5);
        let (mut rows, mut ends) = (0, 0);
        while let Ok(msg) = rx.try_recv() {
            match msg {
                Msg::Batch(bt) => rows += bt.len(),
                Msg::End => ends += 1,
            }
        }
        assert_eq!((rows, ends), (6, 2), "both producers flush and End");
    }

    #[test]
    fn client_sink_appends_batches_columnar() {
        let (tx, rx, pool) = client_channel(1, 16, ColumnLayout::ints(2));
        let mut sink = ClientSink::new(tx, 4, pool);
        let mut cols = ColumnBatch::with_capacity(&ColumnLayout::ints(2), 10);
        for k in 0..10i64 {
            cols.push_tuple(&Tuple::from_ints(&[k, -k])).unwrap();
        }
        let mut pos = 0;
        let (n, done) = sink.try_append_batch(&cols, &mut pos).unwrap();
        assert_eq!((n, done), (10, true));
        assert!(sink.try_finish().unwrap());
        let mut got = Vec::new();
        loop {
            match rx.try_recv() {
                Ok(Msg::Batch(mut b)) => got.extend(b.drain()),
                Ok(Msg::End) => break,
                Err(_) => panic!("missing End"),
            }
        }
        assert_eq!(got.len(), 10);
        assert_eq!(got[3], Tuple::from_ints(&[3, -3]));
    }

    #[test]
    fn client_sink_parks_on_backpressure_and_resumes() {
        // Capacity 1, batch 1: the second flush parks; draining releases it.
        let (tx, rx, pool) = client_channel(1, 1, ColumnLayout::ints(1));
        let mut sink = ClientSink::new(tx, 1, pool);
        assert!(sink.try_push(Tuple::from_ints(&[1])).unwrap().is_none());
        assert!(sink.try_push(Tuple::from_ints(&[2])).unwrap().is_none());
        let back = sink.try_push(Tuple::from_ints(&[3])).unwrap();
        assert_eq!(back.unwrap().int(0).unwrap(), 3);
        assert!(!sink.poll_unblocked().unwrap());
        let Msg::Batch(b) = rx.recv().unwrap() else {
            panic!("expected batch");
        };
        drop(b);
        assert!(sink.poll_unblocked().unwrap());
        assert!(sink.try_push(Tuple::from_ints(&[3])).unwrap().is_none());
        // Finish resumes across the still-bounded channel; drain until End.
        let mut seen = 1usize; // the batch drained above held one row
        loop {
            match rx.try_recv() {
                Ok(Msg::Batch(b)) => seen += b.len(),
                Ok(Msg::End) => break,
                Err(_) => {
                    sink.try_finish().unwrap();
                }
            }
        }
        assert_eq!(seen, 3);
        assert_eq!(sink.sent(), 3);
    }

    #[test]
    fn client_sink_errors_when_stream_dropped() {
        let (tx, rx, pool) = client_channel(1, 1, ColumnLayout::ints(1));
        drop(rx);
        let mut sink = ClientSink::new(tx, 1, pool);
        assert!(sink.try_push(Tuple::from_ints(&[1])).is_err());
    }

    #[test]
    fn pool_respects_limit() {
        let layout = ColumnLayout::ints(1);
        let pool = BatchPool::new(2, layout.clone());
        for _ in 0..5 {
            pool.put(ColumnBatch::with_capacity(&layout, 4));
        }
        assert_eq!(pool.spares(), 2);
        let a = pool.take(4);
        assert!(a.capacity_bytes() >= 32, "reused buffer keeps its columns");
        assert_eq!(pool.spares(), 1);
    }
}
