//! Seeded generators for the three planner benchmark query families:
//! **chain**, **star**, and **skewed**. Each instance pairs real data (a
//! populated [`Catalog`] with analyzed per-column statistics) with the
//! matching [`JoinQuery`], so the planner's estimates can be validated
//! against actual execution — unlike the regular Wisconsin query, these
//! have genuinely different cardinalities per join, so tree shape,
//! strategy, and allocation all matter.

use std::sync::Arc;

use rand::{rngs::StdRng, Rng, SeedableRng};

use mj_plan::query::JoinQuery;
use mj_relalg::{Attribute, RelalgError, Relation, Result, Schema, Tuple};
use mj_storage::{skew::zipf_keys, Catalog};

use crate::planner::query_from_catalog;

/// The three benchmark query families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryFamily {
    /// `R0 – R1 – … – R{k-1}`, uniform keys, near-constant intermediate
    /// sizes.
    Chain,
    /// A fact relation equi-joined to `k-1` dimension relations on
    /// distinct foreign-key columns.
    Star,
    /// A chain with alternating relation sizes and Zipf-skewed join keys —
    /// the workload where cardinality-blind strategy choice hurts most.
    Skewed,
}

impl QueryFamily {
    /// All families in presentation order.
    pub const ALL: [QueryFamily; 3] = [QueryFamily::Chain, QueryFamily::Star, QueryFamily::Skewed];

    /// Lower-case label (also the CLI `--query` argument).
    pub fn label(&self) -> &'static str {
        match self {
            QueryFamily::Chain => "chain",
            QueryFamily::Star => "star",
            QueryFamily::Skewed => "skewed",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Result<QueryFamily> {
        match s {
            "chain" => Ok(QueryFamily::Chain),
            "star" => Ok(QueryFamily::Star),
            "skewed" => Ok(QueryFamily::Skewed),
            other => Err(RelalgError::InvalidPlan(format!(
                "unknown query family `{other}` (chain, star, skewed)"
            ))),
        }
    }
}

impl std::fmt::Display for QueryFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A generated family instance: data plus the matching query description.
#[derive(Clone, Debug)]
pub struct FamilyInstance {
    /// Which family this is.
    pub family: QueryFamily,
    /// The populated catalog (relations `R0..R{k-1}`, stats analyzed).
    pub catalog: Arc<Catalog>,
    /// The query over those relations, selectivities derived from the
    /// analyzed statistics.
    pub query: JoinQuery,
}

/// Generates a `family` instance over `k >= 2` relations with base size
/// `n >= 4`, deterministically per `seed`.
pub fn generate_family(
    family: QueryFamily,
    k: usize,
    n: usize,
    seed: u64,
) -> Result<FamilyInstance> {
    if k < 2 {
        return Err(RelalgError::InvalidPlan(format!(
            "a multi-join family needs >= 2 relations, got {k}"
        )));
    }
    if n < 4 {
        return Err(RelalgError::InvalidPlan(format!(
            "family base size must be >= 4, got {n}"
        )));
    }
    let catalog = Arc::new(Catalog::new());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA31_7113);
    let joins: Vec<(usize, usize, usize, usize)> = match family {
        QueryFamily::Chain => {
            // (a, b, id): a joins toward the previous relation, b toward
            // the next; both uniform over 0..n, so every edge selectivity
            // is ~1/n and every intermediate stays near n.
            let schema = chain_schema();
            for r in 0..k {
                let tuples = (0..n)
                    .map(|i| {
                        Tuple::from_ints(&[
                            rng.gen_range(0..n as i64),
                            rng.gen_range(0..n as i64),
                            i as i64,
                        ])
                    })
                    .collect();
                catalog.register(
                    format!("R{r}"),
                    Arc::new(Relation::new(schema.clone(), tuples)?),
                );
            }
            (0..k - 1).map(|i| (i, i + 1, 1, 0)).collect()
        }
        QueryFamily::Star => {
            // R0..R{k-2} are dimensions with unique keys; R{k-1} is the
            // fact (2n rows, one foreign-key column per dimension plus a
            // measure), so each fact row matches exactly one row per
            // dimension and the result stays at 2n. The fact sits *last*
            // so the fixed linear shapes (R0 deepest-to-shallowest) keep
            // it at the deep end — every linear tree stays cartesian-free.
            let n_fact = 2 * n;
            let n_dim = (n / 2).max(4);
            let dim_schema =
                Schema::new(vec![Attribute::int("key"), Attribute::int("payload")]).shared();
            for d in 0..k - 1 {
                let tuples = (0..n_dim)
                    .map(|i| Tuple::from_ints(&[i as i64, rng.gen_range(0..1000)]))
                    .collect();
                catalog.register(
                    format!("R{d}"),
                    Arc::new(Relation::new(dim_schema.clone(), tuples)?),
                );
            }
            let mut fact_attrs: Vec<Attribute> = (0..k - 1)
                .map(|d| Attribute::int(format!("fk{d}")))
                .collect();
            fact_attrs.push(Attribute::int("measure"));
            let fact_schema = Schema::new(fact_attrs).shared();
            let fact_tuples = (0..n_fact)
                .map(|i| {
                    let mut row: Vec<i64> =
                        (0..k - 1).map(|_| rng.gen_range(0..n_dim as i64)).collect();
                    row.push(i as i64);
                    Tuple::from_ints(&row)
                })
                .collect();
            catalog.register(
                format!("R{}", k - 1),
                Arc::new(Relation::new(fact_schema, fact_tuples)?),
            );
            (0..k - 1).map(|d| (d, k - 1, 0, d)).collect()
        }
        QueryFamily::Skewed => {
            // Chain topology, but relation sizes alternate n/4, n, 2n and
            // the forward join column is Zipf-skewed over a shared domain:
            // intermediates shrink and grow along the chain, so strategy
            // and allocation choices actually separate.
            let schema = chain_schema();
            let sizes: Vec<usize> = (0..k)
                .map(|i| match i % 3 {
                    0 => (n / 4).max(4),
                    1 => n,
                    _ => 2 * n,
                })
                .collect();
            let domain = n.max(8);
            for (r, &rows) in sizes.iter().enumerate() {
                let fwd = zipf_keys(rows, domain, 0.6, seed.wrapping_add(r as u64 * 77));
                let tuples = (0..rows)
                    .map(|i| Tuple::from_ints(&[rng.gen_range(0..domain as i64), fwd[i], i as i64]))
                    .collect();
                catalog.register(
                    format!("R{r}"),
                    Arc::new(Relation::new(schema.clone(), tuples)?),
                );
            }
            (0..k - 1).map(|i| (i, i + 1, 1, 0)).collect()
        }
    };

    let names: Vec<String> = (0..k).map(|i| format!("R{i}")).collect();
    for name in &names {
        catalog.analyze(name)?;
    }
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let query = query_from_catalog(&catalog, &refs, &joins)?;
    Ok(FamilyInstance {
        family,
        catalog,
        query,
    })
}

/// The text query joining a [`QueryFamily::Chain`] (or
/// [`QueryFamily::Skewed`] — same topology) instance end to end:
/// `SELECT * FROM R0 JOIN R1 ON R0.b = R1.a JOIN R2 ...`. Kept next to
/// the generator so the SQL stays in lockstep with the family's column
/// names.
pub fn chain_query_sql(k: usize) -> String {
    let mut q = String::from("SELECT * FROM R0");
    for i in 1..k {
        q.push_str(&format!(" JOIN R{i} ON R{}.b = R{i}.a", i - 1));
    }
    q
}

/// The text query joining a [`QueryFamily::Star`] instance end to end:
/// every dimension `R0..R{k-2}` (columns `key`, `payload`) against the
/// fact `R{k-1}` (columns `fk0..`, `measure`).
pub fn star_query_sql(k: usize) -> String {
    let fact = k - 1;
    let mut q = format!("SELECT * FROM R0 JOIN R{fact} ON R0.key = R{fact}.fk0");
    for d in 1..k - 1 {
        q.push_str(&format!(" JOIN R{d} ON R{d}.key = R{fact}.fk{d}"));
    }
    q
}

fn chain_schema() -> Arc<Schema> {
    Schema::new(vec![
        Attribute::int("a"),
        Attribute::int("b"),
        Attribute::int("id"),
    ])
    .shared()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::RelationProvider;

    #[test]
    fn families_are_deterministic_per_seed() {
        for family in QueryFamily::ALL {
            let a = generate_family(family, 4, 64, 7).unwrap();
            let b = generate_family(family, 4, 64, 7).unwrap();
            let c = generate_family(family, 4, 64, 8).unwrap();
            for r in 0..4 {
                let name = format!("R{r}");
                let ra = a.catalog.relation(&name).unwrap();
                let rb = b.catalog.relation(&name).unwrap();
                assert!(ra.multiset_eq(&rb), "{family} {name} not deterministic");
                let rc = c.catalog.relation(&name).unwrap();
                assert!(
                    !ra.multiset_eq(&rc) || ra.is_empty(),
                    "{family} {name} ignores the seed"
                );
            }
        }
    }

    #[test]
    fn query_matches_generated_data() {
        for family in QueryFamily::ALL {
            let inst = generate_family(family, 5, 48, 3).unwrap();
            assert_eq!(inst.query.len(), 5, "{family}");
            assert_eq!(inst.query.graph().edges().len(), 4, "{family}");
            assert!(inst.query.graph().is_connected(), "{family}");
            // Cards in the query graph match the catalog.
            for (i, name) in (0..5).map(|i| (i, format!("R{i}"))) {
                assert_eq!(
                    inst.query.graph().cards()[i],
                    inst.catalog.stats(&name).unwrap().cardinality,
                    "{family} {name}"
                );
            }
            // Selectivities are sane probabilities.
            for &(_, _, sel) in inst.query.graph().edges() {
                assert!(sel > 0.0 && sel <= 1.0, "{family}: {sel}");
            }
        }
    }

    #[test]
    fn bad_parameters_error() {
        assert!(generate_family(QueryFamily::Chain, 1, 64, 0).is_err());
        assert!(generate_family(QueryFamily::Star, 4, 2, 0).is_err());
        assert!(QueryFamily::parse("ring").is_err());
        assert_eq!(QueryFamily::parse("star").unwrap(), QueryFamily::Star);
    }
}
