//! Query bindings: the logical join specs and schemas a plan needs to
//! actually execute.
//!
//! The [`mj_core::plan_ir::ParallelPlan`] is purely structural (which join
//! runs where); the *binding* supplies what each join computes: its
//! [`EquiJoin`] spec and the schema of every tree node, resolved against a
//! catalog.

use std::collections::HashMap;
use std::sync::Arc;

use mj_plan::query::{regular_join_spec, LoweredQuery};
use mj_plan::tree::{JoinTree, NodeId, TreeNode};
use mj_relalg::{EquiJoin, RelalgError, RelationProvider, Result, Schema};

/// Join specs and node schemas for one query tree.
#[derive(Clone, Debug)]
pub struct QueryBinding {
    specs: HashMap<NodeId, EquiJoin>,
    schemas: Vec<Arc<Schema>>,
}

impl QueryBinding {
    /// Builds a binding by assigning each join node the spec returned by
    /// `spec_for`, validating keys and projections bottom-up.
    pub fn new(
        tree: &JoinTree,
        provider: &dyn RelationProvider,
        mut spec_for: impl FnMut(NodeId, &Schema, &Schema) -> EquiJoin,
    ) -> Result<Self> {
        let mut specs = HashMap::new();
        let mut schemas: Vec<Option<Arc<Schema>>> = vec![None; tree.nodes().len()];
        for (id, node) in tree.nodes().iter().enumerate() {
            match node {
                TreeNode::Leaf { relation } => {
                    schemas[id] = Some(provider.relation(relation)?.schema().clone());
                }
                TreeNode::Join { left, right } => {
                    let ls = schemas[*left].clone().expect("children before parents");
                    let rs = schemas[*right].clone().expect("children before parents");
                    let spec = spec_for(id, &ls, &rs);
                    spec.validate(&ls, &rs)?;
                    schemas[id] = Some(Arc::new(spec.output_schema(&ls, &rs)?));
                    specs.insert(id, spec);
                }
            }
        }
        Ok(QueryBinding {
            specs,
            schemas: schemas
                .into_iter()
                .map(|s| s.expect("all filled"))
                .collect(),
        })
    }

    /// The binding for the paper's regular Wisconsin query: every join on
    /// `unique1`, re-keying projection (§4.1). Requires all relations to
    /// share one arity.
    pub fn regular(tree: &JoinTree, provider: &dyn RelationProvider) -> Result<Self> {
        // Determine the common arity from the first leaf.
        let first = tree
            .leaves_in_order()
            .first()
            .map(|n| n.to_string())
            .ok_or_else(|| RelalgError::InvalidPlan("tree has no leaves".into()))?;
        let arity = provider.relation(&first)?.schema().arity();
        Self::new(tree, provider, |_, _, _| regular_join_spec(arity))
    }

    /// Builds a binding from a [`LoweredQuery`] (the planner's generalized
    /// lowering): specs and schemas are taken as derived — no relation
    /// provider needed, since the lowering already validated every spec
    /// against the query's declared schemas. The provider the plan later
    /// runs against must serve relations with those schemas; mismatches
    /// surface as partitioning/validation errors at execution time.
    pub fn from_lowered(tree: &JoinTree, lowered: &LoweredQuery) -> Result<Self> {
        if lowered.schemas().len() != tree.nodes().len() {
            return Err(RelalgError::InvalidPlan(format!(
                "lowering covers {} nodes, tree has {}",
                lowered.schemas().len(),
                tree.nodes().len()
            )));
        }
        for join in tree.joins_bottom_up() {
            lowered.spec(join)?;
        }
        Ok(QueryBinding {
            specs: lowered.specs().clone(),
            schemas: lowered.schemas().to_vec(),
        })
    }

    /// The join spec of a join node.
    pub fn spec(&self, join: NodeId) -> Result<&EquiJoin> {
        self.specs
            .get(&join)
            .ok_or_else(|| RelalgError::InvalidPlan(format!("no spec for join {join}")))
    }

    /// The output schema of any tree node.
    pub fn schema(&self, node: NodeId) -> Result<&Arc<Schema>> {
        self.schemas.get(node).ok_or(RelalgError::IndexOutOfBounds {
            index: node,
            arity: self.schemas.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_plan::shapes::{build, Shape};
    use mj_relalg::{Attribute, Relation, Tuple};
    use std::collections::HashMap as Map;

    fn provider(k: usize) -> Map<String, Arc<Relation>> {
        let schema = Schema::new(vec![
            Attribute::int("unique1"),
            Attribute::int("unique2"),
            Attribute::int("filler"),
        ])
        .shared();
        let mut m = Map::new();
        for i in 0..k {
            let tuples = (0..10).map(|v| Tuple::from_ints(&[v, v, v])).collect();
            m.insert(
                format!("R{i}"),
                Arc::new(Relation::new_unchecked(schema.clone(), tuples)),
            );
        }
        m
    }

    #[test]
    fn regular_binding_covers_all_joins() {
        let tree = build(Shape::WideBushy, 6).unwrap();
        let p = provider(6);
        let b = QueryBinding::regular(&tree, &p).unwrap();
        for j in tree.joins_bottom_up() {
            assert!(b.spec(j).is_ok());
            assert_eq!(
                b.schema(j).unwrap().arity(),
                3,
                "regular query preserves arity"
            );
        }
        for id in 0..tree.nodes().len() {
            assert!(b.schema(id).is_ok());
        }
    }

    #[test]
    fn missing_relation_errors() {
        let tree = build(Shape::LeftLinear, 4).unwrap();
        let p = provider(2); // R2, R3 missing
        assert!(QueryBinding::regular(&tree, &p).is_err());
    }

    #[test]
    fn invalid_spec_rejected() {
        let tree = build(Shape::LeftLinear, 3).unwrap();
        let p = provider(3);
        let out = QueryBinding::new(&tree, &p, |_, _, _| {
            EquiJoin::new(99, 0, mj_relalg::Projection::new(vec![0]))
        });
        assert!(out.is_err());
    }

    #[test]
    fn unknown_ids_error() {
        let tree = build(Shape::LeftLinear, 3).unwrap();
        let p = provider(3);
        let b = QueryBinding::regular(&tree, &p).unwrap();
        assert!(b.spec(0).is_err(), "leaves have no spec");
        assert!(b.schema(999).is_err());
    }
}
