//! Query bindings: the logical join specs, schemas, scan filters, and
//! post-join pipeline stages a plan needs to actually execute.
//!
//! The [`mj_core::plan_ir::ParallelPlan`] is purely structural (which join
//! runs where); the *binding* supplies what the query computes: each
//! join's [`EquiJoin`] spec and node schema, plus the two extensions the
//! operator framework added — predicates pushed down to base-relation
//! scans ([`QueryBinding::scan_filter`]) and the chain of
//! [`PipelineStage`]s (residual filter, partitioned GROUP BY, LIMIT) the
//! engine appends after the root join.

use std::collections::HashMap;
use std::sync::Arc;

use mj_plan::query::{regular_join_spec, LoweredQuery};
use mj_plan::tree::{JoinTree, NodeId, TreeNode};
use mj_relalg::expr::Expr;
use mj_relalg::ops::AggSpec;
use mj_relalg::{
    columnar_row_bytes, EquiJoin, Predicate, Projection, RelalgError, RelationProvider, Result,
    Schema, Value,
};

use crate::metrics::OpMetricsKind;

/// What a post-join pipeline stage computes.
#[derive(Clone, Debug)]
pub enum StageKind {
    /// A residual selection over the join output (predicates the planner
    /// did not push to scans), with an optional trailing projection that
    /// drops predicate-only carrier columns.
    Filter {
        /// The predicate, over the stage's input schema.
        predicate: Predicate,
        /// Projection applied to surviving tuples.
        projection: Option<Projection>,
    },
    /// Partitioned hash GROUP BY.
    Aggregate {
        /// Grouping columns of the input schema.
        group: Vec<usize>,
        /// Aggregates to compute (input columns of the input schema).
        aggs: Vec<AggSpec>,
        /// Projection over the `[group..., aggs...]` layout into the
        /// SELECT list's order.
        projection: Option<Projection>,
    },
    /// Early-terminating row cap (always degree 1).
    Limit {
        /// Maximum rows.
        k: u64,
    },
}

impl StageKind {
    /// The metrics classification of this stage — the single source the
    /// explain label ([`name`](Self::name)) and the per-op metrics rows
    /// both read, so a new operator kind is added in one place.
    pub fn metrics_kind(&self) -> OpMetricsKind {
        match self {
            StageKind::Filter { .. } => OpMetricsKind::Filter,
            StageKind::Aggregate { .. } => OpMetricsKind::Aggregate,
            StageKind::Limit { .. } => OpMetricsKind::Limit,
        }
    }

    /// Short lower-case name (metrics, explain).
    pub fn name(&self) -> &'static str {
        self.metrics_kind().label()
    }
}

/// One post-join pipeline stage: the operator, its parallelism, how its
/// input redistribution is routed, and its derived output schema.
#[derive(Clone, Debug)]
pub struct PipelineStage {
    /// What the stage computes.
    pub kind: StageKind,
    /// Instance count. LIMIT and global aggregates run at 1.
    pub degree: usize,
    /// Input column the producer-side routers hash on (ignored for
    /// degree 1).
    pub partition_col: usize,
    /// Output schema of the stage.
    pub schema: Arc<Schema>,
    /// Planner-estimated output cardinality (rides into the metrics).
    pub est_out: u64,
    /// Human-readable description for `explain()`.
    pub label: String,
}

impl PipelineStage {
    /// Planner-estimated output size in bytes under the columnar batch
    /// layout: `est_out` rows times the per-row cost of this stage's
    /// schema ([`columnar_row_bytes`]) — 8 bytes per dense `i64` column,
    /// a boxed [`Value`] slot otherwise. This is the
    /// same accounting [`BatchPool`](crate::stream::BatchPool) charges
    /// against the memory budget at runtime, so explain output and
    /// observed `peak_bytes` are directly comparable.
    pub fn est_bytes(&self) -> u64 {
        self.est_out * columnar_row_bytes(&self.schema) as u64
    }
}

/// Join specs, node schemas, scan filters, and pipeline stages for one
/// query tree.
#[derive(Clone, Debug)]
pub struct QueryBinding {
    specs: HashMap<NodeId, EquiJoin>,
    schemas: Vec<Arc<Schema>>,
    /// Predicates pushed down to base-relation scans, by relation name.
    scan_filters: HashMap<String, Predicate>,
    /// Post-join stages, in dataflow order (the last stage feeds the
    /// client).
    stages: Vec<PipelineStage>,
}

impl QueryBinding {
    /// Builds a binding by assigning each join node the spec returned by
    /// `spec_for`, validating keys and projections bottom-up.
    pub fn new(
        tree: &JoinTree,
        provider: &dyn RelationProvider,
        mut spec_for: impl FnMut(NodeId, &Schema, &Schema) -> EquiJoin,
    ) -> Result<Self> {
        let mut specs = HashMap::new();
        let mut schemas: Vec<Option<Arc<Schema>>> = vec![None; tree.nodes().len()];
        for (id, node) in tree.nodes().iter().enumerate() {
            match node {
                TreeNode::Leaf { relation } => {
                    schemas[id] = Some(provider.relation(relation)?.schema().clone());
                }
                TreeNode::Join { left, right } => {
                    let ls = schemas[*left].clone().expect("children before parents");
                    let rs = schemas[*right].clone().expect("children before parents");
                    let spec = spec_for(id, &ls, &rs);
                    spec.validate(&ls, &rs)?;
                    schemas[id] = Some(Arc::new(spec.output_schema(&ls, &rs)?));
                    specs.insert(id, spec);
                }
            }
        }
        Ok(QueryBinding {
            specs,
            schemas: schemas
                .into_iter()
                .map(|s| s.expect("all filled"))
                .collect(),
            scan_filters: HashMap::new(),
            stages: Vec::new(),
        })
    }

    /// The binding for the paper's regular Wisconsin query: every join on
    /// `unique1`, re-keying projection (§4.1). Requires all relations to
    /// share one arity.
    pub fn regular(tree: &JoinTree, provider: &dyn RelationProvider) -> Result<Self> {
        // Determine the common arity from the first leaf.
        let first = tree
            .leaves_in_order()
            .first()
            .map(|n| n.to_string())
            .ok_or_else(|| RelalgError::InvalidPlan("tree has no leaves".into()))?;
        let arity = provider.relation(&first)?.schema().arity();
        Self::new(tree, provider, |_, _, _| regular_join_spec(arity))
    }

    /// Builds a binding from a [`LoweredQuery`] (the planner's generalized
    /// lowering): specs and schemas are taken as derived — no relation
    /// provider needed, since the lowering already validated every spec
    /// against the query's declared schemas. The provider the plan later
    /// runs against must serve relations with those schemas; mismatches
    /// surface as partitioning/validation errors at execution time.
    pub fn from_lowered(tree: &JoinTree, lowered: &LoweredQuery) -> Result<Self> {
        if lowered.schemas().len() != tree.nodes().len() {
            return Err(RelalgError::InvalidPlan(format!(
                "lowering covers {} nodes, tree has {}",
                lowered.schemas().len(),
                tree.nodes().len()
            )));
        }
        for join in tree.joins_bottom_up() {
            lowered.spec(join)?;
        }
        Ok(QueryBinding {
            specs: lowered.specs().clone(),
            schemas: lowered.schemas().to_vec(),
            scan_filters: HashMap::new(),
            stages: Vec::new(),
        })
    }

    /// The join spec of a join node.
    pub fn spec(&self, join: NodeId) -> Result<&EquiJoin> {
        self.specs
            .get(&join)
            .ok_or_else(|| RelalgError::InvalidPlan(format!("no spec for join {join}")))
    }

    /// The output schema of any tree node.
    pub fn schema(&self, node: NodeId) -> Result<&Arc<Schema>> {
        self.schemas.get(node).ok_or(RelalgError::IndexOutOfBounds {
            index: node,
            arity: self.schemas.len(),
        })
    }

    /// Attaches predicates pushed down to base-relation scans: the engine
    /// filters each named relation (zero-copy index gather) before
    /// fragmenting it.
    pub fn with_scan_filters(mut self, filters: HashMap<String, Predicate>) -> Self {
        self.scan_filters = filters;
        self
    }

    /// Appends the post-join pipeline stages, in dataflow order. Each
    /// stage's input schema is the previous stage's output (the root
    /// join's schema for the first); stage degrees must be positive and a
    /// LIMIT stage must run at degree 1.
    pub fn with_stages(mut self, stages: Vec<PipelineStage>) -> Result<Self> {
        for stage in &stages {
            if stage.degree == 0 {
                return Err(RelalgError::InvalidPlan(format!(
                    "{} stage has degree 0",
                    stage.kind.name()
                )));
            }
            if matches!(stage.kind, StageKind::Limit { .. }) && stage.degree != 1 {
                return Err(RelalgError::InvalidPlan(
                    "a LIMIT stage must run at degree 1".into(),
                ));
            }
        }
        self.stages = stages;
        Ok(self)
    }

    /// Rebuilds this binding with rewritten join specs and node schemas —
    /// the late-materialization narrowing. Pipeline stages are kept (they
    /// run over the *resolved* root output, whose schema is unchanged);
    /// scan filters are dropped because the rewrite pre-applies them while
    /// narrowing the leaves.
    pub(crate) fn narrowed(
        &self,
        specs: HashMap<NodeId, EquiJoin>,
        schemas: Vec<Arc<Schema>>,
    ) -> Self {
        QueryBinding {
            specs,
            schemas,
            scan_filters: HashMap::new(),
            stages: self.stages.clone(),
        }
    }

    /// Rebuilds the binding with every [`Expr::Param`] placeholder in its
    /// predicates replaced by the corresponding literal from `args`
    /// (1-based: `?1` reads `args[0]`). Scan filters and residual
    /// [`StageKind::Filter`] stages are the only places a lowered plan
    /// holds predicates, so this covers the whole plan; join specs,
    /// schemas, and non-filter stages are shared/cloned untouched. Errors
    /// if a placeholder's index exceeds `args` (the session layer
    /// validates arity first, so this is a backstop).
    pub fn bind_params(&self, args: &[i64]) -> Result<Self> {
        let subst = |e: &Expr| -> Result<Expr> {
            Ok(match e {
                Expr::Param(n) => {
                    let v = (*n as usize)
                        .checked_sub(1)
                        .and_then(|i| args.get(i))
                        .ok_or_else(|| {
                            RelalgError::InvalidPlan(format!(
                                "parameter ?{n} out of range for {} argument(s)",
                                args.len()
                            ))
                        })?;
                    Expr::Lit(Value::Int(*v))
                }
                other => other.clone(),
            })
        };
        let scan_filters = self
            .scan_filters
            .iter()
            .map(|(rel, p)| Ok((rel.clone(), p.map_exprs(&subst)?)))
            .collect::<Result<HashMap<_, _>>>()?;
        let stages = self
            .stages
            .iter()
            .map(|stage| {
                let kind = match &stage.kind {
                    StageKind::Filter {
                        predicate,
                        projection,
                    } => StageKind::Filter {
                        predicate: predicate.map_exprs(&subst)?,
                        projection: projection.clone(),
                    },
                    other => other.clone(),
                };
                Ok(PipelineStage {
                    kind,
                    ..stage.clone()
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(QueryBinding {
            specs: self.specs.clone(),
            schemas: self.schemas.clone(),
            scan_filters,
            stages,
        })
    }

    /// The predicate pushed to the scan of `relation`, if any.
    pub fn scan_filter(&self, relation: &str) -> Option<&Predicate> {
        self.scan_filters.get(relation)
    }

    /// All pushed scan filters by relation name.
    pub fn scan_filters(&self) -> &HashMap<String, Predicate> {
        &self.scan_filters
    }

    /// The post-join pipeline stages, in dataflow order.
    pub fn stages(&self) -> &[PipelineStage] {
        &self.stages
    }

    /// The schema of the query's client-visible result: the last stage's
    /// output, or the root join's schema when no stages are attached.
    pub fn result_schema(&self, root: NodeId) -> Result<&Arc<Schema>> {
        match self.stages.last() {
            Some(stage) => Ok(&stage.schema),
            None => self.schema(root),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_plan::shapes::{build, Shape};
    use mj_relalg::{Attribute, Relation, Tuple};
    use std::collections::HashMap as Map;

    fn provider(k: usize) -> Map<String, Arc<Relation>> {
        let schema = Schema::new(vec![
            Attribute::int("unique1"),
            Attribute::int("unique2"),
            Attribute::int("filler"),
        ])
        .shared();
        let mut m = Map::new();
        for i in 0..k {
            let tuples = (0..10).map(|v| Tuple::from_ints(&[v, v, v])).collect();
            m.insert(
                format!("R{i}"),
                Arc::new(Relation::new_unchecked(schema.clone(), tuples)),
            );
        }
        m
    }

    #[test]
    fn regular_binding_covers_all_joins() {
        let tree = build(Shape::WideBushy, 6).unwrap();
        let p = provider(6);
        let b = QueryBinding::regular(&tree, &p).unwrap();
        for j in tree.joins_bottom_up() {
            assert!(b.spec(j).is_ok());
            assert_eq!(
                b.schema(j).unwrap().arity(),
                3,
                "regular query preserves arity"
            );
        }
        for id in 0..tree.nodes().len() {
            assert!(b.schema(id).is_ok());
        }
    }

    #[test]
    fn missing_relation_errors() {
        let tree = build(Shape::LeftLinear, 4).unwrap();
        let p = provider(2); // R2, R3 missing
        assert!(QueryBinding::regular(&tree, &p).is_err());
    }

    #[test]
    fn invalid_spec_rejected() {
        let tree = build(Shape::LeftLinear, 3).unwrap();
        let p = provider(3);
        let out = QueryBinding::new(&tree, &p, |_, _, _| {
            EquiJoin::new(99, 0, mj_relalg::Projection::new(vec![0]))
        });
        assert!(out.is_err());
    }

    #[test]
    fn unknown_ids_error() {
        let tree = build(Shape::LeftLinear, 3).unwrap();
        let p = provider(3);
        let b = QueryBinding::regular(&tree, &p).unwrap();
        assert!(b.spec(0).is_err(), "leaves have no spec");
        assert!(b.schema(999).is_err());
    }

    #[test]
    fn stage_est_bytes_uses_columnar_row_cost() {
        let schema = Schema::new(vec![
            mj_relalg::Attribute::int("a"),
            mj_relalg::Attribute::int("b"),
        ])
        .shared();
        let stage = PipelineStage {
            kind: StageKind::Limit { k: 10 },
            degree: 1,
            partition_col: 0,
            schema: schema.clone(),
            est_out: 100,
            label: "limit 10".into(),
        };
        assert_eq!(
            stage.est_bytes(),
            100 * columnar_row_bytes(&schema) as u64,
            "sizing follows the columnar layout, not Tuple overhead"
        );
    }
}
