//! Per-query memory accounting.
//!
//! §5 of the paper frames pipelining as a memory/performance trade-off:
//! hash tables for *every* join in the tree must be resident at once. The
//! planner reasons about that cost from estimates; [`MemoryBudget`] is the
//! runtime enforcement point. Every query gets one budget (shared by all of
//! its operator instances, batch pools and materialized fragments); when
//! charges exceed the cap the query — and only that query — is aborted with
//! [`RelalgError::ResourceExhausted`] instead of OOM-killing the process.
//!
//! Charging is advisory-atomic: `charge` never blocks and never fails, it
//! just records the high-water mark and reports whether the cap is now
//! exceeded. The *reaction* (aborting the query) happens on the cooperative
//! scheduling path, where operator tasks poll [`MemoryBudget::is_exhausted`]
//! once per quantum — the same cadence as cancellation.

use mj_relalg::RelalgError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared atomic byte-accounting for one query.
///
/// Cheap to clone behind an [`Arc`]; all methods are lock-free.
#[derive(Debug)]
pub struct MemoryBudget {
    /// Cap in bytes; `u64::MAX` means unlimited.
    limit: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl Default for MemoryBudget {
    fn default() -> Self {
        MemoryBudget {
            limit: u64::MAX,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }
}

impl MemoryBudget {
    /// An unlimited budget: still tracks usage and peak, never trips.
    pub fn unlimited() -> Arc<Self> {
        Arc::new(MemoryBudget::default())
    }

    /// A budget capped at `bytes`.
    pub fn with_limit(bytes: u64) -> Arc<Self> {
        Arc::new(MemoryBudget {
            limit: bytes,
            ..MemoryBudget::default()
        })
    }

    /// The configured cap, or `None` for an unlimited budget.
    pub fn limit(&self) -> Option<u64> {
        (self.limit != u64::MAX).then_some(self.limit)
    }

    /// Records `bytes` of new usage. Returns `true` when the budget is
    /// still within its cap, `false` once it is exceeded. Never blocks.
    pub fn charge(&self, bytes: u64) -> bool {
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        now <= self.limit
    }

    /// Returns `bytes` of usage (saturating at zero so that shutdown-order
    /// races can never underflow the counter).
    pub fn credit(&self, bytes: u64) {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of charged bytes over the budget's lifetime.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Whether current usage exceeds the cap.
    pub fn is_exhausted(&self) -> bool {
        self.used() > self.limit
    }

    /// The typed error describing the current overrun (usable even when
    /// usage has since dropped back under the cap — reports the peak).
    pub fn exhausted_error(&self) -> RelalgError {
        RelalgError::ResourceExhausted {
            used: self.used().max(self.peak()),
            budget: self.limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = MemoryBudget::unlimited();
        assert!(b.charge(u64::MAX / 2));
        assert!(!b.is_exhausted());
        assert_eq!(b.limit(), None);
    }

    #[test]
    fn charge_credit_and_peak() {
        let b = MemoryBudget::with_limit(100);
        assert_eq!(b.limit(), Some(100));
        assert!(b.charge(60));
        assert!(b.charge(40)); // exactly at the cap is still fine
        assert!(!b.is_exhausted());
        assert!(!b.charge(1));
        assert!(b.is_exhausted());
        assert_eq!(b.peak(), 101);
        b.credit(101);
        assert_eq!(b.used(), 0);
        assert!(!b.is_exhausted());
        assert_eq!(b.peak(), 101, "peak is a high-water mark");
        b.credit(10);
        assert_eq!(b.used(), 0, "credit saturates at zero");
    }

    #[test]
    fn exhausted_error_reports_numbers() {
        let b = MemoryBudget::with_limit(10);
        b.charge(25);
        match b.exhausted_error() {
            RelalgError::ResourceExhausted { used, budget } => {
                assert_eq!(used, 25);
                assert_eq!(budget, 10);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn concurrent_charges_are_atomic() {
        let b = MemoryBudget::with_limit(u64::MAX - 1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        b.charge(3);
                        b.credit(1);
                    }
                });
            }
        });
        assert_eq!(b.used(), 4 * 1000 * 2);
    }
}
