//! Late materialization: join on narrow ref-carrying relations, gather
//! payloads once at the root.
//!
//! An eager plan copies every payload column of every matching row through
//! the whole join chain — each of *k* joins re-gathers the full row width,
//! so a payload byte crosses the pipeline O(k) times. The late plan
//! rewrites every base relation to its **narrow** form: the join-key
//! columns (kept dense, so probing is unchanged) plus one packed row
//! reference per leaf ([`pack_ref`]: `(source, row)` in a `u64`). Joins
//! then move only keys and refs; the full-width payload batches stay
//! pinned in a per-query [`FragmentRegistry`], and a single column-wise
//! gather at the pipeline root resolves the *surviving* refs — each
//! payload byte is touched exactly once, and only for rows that made it
//! through every join.
//!
//! The rewrite is purely a planning-time transformation: [`plan_late`]
//! derives a narrow [`QueryBinding`] (same tree, same operators, identity
//! projections over the narrow concatenations), synthesizes the narrow
//! base relations, and builds the [`Resolver`] that maps the narrow root
//! output back to the original root schema. The engine swaps the narrow
//! binding in for operator wiring, attaches the resolver to the root
//! join's tasks, and leaves everything downstream of the root (pipeline
//! stages, client channel) on the original schema — late materialization
//! is invisible outside the join pipeline.
//!
//! Eligibility is governed by [`LateMode`](crate::config::LateMode):
//! `Auto` demands at least two joins *and* a narrow root row at most 0.8×
//! the original row width (single joins and key-only schemas gain
//! nothing); `Always` rewrites whenever at least one payload column can be
//! stripped; `Never` disables the rewrite.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use mj_core::plan_ir::ParallelPlan;
use mj_plan::tree::{NodeId, TreeNode};
use mj_relalg::column::{columnar_row_bytes, ColumnBatch, ColumnLayout};
use mj_relalg::ops::filter_gather;
use mj_relalg::{
    Attribute, EquiJoin, Projection, RelalgError, Relation, RelationProvider, Result, Schema,
    Tuple, Value,
};
use mj_storage::{pack_ref, ref_row, FragmentRegistry};

use crate::binding::QueryBinding;
use crate::config::LateMode;

/// One column of the resolver's materialization plan: how original root
/// output column `j` is produced from the narrow root output.
#[derive(Clone, Debug)]
enum MatCol {
    /// Copied from narrow root output column `pos` (a join key, still
    /// dense in the narrow plan).
    Dense(usize),
    /// Gathered from the pinned payload of source `sid`, column
    /// `leaf_col`, at the row indices carried by ref slot `slot`.
    Gather {
        /// Index into [`Resolver::ref_cols`] naming the ref column whose
        /// row indices drive this gather.
        slot: usize,
        /// Registry slot of the pinned payload batch.
        sid: usize,
        /// Column within the pinned payload batch.
        leaf_col: usize,
    },
}

/// Resolves narrow (ref-carrying) root output batches into the original
/// root schema: dense columns are copied, payload columns are gathered
/// from the pinned registry batches. Built once per query by
/// [`plan_late`]; shared read-only by all root-op instances.
pub(crate) struct Resolver {
    registry: FragmentRegistry,
    plan: Vec<MatCol>,
    /// Narrow-root positions of the distinct ref columns the plan uses;
    /// `MatCol::Gather::slot` indexes this list.
    ref_cols: Vec<usize>,
    /// Column layout of the resolved (original root schema) output.
    layout: ColumnLayout,
}

impl Resolver {
    /// Layout of the resolved output (the original root schema).
    pub(crate) fn layout(&self) -> &ColumnLayout {
        &self.layout
    }

    /// Number of ref-index scratch buffers [`resolve_into`](Self::resolve_into)
    /// needs.
    pub(crate) fn scratch_slots(&self) -> usize {
        self.ref_cols.len()
    }

    /// Appends the resolution of every row of `src` (narrow root schema)
    /// to `dst` (original root schema). `scratch` holds the per-ref-column
    /// row-index buffers, reused across calls.
    pub(crate) fn resolve_into(
        &self,
        src: &ColumnBatch,
        scratch: &mut [Vec<u32>],
        dst: &mut ColumnBatch,
    ) -> Result<()> {
        let n = src.rows();
        if n == 0 {
            return Ok(());
        }
        // Unpack each used ref column's row indices once per batch; every
        // gather over the same source reuses the same index vector.
        for (slot, &pos) in self.ref_cols.iter().enumerate() {
            let refs = src.column(pos)?.as_refs().ok_or_else(|| {
                RelalgError::InvalidPlan(format!("late plan: column {pos} is not a ref column"))
            })?;
            let idx = &mut scratch[slot];
            idx.clear();
            idx.extend(refs.iter().map(|&r| ref_row(r)));
        }
        dst.append_with(n, |j, col| match &self.plan[j] {
            MatCol::Dense(pos) => col.append_range(src.column(*pos)?, 0..n),
            MatCol::Gather {
                slot,
                sid,
                leaf_col,
            } => col.append_gather(self.registry.get(*sid)?.column(*leaf_col)?, &scratch[*slot]),
        })
    }
}

/// Everything the engine needs to run a query late-materialized.
pub(crate) struct LateRewrite {
    /// Narrow binding: same stages, narrow join specs and node schemas,
    /// no scan filters (already applied to the narrow relations).
    pub narrow: QueryBinding,
    /// Narrow base relations by catalog name (scan filters pre-applied;
    /// row `i` of a narrow relation refs row `i` of its pinned payload).
    pub relations: HashMap<String, Arc<Relation>>,
    /// The root-side resolver over the pinned payload batches.
    pub resolver: Arc<Resolver>,
    /// Logical bytes pinned by the registry — charged to the query's
    /// memory budget for the query's lifetime.
    pub pinned_bytes: u64,
}

/// Per-leaf narrow output column: a still-dense original leaf column or
/// the leaf's packed row reference.
#[derive(Clone, Copy, PartialEq, Eq)]
enum NKind {
    Dense(usize),
    Ref,
}

/// One column of a narrow node's output, with the leaf it came from.
#[derive(Clone, Copy)]
struct NCol {
    leaf: NodeId,
    kind: NKind,
}

/// Attempts the late-materialization rewrite of `plan` + `binding` under
/// `mode`. Returns `None` when the rewrite is disabled, impossible, or
/// (under `Auto`) not estimated to pay.
pub(crate) fn plan_late(
    plan: &ParallelPlan,
    binding: &QueryBinding,
    provider: &dyn RelationProvider,
    mode: LateMode,
) -> Result<Option<LateRewrite>> {
    if mode == LateMode::Never || plan.ops.is_empty() {
        return Ok(None);
    }
    if mode == LateMode::Auto && plan.ops.len() < 2 {
        return Ok(None);
    }
    let tree = &plan.tree;
    let n_nodes = tree.nodes().len();

    // --- Provenance: trace every node output column to (leaf, leaf col).
    // Sources (registry slots) are keyed by relation *name*, so duplicate
    // leaves of the same relation share one pinned payload batch.
    let mut sid_of_name: HashMap<&str, usize> = HashMap::new();
    let mut names: Vec<&str> = Vec::new();
    let mut leaf_sid: HashMap<NodeId, usize> = HashMap::new();
    let mut prov: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); n_nodes];
    for (id, node) in tree.nodes().iter().enumerate() {
        match node {
            TreeNode::Leaf { relation } => {
                let sid = *sid_of_name.entry(relation.as_str()).or_insert_with(|| {
                    names.push(relation.as_str());
                    names.len() - 1
                });
                leaf_sid.insert(id, sid);
                let arity = binding.schema(id)?.arity();
                prov[id] = (0..arity).map(|c| (id, c)).collect();
            }
            TreeNode::Join { left, right } => {
                let spec = binding.spec(id)?;
                let l_arity = prov[*left].len();
                prov[id] = spec
                    .projection
                    .cols()
                    .iter()
                    .map(|&c| {
                        if c < l_arity {
                            prov[*left][c]
                        } else {
                            prov[*right][c - l_arity]
                        }
                    })
                    .collect();
            }
        }
    }

    // --- Dense sets: the leaf columns joins actually probe on. Everything
    // else becomes payload, reachable only through the ref column.
    let mut dense: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); names.len()];
    for (id, node) in tree.nodes().iter().enumerate() {
        if let TreeNode::Join { left, right } = node {
            let spec = binding.spec(id)?;
            for (child, key) in [(*left, spec.left_key), (*right, spec.right_key)] {
                let (leaf, col) = prov[child][key];
                dense[leaf_sid[&leaf]].insert(col);
            }
        }
    }

    // A leaf needs its ref column only if some original root output column
    // must be gathered from its payload.
    let root = tree.root();
    let mut needs_ref = vec![false; names.len()];
    for &(leaf, col) in &prov[root] {
        let sid = leaf_sid[&leaf];
        if !dense[sid].contains(&col) {
            needs_ref[sid] = true;
        }
    }

    // --- Narrow leaf schemas; bail if nothing is stripped anywhere.
    let mut narrow_leaf_schemas: Vec<Option<Arc<Schema>>> = vec![None; names.len()];
    let mut stripped_any = false;
    for (sid, name) in names.iter().enumerate() {
        // Any leaf of this relation serves: schemas are per-name.
        let leaf = *leaf_sid
            .iter()
            .find(|(_, s)| **s == sid)
            .map(|(l, _)| l)
            .ok_or_else(|| RelalgError::InvalidPlan("late plan: unmapped source".into()))?;
        let orig = binding.schema(leaf)?;
        let mut attrs: Vec<Attribute> = dense[sid]
            .iter()
            .map(|&c| orig.attr(c).cloned())
            .collect::<Result<_>>()?;
        if needs_ref[sid] {
            attrs.push(Attribute::rowref(format!("{name}#ref")));
        }
        if attrs.len() < orig.arity() {
            stripped_any = true;
        }
        narrow_leaf_schemas[sid] = Some(Schema::new(attrs).shared());
    }
    if !stripped_any {
        return Ok(None);
    }

    // --- Narrow node outputs: leaves emit [dense cols..., ref?]; joins
    // emit the identity over the concatenation, so every leaf's columns
    // survive to the root (the resolver needs them there).
    let mut ncols: Vec<Vec<NCol>> = vec![Vec::new(); n_nodes];
    let mut narrow_schemas: Vec<Option<Arc<Schema>>> = vec![None; n_nodes];
    let mut narrow_specs: HashMap<NodeId, EquiJoin> = HashMap::new();
    for (id, node) in tree.nodes().iter().enumerate() {
        match node {
            TreeNode::Leaf { .. } => {
                let sid = leaf_sid[&id];
                let mut cols: Vec<NCol> = dense[sid]
                    .iter()
                    .map(|&c| NCol {
                        leaf: id,
                        kind: NKind::Dense(c),
                    })
                    .collect();
                if needs_ref[sid] {
                    cols.push(NCol {
                        leaf: id,
                        kind: NKind::Ref,
                    });
                }
                ncols[id] = cols;
                narrow_schemas[id] = narrow_leaf_schemas[sid].clone();
            }
            TreeNode::Join { left, right } => {
                let spec = binding.spec(id)?;
                let key_pos = |child: NodeId, key: usize| -> Result<usize> {
                    let (leaf, col) = prov[child][key];
                    ncols[child]
                        .iter()
                        .position(|nc| nc.leaf == leaf && nc.kind == NKind::Dense(col))
                        .ok_or_else(|| {
                            RelalgError::InvalidPlan("late plan: join key not dense".into())
                        })
                };
                let left_key = key_pos(*left, spec.left_key)?;
                let right_key = key_pos(*right, spec.right_key)?;
                let (l, r) = (ncols[*left].clone(), ncols[*right].clone());
                let arity = l.len() + r.len();
                ncols[id] = l.into_iter().chain(r).collect();
                let ls = narrow_schemas[*left]
                    .as_ref()
                    .ok_or_else(|| RelalgError::InvalidPlan("late plan: schema order".into()))?;
                let rs = narrow_schemas[*right]
                    .as_ref()
                    .ok_or_else(|| RelalgError::InvalidPlan("late plan: schema order".into()))?;
                narrow_schemas[id] = Some(ls.concat(rs).shared());
                narrow_specs.insert(
                    id,
                    EquiJoin::new(left_key, right_key, Projection::new((0..arity).collect())),
                );
            }
        }
    }

    // --- Eligibility: under Auto the narrow root row must be materially
    // narrower than the original (0.8×), or the ref traffic and the final
    // gather cost more than they save.
    let orig_root = binding.schema(root)?;
    let narrow_root = narrow_schemas[root]
        .as_ref()
        .ok_or_else(|| RelalgError::InvalidPlan("late plan: no root schema".into()))?;
    if mode == LateMode::Auto
        && 10 * columnar_row_bytes(narrow_root) > 8 * columnar_row_bytes(orig_root)
    {
        return Ok(None);
    }

    // --- Materialize: pin filtered payloads, synthesize narrow relations.
    // Refs index rows of the *filtered* payload, so filters must be
    // applied (in original leaf coordinates) before either is built.
    let mut registry = FragmentRegistry::new(names.len());
    let mut relations: HashMap<String, Arc<Relation>> = HashMap::new();
    for (sid, name) in names.iter().enumerate() {
        let base = provider.relation(name)?;
        let filtered: Arc<Relation> = match binding.scan_filter(name) {
            Some(pred) => Arc::new(filter_gather(&base, pred)?),
            None => base,
        };
        if filtered.len() > u32::MAX as usize {
            return Ok(None); // row index would not fit a packed ref
        }
        let schema = narrow_leaf_schemas[sid]
            .clone()
            .ok_or_else(|| RelalgError::InvalidPlan("late plan: no leaf schema".into()))?;
        let mut tuples = Vec::with_capacity(filtered.len());
        for (row, t) in filtered.iter().enumerate() {
            let mut vals: Vec<Value> = Vec::with_capacity(schema.arity());
            for &c in dense[sid].iter() {
                vals.push(t.get(c)?.clone());
            }
            if needs_ref[sid] {
                vals.push(Value::Int(pack_ref(sid as u32, row as u32) as i64));
            }
            tuples.push(Tuple::new(vals));
        }
        relations.insert(
            (*name).to_string(),
            Arc::new(Relation::new_unchecked(schema, tuples)),
        );
        if needs_ref[sid] {
            registry.set(sid, Arc::new(ColumnBatch::from_relation(&filtered)?));
        }
    }

    // --- Materialization plan for the resolver: map every original root
    // output column to a dense copy or a registry gather.
    let mut ref_cols: Vec<usize> = Vec::new();
    let mut mat_plan: Vec<MatCol> = Vec::with_capacity(prov[root].len());
    for &(leaf, col) in &prov[root] {
        let sid = leaf_sid[&leaf];
        if dense[sid].contains(&col) {
            let pos = ncols[root]
                .iter()
                .position(|nc| nc.leaf == leaf && nc.kind == NKind::Dense(col))
                .ok_or_else(|| RelalgError::InvalidPlan("late plan: lost dense column".into()))?;
            mat_plan.push(MatCol::Dense(pos));
        } else {
            let ref_pos = ncols[root]
                .iter()
                .position(|nc| nc.leaf == leaf && nc.kind == NKind::Ref)
                .ok_or_else(|| RelalgError::InvalidPlan("late plan: lost ref column".into()))?;
            let slot = match ref_cols.iter().position(|&p| p == ref_pos) {
                Some(s) => s,
                None => {
                    ref_cols.push(ref_pos);
                    ref_cols.len() - 1
                }
            };
            mat_plan.push(MatCol::Gather {
                slot,
                sid,
                leaf_col: col,
            });
        }
    }

    let pinned_bytes = registry.est_bytes();
    let schemas: Vec<Arc<Schema>> = narrow_schemas
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| RelalgError::InvalidPlan("late plan: incomplete schemas".into()))?;
    Ok(Some(LateRewrite {
        narrow: binding.narrowed(narrow_specs, schemas),
        relations,
        resolver: Arc::new(Resolver {
            registry,
            plan: mat_plan,
            ref_cols,
            layout: ColumnLayout::of(orig_root),
        }),
        pinned_bytes,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Database, DbConfig};
    use mj_relalg::DataType;

    fn rel(cols: &[&str], rows: usize) -> Arc<Relation> {
        let schema = Schema::new(cols.iter().map(|c| Attribute::int(*c)).collect()).shared();
        let arity = cols.len();
        let tuples = (0..rows as i64)
            .map(|i| Tuple::from_ints(&vec![i % 8; arity]))
            .collect();
        Arc::new(Relation::new_unchecked(schema, tuples))
    }

    /// Three wide relations (two payload columns each) chained on `k`.
    fn wide_db() -> Database {
        let db = Database::open(DbConfig::default()).unwrap();
        db.register("a", rel(&["k", "p1", "p2", "p3"], 24)).unwrap();
        db.register("b", rel(&["k", "q1", "q2", "q3"], 24)).unwrap();
        db.register("c", rel(&["k", "r1", "r2", "r3"], 24)).unwrap();
        db.analyze().unwrap();
        db
    }

    const CHAIN: &str = "SELECT * FROM a JOIN b ON a.k = b.k JOIN c ON b.k = c.k";

    #[test]
    fn auto_rewrites_wide_chains_and_narrows_every_leaf() {
        let db = wide_db();
        let planned = db.plan(CHAIN).unwrap();
        let late = plan_late(
            &planned.plan,
            &planned.binding,
            db.catalog().as_ref(),
            LateMode::Auto,
        )
        .unwrap()
        .expect("two joins over 4-int rows must rewrite under Auto");
        // Every leaf keeps only its key plus the ref column.
        for name in ["a", "b", "c"] {
            let narrow = late.relations.get(name).expect("narrow relation");
            assert_eq!(narrow.schema().arity(), 2, "{name}: key + ref only");
            assert_eq!(
                narrow.schema().attr(1).unwrap().ty,
                DataType::Ref,
                "{name}: ref column last"
            );
        }
        assert!(late.pinned_bytes > 0, "payloads pinned for resolution");
        // The narrow root output is keys + refs; the original is 12 ints.
        let root = planned.plan.tree.root();
        assert_eq!(planned.binding.schema(root).unwrap().arity(), 12);
        assert_eq!(late.narrow.schema(root).unwrap().arity(), 6);
        // Narrow bindings carry no scan filters (already applied).
        assert!(late.narrow.scan_filters().is_empty());
    }

    #[test]
    fn never_and_single_join_auto_do_not_rewrite() {
        let db = wide_db();
        let planned = db.plan(CHAIN).unwrap();
        let cat = db.catalog();
        assert!(
            plan_late(
                &planned.plan,
                &planned.binding,
                cat.as_ref(),
                LateMode::Never
            )
            .unwrap()
            .is_none(),
            "Never disables the rewrite"
        );
        let single = db.plan("SELECT * FROM a JOIN b ON a.k = b.k").unwrap();
        assert!(
            plan_late(&single.plan, &single.binding, cat.as_ref(), LateMode::Auto)
                .unwrap()
                .is_none(),
            "Auto demands at least two joins"
        );
        assert!(
            plan_late(
                &single.plan,
                &single.binding,
                cat.as_ref(),
                LateMode::Always
            )
            .unwrap()
            .is_some(),
            "Always rewrites a single join when payloads can be stripped"
        );
    }

    #[test]
    fn auto_declines_key_only_schemas() {
        // Narrow rows (key + ref per leaf) would be as wide as the
        // originals: the 0.8x policy must decline.
        let db = Database::open(DbConfig::default()).unwrap();
        db.register("x", rel(&["k", "v"], 16)).unwrap();
        db.register("y", rel(&["k", "v"], 16)).unwrap();
        db.register("z", rel(&["k", "v"], 16)).unwrap();
        db.analyze().unwrap();
        let planned = db
            .plan("SELECT * FROM x JOIN y ON x.k = y.k JOIN z ON y.k = z.k")
            .unwrap();
        assert!(
            plan_late(
                &planned.plan,
                &planned.binding,
                db.catalog().as_ref(),
                LateMode::Auto,
            )
            .unwrap()
            .is_none(),
            "2-col rows gain nothing from a ref rewrite"
        );
    }

    #[test]
    fn resolver_round_trips_rows_through_refs() {
        // Resolve a hand-built narrow batch against a pinned payload and
        // check rows land in original-schema order.
        let payload_schema = Schema::new(vec![
            Attribute::int("k"),
            Attribute::int("p"),
            Attribute::int("q"),
        ])
        .shared();
        let payload = Relation::new_unchecked(
            payload_schema.clone(),
            (0..6)
                .map(|i| Tuple::from_ints(&[i, 10 * i, 100 * i]))
                .collect(),
        );
        let mut registry = FragmentRegistry::new(1);
        registry.set(0, Arc::new(ColumnBatch::from_relation(&payload).unwrap()));
        let resolver = Resolver {
            registry,
            plan: vec![
                MatCol::Dense(0),
                MatCol::Gather {
                    slot: 0,
                    sid: 0,
                    leaf_col: 1,
                },
                MatCol::Gather {
                    slot: 0,
                    sid: 0,
                    leaf_col: 2,
                },
            ],
            ref_cols: vec![1],
            layout: ColumnLayout::of(&payload_schema),
        };
        // Narrow batch: [k, ref] rows pointing at payload rows 5, 2, 2.
        let narrow_schema =
            Schema::new(vec![Attribute::int("k"), Attribute::rowref("payload#ref")]);
        let mut narrow = ColumnBatch::for_schema(&narrow_schema);
        for row in [5u32, 2, 2] {
            narrow
                .push_tuple(&Tuple::new(vec![
                    Value::Int(row as i64),
                    Value::Int(pack_ref(0, row) as i64),
                ]))
                .unwrap();
        }
        let mut scratch = vec![Vec::new(); resolver.scratch_slots()];
        let mut out = ColumnBatch::with_capacity(resolver.layout(), 4);
        resolver
            .resolve_into(&narrow, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out.rows(), 3);
        assert_eq!(out.row(0).unwrap(), Tuple::from_ints(&[5, 50, 500]));
        assert_eq!(out.row(1).unwrap(), Tuple::from_ints(&[2, 20, 200]));
        assert_eq!(out.row(2).unwrap(), Tuple::from_ints(&[2, 20, 200]));
        // Resolution appends: a second batch lands after the first.
        resolver
            .resolve_into(&narrow, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out.rows(), 6);
    }
}
