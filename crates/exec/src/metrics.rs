//! Execution metrics, aggregated across operation processes.

use serde::{Deserialize, Serialize};

/// What kind of operator a metrics row describes. The join DAG's ops are
/// [`Join`](OpMetricsKind::Join); the post-join pipeline stages carry
/// their own kinds so `explain()` and the cardinality report name them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpMetricsKind {
    /// A hash equi-join of the plan tree.
    Join,
    /// A residual selection stage.
    Filter,
    /// A partitioned GROUP BY stage.
    Aggregate,
    /// A LIMIT stage.
    Limit,
}

impl OpMetricsKind {
    /// Short lower-case label.
    pub fn label(&self) -> &'static str {
        match self {
            OpMetricsKind::Join => "join",
            OpMetricsKind::Filter => "filter",
            OpMetricsKind::Aggregate => "aggregate",
            OpMetricsKind::Limit => "limit",
        }
    }
}

// Not `#[derive(Default)]`: the offline serde shim's derive cannot parse
// a `#[default]` attribute inside the enum body.
#[allow(clippy::derivable_impls)]
impl Default for OpMetricsKind {
    fn default() -> Self {
        OpMetricsKind::Join
    }
}

/// Per-operation aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpMetrics {
    /// What kind of operator this row describes.
    pub kind: OpMetricsKind,
    /// Operation processes spawned (= plan degree).
    pub instances: usize,
    /// Tuples consumed on the (left, right) operand across instances.
    pub tuples_in: [u64; 2],
    /// Result tuples produced across instances.
    pub tuples_out: u64,
    /// Peak hash-table bytes summed across instances.
    pub table_bytes: u64,
    /// The planner's estimated result cardinality for this op (copied from
    /// the plan), so estimated-vs-actual plan quality is observable next
    /// to `tuples_out`.
    pub est_out: u64,
}

impl OpMetrics {
    /// The q-error of the planner's cardinality estimate for this op:
    /// `max(est, actual) / min(est, actual)`, the standard symmetric
    /// plan-quality metric (1.0 = perfect). Zero-vs-nonzero counts as the
    /// worst case (`f64::INFINITY`); 0 vs 0 is perfect.
    pub fn q_error(&self) -> f64 {
        let (est, act) = (self.est_out as f64, self.tuples_out as f64);
        let (lo, hi) = if est <= act { (est, act) } else { (act, est) };
        if hi == 0.0 {
            1.0
        } else if lo == 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }
}

/// Whole-query metrics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Indexed by op id.
    pub ops: Vec<OpMetrics>,
    /// Total operation processes spawned — the startup driver (§3.5).
    pub processes: usize,
    /// Total point-to-point streams opened — the coordination driver.
    pub streams: usize,
    /// Scheduler steps taken by this query's tasks on the worker pool.
    pub sched_steps: u64,
    /// Steps that could not progress (channel empty/full) and yielded the
    /// worker instead of parking a thread.
    pub sched_blocked: u64,
    /// Peak bytes charged against this query's memory budget (hash-build
    /// state, pooled batch buffers, materialized fragments).
    pub peak_bytes: u64,
    /// Operator-task panics contained (converted into a query-scoped typed
    /// error) while this query ran.
    pub panics_contained: u64,
}

impl Metrics {
    /// Creates zeroed metrics for `ops` operations.
    pub fn new(ops: usize) -> Self {
        Metrics {
            ops: vec![OpMetrics::default(); ops],
            processes: 0,
            streams: 0,
            sched_steps: 0,
            sched_blocked: 0,
            peak_bytes: 0,
            panics_contained: 0,
        }
    }

    /// Total tuples produced by all ops.
    pub fn total_tuples_out(&self) -> u64 {
        self.ops.iter().map(|o| o.tuples_out).sum()
    }

    /// Worst per-op cardinality q-error across the plan (1.0 = every
    /// estimate exact). The single number to watch for planner quality.
    pub fn max_q_error(&self) -> f64 {
        self.ops.iter().map(|o| o.q_error()).fold(1.0, f64::max)
    }

    /// Estimated-vs-actual result cardinality per op: `(op id, estimated,
    /// actual)` rows, ready for display.
    pub fn cardinality_report(&self) -> Vec<(usize, u64, u64)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(id, o)| (id, o.est_out, o.tuples_out))
            .collect()
    }
}

/// What one instance reports back on completion.
#[derive(Clone, Copy, Debug, Default)]
pub struct InstanceStats {
    /// Tuples consumed per side.
    pub tuples_in: [u64; 2],
    /// Result tuples produced.
    pub tuples_out: u64,
    /// Peak hash-table bytes of this instance.
    pub table_bytes: u64,
    /// Scheduler steps this instance ran for.
    pub steps: u64,
    /// Steps that ended blocked (yielded the worker without progress).
    pub blocked: u64,
}

/// Engine-lifetime robustness counters, snapshotted by `Engine::stats()` /
/// `Database::stats()`. Every count is cumulative since the engine opened.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Queries accepted by admission control (includes still-running ones).
    pub queries_submitted: u64,
    /// Queries that completed successfully.
    pub queries_completed: u64,
    /// Queries that ended in client cancellation.
    pub queries_canceled: u64,
    /// Queries that failed with an execution error not counted elsewhere.
    pub queries_failed: u64,
    /// Queries rejected by admission control (`Overloaded`).
    pub queries_rejected: u64,
    /// Queries aborted for exceeding their deadline (`DeadlineExceeded`).
    pub queries_timed_out: u64,
    /// Queries aborted by the stall watchdog (`Stalled`).
    pub queries_stalled: u64,
    /// Queries aborted for exceeding their memory budget
    /// (`ResourceExhausted`).
    pub budget_aborts: u64,
    /// Operator-task panics contained across all queries.
    pub panics_contained: u64,
    /// Largest per-query peak of budget-charged bytes observed.
    pub peak_bytes: u64,
    /// Batch-pool buffer takes across every redistribution edge (process
    /// lifetime; pair with `batch_pool_misses` for the pool hit rate).
    pub batch_pool_takes: u64,
    /// Batch-pool takes that had to allocate because the pool was empty.
    pub batch_pool_misses: u64,
    /// Join output rows materialized by gather emission. Late
    /// materialization exists to shrink this: ref-carrying joins gather
    /// key+ref rows instead of full payloads.
    pub gather_rows: u64,
    /// Hot-path kernel calls dispatched to an explicit SIMD body (scalar
    /// fallbacks are not counted).
    pub simd_kernel_dispatches: u64,
}

pub(crate) mod counters {
    //! Atomic backing store for [`EngineStats`](super::EngineStats).

    use super::EngineStats;
    use crate::handle::QueryOutcome;
    use mj_relalg::{RelalgError, Result};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Shared atomic counters owned by the engine; coordinator threads
    /// record into them as queries finish.
    #[derive(Debug, Default)]
    pub struct EngineCounters {
        pub submitted: AtomicU64,
        pub completed: AtomicU64,
        pub canceled: AtomicU64,
        pub failed: AtomicU64,
        pub rejected: AtomicU64,
        pub timed_out: AtomicU64,
        pub stalled: AtomicU64,
        pub budget_aborts: AtomicU64,
        pub panics_contained: AtomicU64,
        pub peak_bytes: AtomicU64,
    }

    impl EngineCounters {
        /// Classifies one finished query's result into the counters.
        pub fn record(&self, result: &Result<QueryOutcome>, panics: u64, peak: u64) {
            self.panics_contained.fetch_add(panics, Ordering::Relaxed);
            self.peak_bytes.fetch_max(peak, Ordering::Relaxed);
            let bucket = match result {
                Ok(_) => &self.completed,
                Err(RelalgError::Canceled) => &self.canceled,
                Err(RelalgError::DeadlineExceeded) => &self.timed_out,
                Err(RelalgError::Stalled(_)) => &self.stalled,
                Err(RelalgError::ResourceExhausted { .. }) => &self.budget_aborts,
                Err(_) => &self.failed,
            };
            bucket.fetch_add(1, Ordering::Relaxed);
        }

        /// A consistent-enough snapshot for reporting.
        pub fn snapshot(&self) -> EngineStats {
            EngineStats {
                queries_submitted: self.submitted.load(Ordering::Relaxed),
                queries_completed: self.completed.load(Ordering::Relaxed),
                queries_canceled: self.canceled.load(Ordering::Relaxed),
                queries_failed: self.failed.load(Ordering::Relaxed),
                queries_rejected: self.rejected.load(Ordering::Relaxed),
                queries_timed_out: self.timed_out.load(Ordering::Relaxed),
                queries_stalled: self.stalled.load(Ordering::Relaxed),
                budget_aborts: self.budget_aborts.load(Ordering::Relaxed),
                panics_contained: self.panics_contained.load(Ordering::Relaxed),
                peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
                batch_pool_takes: crate::stream::pool_takes(),
                batch_pool_misses: crate::stream::pool_misses(),
                gather_rows: mj_join::gather_rows(),
                simd_kernel_dispatches: mj_relalg::simd::kernel_dispatches(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_helpers() {
        let mut m = Metrics::new(2);
        m.ops[0].tuples_out = 5;
        m.ops[1].tuples_out = 7;
        assert_eq!(m.total_tuples_out(), 12);
        assert_eq!(m.ops.len(), 2);
    }

    #[test]
    fn q_error_is_symmetric_and_handles_zero() {
        let mut o = OpMetrics {
            est_out: 100,
            tuples_out: 50,
            ..OpMetrics::default()
        };
        assert_eq!(o.q_error(), 2.0);
        o.est_out = 25;
        assert_eq!(o.q_error(), 2.0);
        o.est_out = 0;
        assert_eq!(o.q_error(), f64::INFINITY);
        o.tuples_out = 0;
        assert_eq!(o.q_error(), 1.0);
    }

    #[test]
    fn cardinality_report_pairs_est_and_actual() {
        let mut m = Metrics::new(2);
        m.ops[0].est_out = 10;
        m.ops[0].tuples_out = 12;
        m.ops[1].est_out = 5;
        m.ops[1].tuples_out = 5;
        assert_eq!(m.cardinality_report(), vec![(0, 10, 12), (1, 5, 5)]);
        assert!((m.max_q_error() - 1.2).abs() < 1e-9);
    }
}
