//! Execution metrics: per-operation aggregates, engine-lifetime counters,
//! and the accept-listed metrics registry the query server exports.
//!
//! Three layers, coarsest last:
//!
//! * [`OpMetrics`] / [`Metrics`] — one query's per-operator aggregates
//!   (tuples, bytes, scheduler steps), attached to its outcome.
//! * [`EngineStats`] — engine-lifetime counters (completions, rejections,
//!   guardrail aborts) plus fixed-bucket latency histograms, snapshotted
//!   **atomically consistently**: the backing `counters::EngineCounters`
//!   keeps every per-query-grain counter under one mutex, so a snapshot
//!   taken while N threads hammer queries always satisfies
//!   `completed + failed + canceled + rejected <= submitted`.
//! * [`MetricsSnapshot`] — the accept-listed export surface
//!   ([`METRICS_ACCEPT_LIST`]): only vetted counters/gauges/histograms
//!   leave the process, rendered as Prometheus text
//!   ([`MetricsSnapshot::to_prometheus`]) or JSON (serde), following the
//!   accept-list registry design of production query engines.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// What kind of operator a metrics row describes. The join DAG's ops are
/// [`Join`](OpMetricsKind::Join); the post-join pipeline stages carry
/// their own kinds so `explain()` and the cardinality report name them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpMetricsKind {
    /// A hash equi-join of the plan tree.
    Join,
    /// A residual selection stage.
    Filter,
    /// A partitioned GROUP BY stage.
    Aggregate,
    /// A LIMIT stage.
    Limit,
}

impl OpMetricsKind {
    /// Short lower-case label.
    pub fn label(&self) -> &'static str {
        match self {
            OpMetricsKind::Join => "join",
            OpMetricsKind::Filter => "filter",
            OpMetricsKind::Aggregate => "aggregate",
            OpMetricsKind::Limit => "limit",
        }
    }
}

// Not `#[derive(Default)]`: the offline serde shim's derive cannot parse
// a `#[default]` attribute inside the enum body.
#[allow(clippy::derivable_impls)]
impl Default for OpMetricsKind {
    fn default() -> Self {
        OpMetricsKind::Join
    }
}

/// Per-operation aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpMetrics {
    /// What kind of operator this row describes.
    pub kind: OpMetricsKind,
    /// Operation processes spawned (= plan degree).
    pub instances: usize,
    /// Tuples consumed on the (left, right) operand across instances.
    pub tuples_in: [u64; 2],
    /// Result tuples produced across instances.
    pub tuples_out: u64,
    /// Peak hash-table bytes summed across instances.
    pub table_bytes: u64,
    /// The planner's estimated result cardinality for this op (copied from
    /// the plan), so estimated-vs-actual plan quality is observable next
    /// to `tuples_out`.
    pub est_out: u64,
}

impl OpMetrics {
    /// The q-error of the planner's cardinality estimate for this op:
    /// `max(est, actual) / min(est, actual)`, the standard symmetric
    /// plan-quality metric (1.0 = perfect). Zero-vs-nonzero counts as the
    /// worst case (`f64::INFINITY`); 0 vs 0 is perfect.
    pub fn q_error(&self) -> f64 {
        let (est, act) = (self.est_out as f64, self.tuples_out as f64);
        let (lo, hi) = if est <= act { (est, act) } else { (act, est) };
        if hi == 0.0 {
            1.0
        } else if lo == 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }
}

/// Whole-query metrics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Indexed by op id.
    pub ops: Vec<OpMetrics>,
    /// Total operation processes spawned — the startup driver (§3.5).
    pub processes: usize,
    /// Total point-to-point streams opened — the coordination driver.
    pub streams: usize,
    /// Scheduler steps taken by this query's tasks on the worker pool.
    pub sched_steps: u64,
    /// Steps that could not progress (channel empty/full) and yielded the
    /// worker instead of parking a thread.
    pub sched_blocked: u64,
    /// Peak bytes charged against this query's memory budget (hash-build
    /// state, pooled batch buffers, materialized fragments).
    pub peak_bytes: u64,
    /// Operator-task panics contained (converted into a query-scoped typed
    /// error) while this query ran.
    pub panics_contained: u64,
}

impl Metrics {
    /// Creates zeroed metrics for `ops` operations.
    pub fn new(ops: usize) -> Self {
        Metrics {
            ops: vec![OpMetrics::default(); ops],
            processes: 0,
            streams: 0,
            sched_steps: 0,
            sched_blocked: 0,
            peak_bytes: 0,
            panics_contained: 0,
        }
    }

    /// Total tuples produced by all ops.
    pub fn total_tuples_out(&self) -> u64 {
        self.ops.iter().map(|o| o.tuples_out).sum()
    }

    /// Worst per-op cardinality q-error across the plan (1.0 = every
    /// estimate exact). The single number to watch for planner quality.
    pub fn max_q_error(&self) -> f64 {
        self.ops.iter().map(|o| o.q_error()).fold(1.0, f64::max)
    }

    /// Estimated-vs-actual result cardinality per op: `(op id, estimated,
    /// actual)` rows, ready for display.
    pub fn cardinality_report(&self) -> Vec<(usize, u64, u64)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(id, o)| (id, o.est_out, o.tuples_out))
            .collect()
    }
}

/// What one instance reports back on completion.
#[derive(Clone, Copy, Debug, Default)]
pub struct InstanceStats {
    /// Tuples consumed per side.
    pub tuples_in: [u64; 2],
    /// Result tuples produced.
    pub tuples_out: u64,
    /// Peak hash-table bytes of this instance.
    pub table_bytes: u64,
    /// Scheduler steps this instance ran for.
    pub steps: u64,
    /// Steps that ended blocked (yielded the worker without progress).
    pub blocked: u64,
}

/// Upper bounds, in milliseconds, of the fixed latency histogram buckets.
/// An observation lands in the first bucket whose bound it does not
/// exceed; anything above the last bound lands in the overflow (`+Inf`)
/// bucket, so [`LatencyHistogram`] has `LATENCY_BUCKETS` = 12 buckets
/// total. The bounds are fixed at compile time — Prometheus histograms
/// require stable buckets across scrapes.
pub const LATENCY_BUCKET_BOUNDS_MS: [u64; 11] = [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000];

/// Number of buckets in a [`LatencyHistogram`]: the bounded buckets of
/// [`LATENCY_BUCKET_BOUNDS_MS`] plus the overflow (`+Inf`) bucket.
pub const LATENCY_BUCKETS: usize = LATENCY_BUCKET_BOUNDS_MS.len() + 1;

/// A fixed-bucket latency histogram (`Copy`, no allocation): per-bucket
/// observation counts plus the running sum, exactly the data a Prometheus
/// histogram exposition needs. Buckets are **non-cumulative** here;
/// [`MetricsSnapshot::to_prometheus`] accumulates them into the `le`
/// form at render time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Observations per bucket (index `i` < the bound
    /// `LATENCY_BUCKET_BOUNDS_MS[i]`; the last index is overflow).
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Sum of all observations, in microseconds (integral so the
    /// histogram stays `Eq` and exactly mergeable).
    pub sum_us: u64,
    /// Total observations; always equals `buckets.iter().sum()`.
    pub count: u64,
}

impl LatencyHistogram {
    /// The bucket index a duration of `us` microseconds falls into.
    fn bucket_index(us: u64) -> usize {
        let ms = us.div_ceil(1000);
        LATENCY_BUCKET_BOUNDS_MS
            .iter()
            .position(|&bound| ms <= bound)
            .unwrap_or(LATENCY_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn observe(&mut self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_index(us)] += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.count += 1;
    }

    /// Sum of all observations in milliseconds.
    pub fn sum_ms(&self) -> f64 {
        self.sum_us as f64 / 1000.0
    }

    /// Mean observation in milliseconds (0.0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms() / self.count as f64
        }
    }
}

/// Engine-lifetime robustness counters, snapshotted by `Engine::stats()` /
/// `Database::stats()`. Every count is cumulative since the engine opened.
///
/// The snapshot is **atomically consistent**: all per-query-grain fields
/// are read under one lock, so the sum of the terminal-outcome counters
/// (`queries_completed`, `queries_failed`, `queries_canceled`,
/// `queries_timed_out`, `queries_stalled`, `budget_aborts`,
/// `queries_rejected`) never exceeds `queries_submitted` in any snapshot,
/// even one taken mid-hammer from another thread. (The process-global
/// batch pool / SIMD tallies are independent relaxed counters and carry
/// no such cross-field invariant.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Queries ever submitted, **including** ones admission control
    /// rejected — so the terminal-outcome counters below always sum to at
    /// most this.
    pub queries_submitted: u64,
    /// Queries admitted and currently running (gauge, not cumulative).
    pub queries_active: u64,
    /// Queries that completed successfully.
    pub queries_completed: u64,
    /// Queries that ended in client cancellation.
    pub queries_canceled: u64,
    /// Queries that failed with an execution error not counted elsewhere.
    pub queries_failed: u64,
    /// Queries rejected by admission control (`Overloaded`).
    pub queries_rejected: u64,
    /// Queries aborted for exceeding their deadline (`DeadlineExceeded`).
    pub queries_timed_out: u64,
    /// Queries aborted by the stall watchdog (`Stalled`).
    pub queries_stalled: u64,
    /// Queries aborted for exceeding their memory budget
    /// (`ResourceExhausted`).
    pub budget_aborts: u64,
    /// Operator-task panics contained across all queries.
    pub panics_contained: u64,
    /// Largest per-query peak of budget-charged bytes observed.
    pub peak_bytes: u64,
    /// Wall-clock duration of every query that reached a terminal state
    /// (success or typed failure), submission to coordinator exit. The
    /// bucket counts sum to `queries_total()` exactly.
    pub query_duration: LatencyHistogram,
    /// End-to-end time from submission to the *client* pulling the first
    /// result batch off the stream — the latency a caller actually feels,
    /// recorded client-side in `ResultStream`. Queries whose stream never
    /// delivered a batch (empty result, error before output) are absent.
    pub time_to_first_batch: LatencyHistogram,
    /// Worker threads currently executing a task step (gauge; filled by
    /// `Engine::stats()` from the pool, zero in bare counter snapshots).
    pub workers_busy: u64,
    /// Worker threads in the engine's fixed pool.
    pub workers_total: u64,
    /// Batch-pool buffer takes across every redistribution edge (process
    /// lifetime; pair with `batch_pool_misses` for the pool hit rate).
    pub batch_pool_takes: u64,
    /// Batch-pool takes that had to allocate because the pool was empty.
    pub batch_pool_misses: u64,
    /// Join output rows materialized by gather emission. Late
    /// materialization exists to shrink this: ref-carrying joins gather
    /// key+ref rows instead of full payloads.
    pub gather_rows: u64,
    /// Hot-path kernel calls dispatched to an explicit SIMD body (scalar
    /// fallbacks are not counted).
    pub simd_kernel_dispatches: u64,
    /// Prepared-statement plan-cache lookups served from the cache
    /// (process lifetime; pair with `plan_cache_misses` for the hit rate).
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that had to re-plan: cold entries, capacity
    /// evictions, and catalog-generation invalidations all land here.
    pub plan_cache_misses: u64,
    /// Plan-cache entries evicted (LRU capacity pressure or staleness
    /// replacement after a catalog mutation).
    pub plan_cache_evictions: u64,
}

impl EngineStats {
    /// Queries that reached a terminal state: completed, canceled, failed,
    /// timed out, stalled, or budget-aborted. Rejected submissions never
    /// ran and are not included. This is the `mj_queries_total` metric,
    /// and `query_duration.count` equals it exactly.
    pub fn queries_total(&self) -> u64 {
        self.queries_completed
            + self.queries_canceled
            + self.queries_failed
            + self.queries_timed_out
            + self.queries_stalled
            + self.budget_aborts
    }

    /// Batch-pool hit rate in `[0, 1]` (1.0 when no takes yet).
    pub fn batch_pool_hit_rate(&self) -> f64 {
        if self.batch_pool_takes == 0 {
            1.0
        } else {
            1.0 - self.batch_pool_misses as f64 / self.batch_pool_takes as f64
        }
    }
}

/// The type of an accept-listed metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value that can go up and down.
    Gauge,
    /// Fixed-bucket distribution ([`LatencyHistogram`]).
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn prometheus_type(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One entry of the metrics accept list: name, type, help text.
#[derive(Clone, Copy, Debug)]
pub struct MetricDef {
    /// Exported metric name (Prometheus conventions: `mj_` prefix,
    /// `_total` suffix on counters).
    pub name: &'static str,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// One-line help text (`# HELP`).
    pub help: &'static str,
}

/// The metrics accept list: **only** these series are exported, in this
/// order. New telemetry must be added here deliberately — nothing else
/// leaves the process, which is what keeps the export surface reviewable
/// (the accept-list registry pattern of production query engines).
pub const METRICS_ACCEPT_LIST: &[MetricDef] = &[
    MetricDef {
        name: "mj_queries_total",
        kind: MetricKind::Counter,
        help: "Queries that reached a terminal state (any outcome)",
    },
    MetricDef {
        name: "mj_queries_submitted_total",
        kind: MetricKind::Counter,
        help: "Queries ever submitted, including admission rejections",
    },
    MetricDef {
        name: "mj_queries_active",
        kind: MetricKind::Gauge,
        help: "Queries admitted and currently running",
    },
    MetricDef {
        name: "mj_queries_completed_total",
        kind: MetricKind::Counter,
        help: "Queries that completed successfully",
    },
    MetricDef {
        name: "mj_queries_canceled_total",
        kind: MetricKind::Counter,
        help: "Queries canceled by the client",
    },
    MetricDef {
        name: "mj_queries_failed_total",
        kind: MetricKind::Counter,
        help: "Queries that failed with an execution error",
    },
    MetricDef {
        name: "mj_queries_timed_out_total",
        kind: MetricKind::Counter,
        help: "Queries aborted past their deadline",
    },
    MetricDef {
        name: "mj_queries_stalled_total",
        kind: MetricKind::Counter,
        help: "Queries aborted by the stall watchdog",
    },
    MetricDef {
        name: "mj_budget_aborts_total",
        kind: MetricKind::Counter,
        help: "Queries aborted for exceeding their memory budget",
    },
    MetricDef {
        name: "mj_admission_rejected_total",
        kind: MetricKind::Counter,
        help: "Submissions rejected by admission control (Overloaded)",
    },
    MetricDef {
        name: "mj_query_duration_ms",
        kind: MetricKind::Histogram,
        help: "Per-query wall-clock duration, submission to terminal state",
    },
    MetricDef {
        name: "mj_time_to_first_batch_ms",
        kind: MetricKind::Histogram,
        help: "Submission to the client pulling the first result batch",
    },
    MetricDef {
        name: "mj_worker_busy",
        kind: MetricKind::Gauge,
        help: "Worker threads currently executing a task step",
    },
    MetricDef {
        name: "mj_worker_idle",
        kind: MetricKind::Gauge,
        help: "Worker threads not currently executing a task step",
    },
    MetricDef {
        name: "mj_batch_pool_hit_rate",
        kind: MetricKind::Gauge,
        help: "Fraction of batch-pool takes served without allocating",
    },
    MetricDef {
        name: "mj_batch_pool_takes_total",
        kind: MetricKind::Counter,
        help: "Batch-pool buffer takes (process lifetime)",
    },
    MetricDef {
        name: "mj_batch_pool_misses_total",
        kind: MetricKind::Counter,
        help: "Batch-pool takes that had to allocate",
    },
    MetricDef {
        name: "mj_gather_rows_total",
        kind: MetricKind::Counter,
        help: "Join output rows materialized by gather emission",
    },
    MetricDef {
        name: "mj_simd_kernel_dispatches_total",
        kind: MetricKind::Counter,
        help: "Hot-path kernel calls dispatched to a SIMD body",
    },
    MetricDef {
        name: "mj_plan_cache_hits_total",
        kind: MetricKind::Counter,
        help: "Prepared-statement plan-cache lookups served from cache",
    },
    MetricDef {
        name: "mj_plan_cache_misses_total",
        kind: MetricKind::Counter,
        help: "Plan-cache lookups that re-planned (cold, evicted, or stale)",
    },
    MetricDef {
        name: "mj_plan_cache_evictions_total",
        kind: MetricKind::Counter,
        help: "Plan-cache entries evicted (LRU capacity or staleness)",
    },
    MetricDef {
        name: "mj_panics_contained_total",
        kind: MetricKind::Counter,
        help: "Operator-task panics contained across all queries",
    },
    MetricDef {
        name: "mj_peak_bytes",
        kind: MetricKind::Gauge,
        help: "Largest per-query peak of budget-charged bytes",
    },
];

/// A rendered histogram in the metrics export: finite bucket bounds (ms),
/// per-bucket counts (one longer than the bounds — the last entry is the
/// overflow bucket; JSON has no `+Inf`), sum and count.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds in milliseconds.
    pub bounds_ms: Vec<u64>,
    /// Non-cumulative per-bucket counts; `counts.len() == bounds_ms.len()
    /// + 1`, the extra entry being the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observations in milliseconds.
    pub sum_ms: f64,
    /// Total observations.
    pub count: u64,
}

impl From<&LatencyHistogram> for HistogramSnapshot {
    fn from(h: &LatencyHistogram) -> Self {
        HistogramSnapshot {
            bounds_ms: LATENCY_BUCKET_BOUNDS_MS.to_vec(),
            counts: h.buckets.to_vec(),
            sum_ms: h.sum_ms(),
            count: h.count,
        }
    }
}

/// The accept-listed metrics export, built from one consistent
/// [`EngineStats`] snapshot by `Engine::metrics_snapshot()` /
/// `Database::metrics_snapshot()`. Serializes to JSON via serde; renders
/// Prometheus text via [`to_prometheus`](Self::to_prometheus). The field
/// set mirrors [`METRICS_ACCEPT_LIST`] exactly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `mj_queries_total`.
    pub queries_total: u64,
    /// `mj_queries_submitted_total`.
    pub queries_submitted: u64,
    /// `mj_queries_active`.
    pub queries_active: u64,
    /// `mj_queries_completed_total`.
    pub queries_completed: u64,
    /// `mj_queries_canceled_total`.
    pub queries_canceled: u64,
    /// `mj_queries_failed_total`.
    pub queries_failed: u64,
    /// `mj_queries_timed_out_total`.
    pub queries_timed_out: u64,
    /// `mj_queries_stalled_total`.
    pub queries_stalled: u64,
    /// `mj_budget_aborts_total`.
    pub budget_aborts: u64,
    /// `mj_admission_rejected_total`.
    pub admission_rejected: u64,
    /// `mj_query_duration_ms`.
    pub query_duration_ms: HistogramSnapshot,
    /// `mj_time_to_first_batch_ms`.
    pub time_to_first_batch_ms: HistogramSnapshot,
    /// `mj_worker_busy`.
    pub worker_busy: u64,
    /// `mj_worker_idle`.
    pub worker_idle: u64,
    /// `mj_batch_pool_hit_rate`.
    pub batch_pool_hit_rate: f64,
    /// `mj_batch_pool_takes_total`.
    pub batch_pool_takes: u64,
    /// `mj_batch_pool_misses_total`.
    pub batch_pool_misses: u64,
    /// `mj_gather_rows_total`.
    pub gather_rows: u64,
    /// `mj_simd_kernel_dispatches_total`.
    pub simd_kernel_dispatches: u64,
    /// `mj_plan_cache_hits_total`.
    pub plan_cache_hits: u64,
    /// `mj_plan_cache_misses_total`.
    pub plan_cache_misses: u64,
    /// `mj_plan_cache_evictions_total`.
    pub plan_cache_evictions: u64,
    /// `mj_panics_contained_total`.
    pub panics_contained: u64,
    /// `mj_peak_bytes`.
    pub peak_bytes: u64,
}

impl MetricsSnapshot {
    /// Builds the accept-listed export from one consistent stats snapshot.
    pub fn from_stats(stats: &EngineStats) -> Self {
        MetricsSnapshot {
            queries_total: stats.queries_total(),
            queries_submitted: stats.queries_submitted,
            queries_active: stats.queries_active,
            queries_completed: stats.queries_completed,
            queries_canceled: stats.queries_canceled,
            queries_failed: stats.queries_failed,
            queries_timed_out: stats.queries_timed_out,
            queries_stalled: stats.queries_stalled,
            budget_aborts: stats.budget_aborts,
            admission_rejected: stats.queries_rejected,
            query_duration_ms: HistogramSnapshot::from(&stats.query_duration),
            time_to_first_batch_ms: HistogramSnapshot::from(&stats.time_to_first_batch),
            worker_busy: stats.workers_busy,
            worker_idle: stats.workers_total.saturating_sub(stats.workers_busy),
            batch_pool_hit_rate: stats.batch_pool_hit_rate(),
            batch_pool_takes: stats.batch_pool_takes,
            batch_pool_misses: stats.batch_pool_misses,
            gather_rows: stats.gather_rows,
            simd_kernel_dispatches: stats.simd_kernel_dispatches,
            plan_cache_hits: stats.plan_cache_hits,
            plan_cache_misses: stats.plan_cache_misses,
            plan_cache_evictions: stats.plan_cache_evictions,
            panics_contained: stats.panics_contained,
            peak_bytes: stats.peak_bytes,
        }
    }

    /// The value of one scalar (counter/gauge) accept-list metric by
    /// exported name; `None` for histograms and unknown names.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        Some(match name {
            "mj_queries_total" => self.queries_total as f64,
            "mj_queries_submitted_total" => self.queries_submitted as f64,
            "mj_queries_active" => self.queries_active as f64,
            "mj_queries_completed_total" => self.queries_completed as f64,
            "mj_queries_canceled_total" => self.queries_canceled as f64,
            "mj_queries_failed_total" => self.queries_failed as f64,
            "mj_queries_timed_out_total" => self.queries_timed_out as f64,
            "mj_queries_stalled_total" => self.queries_stalled as f64,
            "mj_budget_aborts_total" => self.budget_aborts as f64,
            "mj_admission_rejected_total" => self.admission_rejected as f64,
            "mj_worker_busy" => self.worker_busy as f64,
            "mj_worker_idle" => self.worker_idle as f64,
            "mj_batch_pool_hit_rate" => self.batch_pool_hit_rate,
            "mj_batch_pool_takes_total" => self.batch_pool_takes as f64,
            "mj_batch_pool_misses_total" => self.batch_pool_misses as f64,
            "mj_gather_rows_total" => self.gather_rows as f64,
            "mj_simd_kernel_dispatches_total" => self.simd_kernel_dispatches as f64,
            "mj_plan_cache_hits_total" => self.plan_cache_hits as f64,
            "mj_plan_cache_misses_total" => self.plan_cache_misses as f64,
            "mj_plan_cache_evictions_total" => self.plan_cache_evictions as f64,
            "mj_panics_contained_total" => self.panics_contained as f64,
            "mj_peak_bytes" => self.peak_bytes as f64,
            _ => return None,
        })
    }

    /// The histogram behind an accept-list histogram metric name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match name {
            "mj_query_duration_ms" => Some(&self.query_duration_ms),
            "mj_time_to_first_batch_ms" => Some(&self.time_to_first_batch_ms),
            _ => None,
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// `# HELP` / `# TYPE` per series, cumulative `_bucket{le=...}` lines
    /// (including `+Inf`) plus `_sum` / `_count` for histograms.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for def in METRICS_ACCEPT_LIST {
            out.push_str(&format!("# HELP {} {}\n", def.name, def.help));
            out.push_str(&format!(
                "# TYPE {} {}\n",
                def.name,
                def.kind.prometheus_type()
            ));
            match def.kind {
                MetricKind::Counter | MetricKind::Gauge => {
                    let v = self
                        .scalar(def.name)
                        .expect("accept-list scalar metric must resolve");
                    out.push_str(&format!("{} {}\n", def.name, fmt_value(v)));
                }
                MetricKind::Histogram => {
                    let h = self
                        .histogram(def.name)
                        .expect("accept-list histogram metric must resolve");
                    let mut cum = 0u64;
                    for (i, bound) in h.bounds_ms.iter().enumerate() {
                        cum += h.counts[i];
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{}\"}} {}\n",
                            def.name, bound, cum
                        ));
                    }
                    cum += h.counts.last().copied().unwrap_or(0);
                    out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", def.name, cum));
                    out.push_str(&format!("{}_sum {}\n", def.name, fmt_value(h.sum_ms)));
                    out.push_str(&format!("{}_count {}\n", def.name, h.count));
                }
            }
        }
        out
    }
}

/// Prometheus sample formatting: integral values render without a
/// fractional part, everything else as plain decimal.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

pub(crate) mod counters {
    //! Consistent backing store for [`EngineStats`](super::EngineStats).
    //!
    //! One mutex guards every per-query-grain counter, so `snapshot()`
    //! returns an atomically consistent view (the invariant the stats
    //! hammer test checks). Updates happen once per query lifecycle event
    //! — submission, rejection, first batch, terminal record — so the lock
    //! is uncontended relative to tuple work; per-tuple tallies (batch
    //! pool, SIMD dispatches) remain process-global relaxed atomics and
    //! are folded in at snapshot time.

    use super::{EngineStats, LatencyHistogram};
    use crate::handle::QueryOutcome;
    use mj_relalg::{RelalgError, Result};
    use std::sync::{Mutex, PoisonError};
    use std::time::Duration;

    /// The mutex-guarded counter cells.
    #[derive(Debug, Default)]
    struct Cells {
        submitted: u64,
        active: u64,
        completed: u64,
        canceled: u64,
        failed: u64,
        rejected: u64,
        timed_out: u64,
        stalled: u64,
        budget_aborts: u64,
        panics_contained: u64,
        peak_bytes: u64,
        query_duration: LatencyHistogram,
        time_to_first_batch: LatencyHistogram,
    }

    /// Shared counters owned by the engine; the submission path and the
    /// per-query coordinator threads record into them.
    #[derive(Debug, Default)]
    pub struct EngineCounters {
        cells: Mutex<Cells>,
    }

    impl EngineCounters {
        fn lock(&self) -> std::sync::MutexGuard<'_, Cells> {
            self.cells.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Counts one submission attempt (before admission control, so
        /// rejected submissions are included in `queries_submitted`).
        pub fn note_submitted(&self) {
            self.lock().submitted += 1;
        }

        /// Counts one admission rejection (`Overloaded`).
        pub fn note_rejected(&self) {
            self.lock().rejected += 1;
        }

        /// Counts one admitted query entering execution (raises the
        /// `queries_active` gauge; `record` lowers it).
        pub fn note_started(&self) {
            self.lock().active += 1;
        }

        /// Records the client pulling the first result batch `ttfb` after
        /// submission.
        pub fn note_first_batch(&self, ttfb: Duration) {
            self.lock().time_to_first_batch.observe(ttfb);
        }

        /// Classifies one finished query's result into the counters and
        /// observes its wall-clock duration.
        pub fn record(
            &self,
            result: &Result<QueryOutcome>,
            panics: u64,
            peak: u64,
            took: Duration,
        ) {
            let mut c = self.lock();
            c.active = c.active.saturating_sub(1);
            c.panics_contained += panics;
            c.peak_bytes = c.peak_bytes.max(peak);
            c.query_duration.observe(took);
            match result {
                Ok(_) => c.completed += 1,
                Err(RelalgError::Canceled) => c.canceled += 1,
                Err(RelalgError::DeadlineExceeded) => c.timed_out += 1,
                Err(RelalgError::Stalled(_)) => c.stalled += 1,
                Err(RelalgError::ResourceExhausted { .. }) => c.budget_aborts += 1,
                Err(_) => c.failed += 1,
            }
        }

        /// One atomically consistent snapshot: every per-query counter is
        /// read under the same lock acquisition.
        pub fn snapshot(&self) -> EngineStats {
            let c = self.lock();
            EngineStats {
                queries_submitted: c.submitted,
                queries_active: c.active,
                queries_completed: c.completed,
                queries_canceled: c.canceled,
                queries_failed: c.failed,
                queries_rejected: c.rejected,
                queries_timed_out: c.timed_out,
                queries_stalled: c.stalled,
                budget_aborts: c.budget_aborts,
                panics_contained: c.panics_contained,
                peak_bytes: c.peak_bytes,
                query_duration: c.query_duration,
                time_to_first_batch: c.time_to_first_batch,
                // The engine overlays live pool gauges; a bare counter
                // snapshot has no pool to ask.
                workers_busy: 0,
                workers_total: 0,
                batch_pool_takes: crate::stream::pool_takes(),
                batch_pool_misses: crate::stream::pool_misses(),
                gather_rows: mj_join::gather_rows(),
                simd_kernel_dispatches: mj_relalg::simd::kernel_dispatches(),
                plan_cache_hits: crate::session::plan_cache_hits(),
                plan_cache_misses: crate::session::plan_cache_misses(),
                plan_cache_evictions: crate::session::plan_cache_evictions(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_helpers() {
        let mut m = Metrics::new(2);
        m.ops[0].tuples_out = 5;
        m.ops[1].tuples_out = 7;
        assert_eq!(m.total_tuples_out(), 12);
        assert_eq!(m.ops.len(), 2);
    }

    #[test]
    fn q_error_is_symmetric_and_handles_zero() {
        let mut o = OpMetrics {
            est_out: 100,
            tuples_out: 50,
            ..OpMetrics::default()
        };
        assert_eq!(o.q_error(), 2.0);
        o.est_out = 25;
        assert_eq!(o.q_error(), 2.0);
        o.est_out = 0;
        assert_eq!(o.q_error(), f64::INFINITY);
        o.tuples_out = 0;
        assert_eq!(o.q_error(), 1.0);
    }

    #[test]
    fn cardinality_report_pairs_est_and_actual() {
        let mut m = Metrics::new(2);
        m.ops[0].est_out = 10;
        m.ops[0].tuples_out = 12;
        m.ops[1].est_out = 5;
        m.ops[1].tuples_out = 5;
        assert_eq!(m.cardinality_report(), vec![(0, 10, 12), (1, 5, 5)]);
        assert!((m.max_q_error() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let mut h = LatencyHistogram::default();
        h.observe(Duration::from_micros(300)); // <= 1ms bucket
        h.observe(Duration::from_millis(1)); // <= 1ms bucket
        h.observe(Duration::from_millis(3)); // <= 5ms bucket
        h.observe(Duration::from_millis(600)); // <= 1000ms bucket
        h.observe(Duration::from_secs(60)); // overflow
        assert_eq!(h.count, 5);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[LATENCY_BUCKETS - 1], 1);
        assert!((h.sum_ms() - (0.3 + 1.0 + 3.0 + 600.0 + 60_000.0)).abs() < 1e-6);
    }

    #[test]
    fn prometheus_rendering_covers_the_accept_list() {
        let mut stats = EngineStats {
            queries_submitted: 7,
            queries_completed: 5,
            queries_rejected: 2,
            workers_total: 4,
            workers_busy: 1,
            ..EngineStats::default()
        };
        stats.query_duration.observe(Duration::from_millis(4));
        let snap = MetricsSnapshot::from_stats(&stats);
        let text = snap.to_prometheus();
        for def in METRICS_ACCEPT_LIST {
            assert!(
                text.contains(&format!("# TYPE {} ", def.name)),
                "missing TYPE line for {}",
                def.name
            );
        }
        assert!(text.contains("mj_queries_completed_total 5"));
        assert!(text.contains("mj_worker_idle 3"));
        assert!(text.contains("mj_query_duration_ms_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("mj_query_duration_ms_count 1"));
        // Cumulative le buckets are monotone.
        let cum: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("mj_query_duration_ms_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut stats = EngineStats {
            queries_submitted: 3,
            queries_completed: 3,
            ..EngineStats::default()
        };
        stats.query_duration.observe(Duration::from_millis(12));
        let snap = MetricsSnapshot::from_stats(&stats);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.queries_total, 3);
        assert_eq!(back.query_duration_ms.count, 1);
        assert_eq!(back.query_duration_ms.counts, snap.query_duration_ms.counts);
    }
}
