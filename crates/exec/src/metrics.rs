//! Execution metrics, aggregated across operation processes.

use serde::{Deserialize, Serialize};

/// Per-operation aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpMetrics {
    /// Operation processes spawned (= plan degree).
    pub instances: usize,
    /// Tuples consumed on the (left, right) operand across instances.
    pub tuples_in: [u64; 2],
    /// Result tuples produced across instances.
    pub tuples_out: u64,
    /// Peak hash-table bytes summed across instances.
    pub table_bytes: u64,
}

/// Whole-query metrics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Indexed by op id.
    pub ops: Vec<OpMetrics>,
    /// Total operation processes spawned — the startup driver (§3.5).
    pub processes: usize,
    /// Total point-to-point streams opened — the coordination driver.
    pub streams: usize,
    /// Scheduler steps taken by this query's tasks on the worker pool.
    pub sched_steps: u64,
    /// Steps that could not progress (channel empty/full) and yielded the
    /// worker instead of parking a thread.
    pub sched_blocked: u64,
}

impl Metrics {
    /// Creates zeroed metrics for `ops` operations.
    pub fn new(ops: usize) -> Self {
        Metrics {
            ops: vec![OpMetrics::default(); ops],
            processes: 0,
            streams: 0,
            sched_steps: 0,
            sched_blocked: 0,
        }
    }

    /// Total tuples produced by all ops.
    pub fn total_tuples_out(&self) -> u64 {
        self.ops.iter().map(|o| o.tuples_out).sum()
    }
}

/// What one instance reports back on completion.
#[derive(Clone, Copy, Debug, Default)]
pub struct InstanceStats {
    /// Tuples consumed per side.
    pub tuples_in: [u64; 2],
    /// Result tuples produced.
    pub tuples_out: u64,
    /// Peak hash-table bytes of this instance.
    pub table_bytes: u64,
    /// Scheduler steps this instance ran for.
    pub steps: u64,
    /// Steps that ended blocked (yielded the worker without progress).
    pub blocked: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_helpers() {
        let mut m = Metrics::new(2);
        m.ops[0].tuples_out = 5;
        m.ops[1].tuples_out = 7;
        assert_eq!(m.total_tuples_out(), 12);
        assert_eq!(m.ops.len(), 2);
    }
}
