//! Engine configuration.

use std::time::Duration;

/// A deterministic fault-injection point: the chosen operation-process
/// instance fails at startup instead of running. Used to test that the
/// engine tears a running dataflow down cleanly — producers into dead
/// consumers error out instead of blocking, downstream operations are
/// never spawned, and the first error is reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailPoint {
    /// Plan op id whose instance fails.
    pub op: usize,
    /// Instance index within the op (0-based).
    pub instance: usize,
}

/// Default tuples per channel message. The single source of truth for
/// batching — the engine, benches, and tests all read it from here.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Default channel capacity in batches (bounds per-edge memory and
/// provides backpressure).
pub const DEFAULT_CHANNEL_CAPACITY: usize = 16;

/// Default worker threads in the shared scheduler pool — the paper's
/// "fixed pool of processors" (§4) that all operation processes of all
/// in-flight queries are multiplexed onto.
pub const DEFAULT_WORKERS: usize = 4;

/// Tunables of the threaded engine.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Worker threads in the shared scheduler pool. This bounds *physical*
    /// parallelism for every query run through one engine; a plan's
    /// `processors` stays a purely logical placement. More concurrent
    /// queries never spawn more threads.
    pub workers: usize,
    /// Tuples per channel message (amortizes channel overhead).
    pub batch_size: usize,
    /// Channel capacity in *batches*; bounds memory and provides the
    /// backpressure a real pipeline has.
    pub channel_capacity: usize,
    /// Optional artificial per-operation-process startup cost, for
    /// demonstrating the paper's startup trade-off on hardware where real
    /// initialization is too cheap to observe.
    pub startup_cost: Option<Duration>,
    /// Optional fault injection (tests only).
    pub fail: Option<FailPoint>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            workers: DEFAULT_WORKERS,
            batch_size: DEFAULT_BATCH_SIZE,
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            startup_cost: None,
            fail: None,
        }
    }
}

impl ExecConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.channel_capacity == 0 {
            return Err("channel_capacity must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = ExecConfig::default();
        c.validate().unwrap();
        assert_eq!(c.batch_size, DEFAULT_BATCH_SIZE);
        assert_eq!(c.channel_capacity, DEFAULT_CHANNEL_CAPACITY);
    }

    #[test]
    fn rejects_zero_sizes() {
        let c = ExecConfig {
            batch_size: 0,
            ..ExecConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ExecConfig {
            channel_capacity: 0,
            ..ExecConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ExecConfig {
            workers: 0,
            ..ExecConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
