//! Engine configuration.

use std::time::Duration;

/// A deterministic fault-injection point: the chosen operation-process
/// instance fails at startup instead of running. Used to test that the
/// engine tears a running dataflow down cleanly — producers into dead
/// consumers error out instead of blocking, downstream operations are
/// never spawned, and the first error is reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailPoint {
    /// Plan op id whose instance fails.
    pub op: usize,
    /// Instance index within the op (0-based).
    pub instance: usize,
}

/// Tunables of the threaded engine.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Tuples per channel message (amortizes channel overhead).
    pub batch_size: usize,
    /// Channel capacity in *batches*; bounds memory and provides the
    /// backpressure a real pipeline has.
    pub channel_capacity: usize,
    /// Optional artificial per-operation-process startup cost, for
    /// demonstrating the paper's startup trade-off on hardware where real
    /// initialization is too cheap to observe.
    pub startup_cost: Option<Duration>,
    /// Optional fault injection (tests only).
    pub fail: Option<FailPoint>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { batch_size: 256, channel_capacity: 16, startup_cost: None, fail: None }
    }
}

impl ExecConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.channel_capacity == 0 {
            return Err("channel_capacity must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ExecConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_zero_sizes() {
        let mut c = ExecConfig::default();
        c.batch_size = 0;
        assert!(c.validate().is_err());
        let mut c = ExecConfig::default();
        c.channel_capacity = 0;
        assert!(c.validate().is_err());
    }
}
