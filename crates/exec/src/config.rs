//! Engine configuration.

use std::time::Duration;

/// A deterministic fault-injection point: the chosen operation-process
/// instance fails at startup instead of running. Used to test that the
/// engine tears a running dataflow down cleanly — producers into dead
/// consumers error out instead of blocking, downstream operations are
/// never spawned, and the first error is reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailPoint {
    /// Plan op id whose instance fails.
    pub op: usize,
    /// Instance index within the op (0-based).
    pub instance: usize,
}

/// Default tuples per channel message. The single source of truth for
/// batching — the engine, benches, and tests all read it from here.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Default channel capacity in batches (bounds per-edge memory and
/// provides backpressure).
pub const DEFAULT_CHANNEL_CAPACITY: usize = 16;

/// Default worker threads in the shared scheduler pool — the paper's
/// "fixed pool of processors" (§4) that all operation processes of all
/// in-flight queries are multiplexed onto.
pub const DEFAULT_WORKERS: usize = 4;

/// When a query runs with late materialization: base payload columns are
/// replaced by one packed row-reference column per leaf, joins move only
/// join keys plus refs, and the full-width rows are gathered once at the
/// pipeline root (see the `late` module).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LateMode {
    /// Use late materialization when it is estimated to pay: the plan has
    /// at least two joins and the narrowed root row is at most 80% the
    /// width of the original root row. The default.
    #[default]
    Auto,
    /// Always rewrite eligible plans (at least one payload column to
    /// strip), regardless of estimated benefit. Differential tests use
    /// this to force ref-carrying pipelines.
    Always,
    /// Never rewrite: every join materializes its full output eagerly.
    Never,
}

/// Tunables of the threaded engine.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Worker threads in the shared scheduler pool. This bounds *physical*
    /// parallelism for every query run through one engine; a plan's
    /// `processors` stays a purely logical placement. More concurrent
    /// queries never spawn more threads.
    pub workers: usize,
    /// Tuples per channel message (amortizes channel overhead).
    pub batch_size: usize,
    /// Channel capacity in *batches*; bounds memory and provides the
    /// backpressure a real pipeline has.
    pub channel_capacity: usize,
    /// Optional artificial per-operation-process startup cost, for
    /// demonstrating the paper's startup trade-off on hardware where real
    /// initialization is too cheap to observe.
    pub startup_cost: Option<Duration>,
    /// Optional fault injection (tests only).
    pub fail: Option<FailPoint>,
    /// Default wall-clock deadline for every query; `None` means no limit.
    /// Overridable per query via [`QueryOptions::with_deadline`]. Exceeding
    /// it aborts the query with a typed `DeadlineExceeded` error through
    /// the normal cancel/quiesce path.
    pub deadline: Option<Duration>,
    /// Stall window for the coordinator watchdog: if no operator task of a
    /// query makes progress for this long, the query is aborted with a
    /// typed `Stalled` error carrying a per-op progress dump. `None`
    /// disables stall detection. Note that a query whose client stops
    /// draining its result stream is indistinguishable from a stalled
    /// pipeline, so only enable this for promptly-drained workloads.
    pub stall_timeout: Option<Duration>,
    /// Default per-query memory budget in bytes (hash-build state, pooled
    /// batch buffers and materialized fragments all charge against it);
    /// `None` means unlimited. Overridable per query via
    /// [`QueryOptions::with_memory_budget`]. Exceeding it aborts that query
    /// with a typed `ResourceExhausted` error.
    pub memory_budget: Option<u64>,
    /// Admission control: maximum queries running concurrently; `None`
    /// disables admission control entirely.
    pub max_concurrent: Option<usize>,
    /// Bounded FIFO wait queue in front of admission control: submissions
    /// beyond `max_concurrent` wait here (in order) for a slot, and
    /// submissions beyond the queue bound are rejected with a typed
    /// `Overloaded` error. Ignored unless `max_concurrent` is set.
    pub admission_queue: usize,
    /// Late-materialization policy for join pipelines (see [`LateMode`]).
    pub late: LateMode,
}

/// Default [`ExecConfig::admission_queue`] depth.
pub const DEFAULT_ADMISSION_QUEUE: usize = 32;

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            workers: DEFAULT_WORKERS,
            batch_size: DEFAULT_BATCH_SIZE,
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            startup_cost: None,
            fail: None,
            deadline: None,
            stall_timeout: None,
            memory_budget: None,
            max_concurrent: None,
            admission_queue: DEFAULT_ADMISSION_QUEUE,
            late: LateMode::Auto,
        }
    }
}

impl ExecConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.channel_capacity == 0 {
            return Err("channel_capacity must be positive".into());
        }
        if self.deadline == Some(Duration::ZERO) {
            return Err("deadline must be positive".into());
        }
        if self.stall_timeout == Some(Duration::ZERO) {
            return Err("stall_timeout must be positive".into());
        }
        if self.memory_budget == Some(0) {
            return Err("memory_budget must be positive".into());
        }
        if self.max_concurrent == Some(0) {
            return Err("max_concurrent must be positive".into());
        }
        Ok(())
    }
}

/// Per-query overrides for the guardrail layer, passed to
/// `Engine::submit_with` / `Database::query_with`. The default carries no
/// overrides (engine-level [`ExecConfig`] defaults apply).
#[derive(Clone, Debug, Default)]
pub struct QueryOptions {
    pub(crate) deadline: Option<Duration>,
    pub(crate) memory_budget: Option<u64>,
    #[cfg(feature = "faults")]
    pub(crate) faults: Option<crate::faults::FaultPlan>,
}

impl QueryOptions {
    /// Options with no overrides.
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Caps this query's wall-clock runtime at `deadline`, overriding
    /// [`ExecConfig::deadline`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps this query's memory at `bytes`, overriding
    /// [`ExecConfig::memory_budget`].
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// This query's deadline override, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// This query's memory-budget override, if any.
    pub fn memory_budget(&self) -> Option<u64> {
        self.memory_budget
    }

    /// Attaches a deterministic fault-injection plan (test harness; only
    /// available with the `faults` cargo feature).
    #[cfg(feature = "faults")]
    pub fn with_faults(mut self, plan: crate::faults::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The attached fault plan, if any.
    #[cfg(feature = "faults")]
    pub(crate) fn fault_plan(&self) -> Option<&crate::faults::FaultPlan> {
        self.faults.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = ExecConfig::default();
        c.validate().unwrap();
        assert_eq!(c.batch_size, DEFAULT_BATCH_SIZE);
        assert_eq!(c.channel_capacity, DEFAULT_CHANNEL_CAPACITY);
    }

    #[test]
    fn rejects_zero_sizes() {
        let c = ExecConfig {
            batch_size: 0,
            ..ExecConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ExecConfig {
            channel_capacity: 0,
            ..ExecConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ExecConfig {
            workers: 0,
            ..ExecConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_degenerate_guardrails() {
        for c in [
            ExecConfig {
                deadline: Some(Duration::ZERO),
                ..ExecConfig::default()
            },
            ExecConfig {
                stall_timeout: Some(Duration::ZERO),
                ..ExecConfig::default()
            },
            ExecConfig {
                memory_budget: Some(0),
                ..ExecConfig::default()
            },
            ExecConfig {
                max_concurrent: Some(0),
                ..ExecConfig::default()
            },
        ] {
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        }
        let c = ExecConfig {
            deadline: Some(Duration::from_secs(1)),
            stall_timeout: Some(Duration::from_millis(100)),
            memory_budget: Some(1 << 20),
            max_concurrent: Some(2),
            admission_queue: 0, // queue-less admission is valid (pure reject)
            ..ExecConfig::default()
        };
        c.validate().unwrap();
    }

    #[test]
    fn query_options_builder() {
        let o = QueryOptions::new();
        assert_eq!(o.deadline(), None);
        assert_eq!(o.memory_budget(), None);
        let o = QueryOptions::new()
            .with_deadline(Duration::from_secs(2))
            .with_memory_budget(4096);
        assert_eq!(o.deadline(), Some(Duration::from_secs(2)));
        assert_eq!(o.memory_budget(), Some(4096));
    }
}
