//! The end-to-end cost-based planner: [`JoinQuery`] → join tree →
//! strategy + processor allocation → executable [`ParallelPlan`] +
//! [`QueryBinding`].
//!
//! This is the piece the paper leaves to "the optimizer" and the repo
//! previously left to the *user*: `mj run` took `--shape` and
//! `--strategy` flags, and the phase-1 optimizers produced trees nobody
//! lowered. The planner wires the whole pipeline:
//!
//! 1. **Tree** (phase 1): exhaustive bushy DP up to
//!    [`MAX_DP_RELATIONS`] relations,
//!    greedy above — minimal *total* cost, parallelism-blind (§1.2).
//! 2. **Strategy + allocation** (phase 2): generate an SP/SE/RD/FP plan
//!    for the tree *and* its free right-oriented mirror (§5), each with
//!    proportional processor allocation, and cost every candidate with the
//!    analytic schedule model ([`mj_core::schedule`]). Cheapest wins.
//! 3. **Lowering**: the winner's tree is lowered to per-join [`EquiJoin`]
//!    specs and derived schemas ([`mj_plan::query::lower`]) and bound into
//!    a [`QueryBinding`] the engine executes directly.
//!
//! Estimated per-op cardinalities travel through the plan into
//! [`Metrics`](crate::metrics::Metrics), so every run reports
//! estimated-vs-actual plan quality.
//!
//! [`EquiJoin`]: mj_relalg::EquiJoin

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use mj_core::schedule::{estimate_schedule, stage_tail_cost, ScheduleEstimate, ScheduleModel};
use mj_core::{generate, GeneratorInput, ParallelPlan, PlanStats, Strategy};
use mj_plan::cost::{tree_costs, CostModel};
use mj_plan::optimize::{greedy_tree, optimize_bushy, MAX_DP_RELATIONS};
use mj_plan::query::{
    inject_scan_filters, lower, JoinQuery, LoweredQuery, SelectItemSpec, SelectSpec,
};
use mj_plan::transform::right_orient;
use mj_plan::tree::JoinTree;
use mj_relalg::ops::AggSpec;
use mj_relalg::{
    Attribute, DataType, JoinAlgorithm, Predicate, Projection, RelalgError, RelationProvider,
    Result, Schema, XraNode,
};
use mj_storage::Catalog;

use crate::binding::{PipelineStage, QueryBinding, StageKind};

/// Planner knobs. [`PlannerOptions::new`] gives the defaults: all four
/// strategies considered, right-orientation tried, oversubscription
/// allowed when the machine is smaller than the plan.
#[derive(Clone, Copy, Debug)]
pub struct PlannerOptions {
    /// Logical processors the plan may use.
    pub processors: usize,
    /// Phase-1 / work cost model (§4.3 coefficients).
    pub cost_model: CostModel,
    /// Schedule model for phase-2 candidate costing.
    pub schedule_model: ScheduleModel,
    /// Forces a single strategy instead of costing all four — the manual
    /// `--strategy` override with planner-chosen tree and allocation.
    pub strategy: Option<Strategy>,
    /// Also cost each strategy on the right-oriented mirror of the
    /// phase-1 tree ("possible without cost penalty", §5).
    pub try_right_orient: bool,
    /// Permit concurrent operations to share processors when `processors`
    /// is smaller than a strategy needs (otherwise such candidates are
    /// simply skipped as infeasible).
    pub allow_oversubscribe: bool,
    /// Push single-relation WHERE predicates below the joins: filters run
    /// against base relations at scan time (zero-copy gather) and their
    /// selectivities fold into every cardinality estimate and schedule
    /// cost. Off, filters run as a residual pipeline stage above the root
    /// join — the benchmark baseline pushdown is measured against.
    pub pushdown: bool,
}

impl PlannerOptions {
    /// Default options for a machine of `processors` logical processors.
    pub fn new(processors: usize) -> Self {
        PlannerOptions {
            processors,
            cost_model: CostModel::default(),
            schedule_model: ScheduleModel::default(),
            strategy: None,
            try_right_orient: true,
            allow_oversubscribe: true,
            pushdown: true,
        }
    }
}

/// One costed (strategy, tree-variant) candidate.
#[derive(Clone, Debug)]
pub struct PlanChoice {
    /// The strategy of this candidate.
    pub strategy: Strategy,
    /// True if the candidate runs on the right-oriented mirror.
    pub right_oriented: bool,
    /// Estimated schedule (the planner's objective is `.makespan`).
    pub estimate: ScheduleEstimate,
    /// Startup/coordination drivers of the candidate plan.
    pub stats: PlanStats,
    /// True if concurrent ops share processors in this candidate.
    pub oversubscribed: bool,
}

/// The planner's output: an executable plan plus everything needed to run,
/// verify, and explain it.
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    /// The chosen join tree (possibly the right-oriented mirror).
    pub tree: JoinTree,
    /// The winning parallel plan, fully allocated.
    pub plan: ParallelPlan,
    /// Join specs and schemas, ready for the engine.
    pub binding: QueryBinding,
    /// The generalized lowering (per-node schemas, specs, estimates) —
    /// `lowered.to_xra(&tree, ..)` is the sequential oracle.
    pub lowered: LoweredQuery,
    /// The winner's schedule estimate.
    pub estimate: ScheduleEstimate,
    /// Every costed candidate, cheapest first (winner is `choices[0]`).
    pub choices: Vec<PlanChoice>,
    /// Candidates that could not be planned, with the reason.
    pub infeasible: Vec<(Strategy, bool, String)>,
}

impl PlannedQuery {
    /// The winning strategy.
    pub fn strategy(&self) -> Strategy {
        self.plan.strategy
    }

    /// Rebuilds the planned query with every `?N` placeholder in its
    /// predicates bound to the corresponding literal from `args`
    /// (1-based: `?1` reads `args[0]`) — the execute-time half of a
    /// prepared statement. Only the binding's predicates are rewritten
    /// ([`QueryBinding::bind_params`]); the join tree, parallel plan,
    /// allocation, and cost estimates are reused untouched, which is the
    /// whole point: literal *values* never influenced them (selectivity
    /// estimation is value-independent for literal comparisons), so
    /// substituting params cannot invalidate the plan.
    pub fn bind_params(&self, args: &[i64]) -> Result<PlannedQuery> {
        Ok(PlannedQuery {
            binding: self.binding.bind_params(args)?,
            ..self.clone()
        })
    }

    /// Human-readable comparison of every costed alternative — what
    /// `mj plan` prints.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>14} {:>12} {:>10} {:>10}\n",
            "candidate", "est cost", "startup", "streams", "processes"
        ));
        for (i, c) in self.choices.iter().enumerate() {
            out.push_str(&format!(
                "{:<10} {:>14.0} {:>12.0} {:>10} {:>10}  {}\n",
                format!(
                    "{}{}",
                    c.strategy,
                    if c.right_oriented { "+mirror" } else { "" }
                ),
                c.estimate.makespan,
                c.estimate.startup,
                c.stats.tuple_streams,
                c.stats.operation_processes,
                if i == 0 { "<- chosen" } else { "" },
            ));
        }
        for (s, mirrored, why) in &self.infeasible {
            out.push_str(&format!(
                "{:<10} infeasible: {why}\n",
                format!("{s}{}", if *mirrored { "+mirror" } else { "" })
            ));
        }
        let filters = self.binding.scan_filters();
        if !filters.is_empty() {
            let mut names: Vec<&String> = filters.keys().collect();
            names.sort();
            out.push_str("pushed scan filters:\n");
            for name in names {
                out.push_str(&format!("  σ {name}: {}\n", filters[name]));
            }
        }
        if !self.binding.stages().is_empty() {
            out.push_str("post-join pipeline:\n");
            for stage in self.binding.stages() {
                out.push_str(&format!(
                    "  -> {} [x{}] est {} rows (~{} B columnar)\n",
                    stage.label,
                    stage.degree,
                    stage.est_out,
                    stage.est_bytes()
                ));
            }
        }
        out
    }

    /// The sequential oracle for this plan: the lowered join tree with the
    /// pushed scan filters injected beneath the scans and the pipeline
    /// stages (residual filter, aggregation, final projection) replayed on
    /// top. A LIMIT stage is *not* represented — the oracle returns the
    /// full result, and limit tests check the subset/count properties
    /// instead (which k rows survive is nondeterministic).
    pub fn oracle_xra(&self, algorithm: JoinAlgorithm) -> Result<XraNode> {
        let mut node = self.lowered.to_xra(&self.tree, algorithm)?;
        node = inject_scan_filters(node, self.binding.scan_filters());
        for stage in self.binding.stages() {
            node = match &stage.kind {
                StageKind::Filter {
                    predicate,
                    projection,
                } => {
                    let selected = XraNode::Select {
                        input: Box::new(node),
                        predicate: predicate.clone(),
                    };
                    match projection {
                        Some(p) => XraNode::Project {
                            input: Box::new(selected),
                            projection: p.clone(),
                        },
                        None => selected,
                    }
                }
                StageKind::Aggregate {
                    group,
                    aggs,
                    projection,
                } => {
                    let agg = XraNode::Aggregate {
                        input: Box::new(node),
                        group: group.clone(),
                        aggs: aggs.clone(),
                    };
                    match projection {
                        Some(p) => XraNode::Project {
                            input: Box::new(agg),
                            projection: p.clone(),
                        },
                        None => agg,
                    }
                }
                StageKind::Limit { .. } => node,
            };
        }
        Ok(node)
    }

    /// True if this plan contains a LIMIT stage (whose row cap the oracle
    /// from [`oracle_xra`](Self::oracle_xra) does not apply).
    pub fn has_limit(&self) -> bool {
        self.binding
            .stages()
            .iter()
            .any(|s| matches!(s.kind, StageKind::Limit { .. }))
    }
}

impl fmt::Display for PlannedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

/// The cost-based planner. Stateless apart from its options; cheap to
/// build per query.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    options: PlannerOptions,
}

impl Planner {
    /// Creates a planner.
    pub fn new(options: PlannerOptions) -> Self {
        Planner { options }
    }

    /// The planner's options.
    pub fn options(&self) -> &PlannerOptions {
        &self.options
    }

    /// Plans `query` end to end: phase-1 tree, phase-2 strategy and
    /// processor allocation by cheapest estimated schedule, generalized
    /// lowering, binding. Keeps every column of every relation in
    /// tree-independent `(relation, column)` order.
    pub fn plan(&self, query: &JoinQuery) -> Result<PlannedQuery> {
        self.plan_with_output(query, None)
    }

    /// [`plan`](Self::plan) with an explicit output column list: the final
    /// result contains exactly the `(relation, column)` pairs of `output`,
    /// in order (a plain-column `SELECT` list). `None` keeps every column.
    pub fn plan_with_output(
        &self,
        query: &JoinQuery,
        output: Option<&[(usize, usize)]>,
    ) -> Result<PlannedQuery> {
        let spec = SelectSpec::columns(match output {
            Some(cols) => cols.to_vec(),
            None => query.all_columns(),
        });
        self.plan_select(query, &spec)
    }

    /// The full planning entry point: joins from `query` (with any
    /// attached WHERE filters), projection/grouping/aggregation/limit from
    /// `spec`. With [`PlannerOptions::pushdown`] on (the default), filters
    /// become scan predicates and their selectivities fold into every
    /// phase-1 estimate and schedule cost; off, they run as a residual
    /// pipeline stage above the root join. Aggregation runs partitioned
    /// across the root's processors (hash on the first integer grouping
    /// column), and a LIMIT becomes the degree-1 early-terminating stage.
    pub fn plan_select(&self, query: &JoinQuery, spec: &SelectSpec) -> Result<PlannedQuery> {
        if self.options.processors == 0 {
            return Err(RelalgError::InvalidPlan(
                "planner needs at least 1 processor".into(),
            ));
        }
        if query.len() < 2 {
            return Err(RelalgError::InvalidPlan(
                "planner needs at least 2 relations".into(),
            ));
        }
        spec.validate(query)?;
        let pushdown = self.options.pushdown && !query.filters().is_empty();
        let residual = !pushdown && !query.filters().is_empty();
        // With pushdown, every estimate downstream — phase-1 tree choice,
        // System-R intermediates, schedule costs — sees the post-selection
        // cardinalities.
        let effective;
        let planning_query: &JoinQuery = if pushdown {
            effective = query.with_filtered_cards();
            &effective
        } else {
            query
        };

        // The columns the root join must output: the SELECT columns
        // directly when nothing runs above the root, otherwise the ordered
        // dedup of everything the pipeline stages consume (group columns,
        // aggregate inputs, residual-filter carriers).
        let select_cols: Vec<(usize, usize)> = spec
            .items
            .iter()
            .filter_map(|i| match i {
                SelectItemSpec::Column(r, c) => Some((*r, *c)),
                SelectItemSpec::Aggregate { .. } => None,
            })
            .collect();
        let filter_cols: Vec<(usize, usize)> = if residual {
            query
                .filters()
                .iter()
                .flat_map(|f| {
                    predicate_cols(&f.predicate)
                        .into_iter()
                        .map(move |c| (f.rel, c))
                })
                .collect()
        } else {
            Vec::new()
        };
        let root_cols: Vec<(usize, usize)> = if spec.needs_aggregate() {
            let mut cols = Vec::new();
            for &rc in spec
                .group_by
                .iter()
                .chain(spec.items.iter().filter_map(|i| match i {
                    SelectItemSpec::Aggregate { input, .. } => input.as_ref(),
                    SelectItemSpec::Column(..) => None,
                }))
                .chain(filter_cols.iter())
            {
                if !cols.contains(&rc) {
                    cols.push(rc);
                }
            }
            if cols.is_empty() {
                // A global COUNT(*) with nothing else referenced still
                // needs one carrier column through the join pipeline.
                cols.push((0, 0));
            }
            cols
        } else if residual {
            let mut cols = select_cols.clone();
            for &rc in &filter_cols {
                if !cols.contains(&rc) {
                    cols.push(rc);
                }
            }
            cols
        } else {
            select_cols.clone()
        };

        // Residual selectivity and estimated group count, for stage
        // costing (identical inputs for every candidate; the degree the
        // candidate's root runs at is not).
        let resid_sel: f64 = if residual {
            query.filters().iter().map(|f| f.selectivity).product()
        } else {
            1.0
        };
        // Whether the residual-filter / aggregate stages can actually run
        // partitioned: they need an integer routing column, or they fall
        // back to degree 1 — and must be *costed* at the degree
        // `build_stages` will really emit (root_cols, and hence the root
        // schema's column types, are identical across tree variants).
        let col_is_int = |&(r, c): &(usize, usize)| {
            matches!(
                query.schema(r).and_then(|s| s.attr(c)),
                Ok(a) if a.ty == DataType::Int
            )
        };
        let filter_partitionable = root_cols.iter().any(col_is_int);
        let agg_partitionable = spec.group_by.iter().any(col_is_int);
        let stage_extra = |root_degree: usize, root_est: f64| -> f64 {
            let model = &self.options.schedule_model;
            let mut extra = 0.0;
            let mut card = root_est;
            let mut prev = root_degree;
            if residual {
                let degree = if filter_partitionable { root_degree } else { 1 };
                extra += stage_tail_cost(card, degree, prev, model);
                card *= resid_sel;
                prev = degree;
            }
            if spec.needs_aggregate() {
                let degree = if agg_partitionable { root_degree } else { 1 };
                extra += stage_tail_cost(card, degree, prev, model);
                card = estimate_groups(spec, card);
                prev = degree;
            }
            if let Some(k) = spec.limit {
                extra += stage_tail_cost(card.min(k as f64), 1, prev, model);
            }
            extra
        };

        // Phase 1: minimal-total-cost tree.
        let phase1 = if planning_query.len() <= MAX_DP_RELATIONS {
            optimize_bushy(planning_query.graph(), &self.options.cost_model)?
        } else {
            greedy_tree(planning_query.graph(), &self.options.cost_model)?
        };

        // Tree variants: the phase-1 tree and (optionally) its free
        // right-oriented mirror.
        let mut variants: Vec<(JoinTree, bool)> = vec![(phase1.tree.clone(), false)];
        if self.options.try_right_orient {
            let oriented = right_orient(&phase1.tree);
            if oriented != phase1.tree {
                variants.push((oriented, true));
            }
        }
        let strategies: Vec<Strategy> = match self.options.strategy {
            Some(s) => vec![s],
            None => Strategy::ALL.to_vec(),
        };

        // (variant index, plan) per feasible candidate, parallel to
        // `all_choices`; the winner is materialized once after the sweep.
        let mut candidates: Vec<(usize, ParallelPlan)> = Vec::new();
        let mut all_choices: Vec<PlanChoice> = Vec::new();
        let mut infeasible: Vec<(Strategy, bool, String)> = Vec::new();
        let mut lowered_variants = Vec::with_capacity(variants.len());

        for (v, (tree, mirrored)) in variants.iter().enumerate() {
            let lowered = lower(tree, planning_query, Some(&root_cols))?;
            let cards = lowered.est_cards().to_vec();
            let root_est = cards[tree.root()] as f64;
            let costs = tree_costs(tree, &cards, &self.options.cost_model);
            for &strategy in &strategies {
                let mut input = GeneratorInput::new(tree, &cards, &costs, self.options.processors);
                // Pass the option through unconditionally: the generators
                // only actually share processors when an allocation pool
                // runs short (which RD/SE segment-local splits can hit
                // even with processors >= join_count).
                input.allow_oversubscribe = self.options.allow_oversubscribe;
                let plan = match generate(strategy, &input) {
                    Ok(p) => p,
                    Err(e) => {
                        infeasible.push((strategy, *mirrored, e.to_string()));
                        continue;
                    }
                };
                let mut estimate = estimate_schedule(&plan, &costs, &self.options.schedule_model);
                // Fold the post-join pipeline into the objective: its work
                // scales with this candidate's root degree (`sink()` — the
                // generator always emits the root op).
                estimate.makespan += stage_extra(plan.sink().degree(), root_est);
                all_choices.push(PlanChoice {
                    strategy,
                    right_oriented: *mirrored,
                    estimate,
                    stats: plan.stats(),
                    oversubscribed: plan.oversubscribed,
                });
                candidates.push((v, plan));
            }
            lowered_variants.push(lowered);
        }

        // First minimal candidate wins ties, matching the stable sort
        // below (so the winner is always `choices[0]`).
        let mut winner: Option<usize> = None;
        for i in 0..all_choices.len() {
            let better = winner
                .map(|w| all_choices[i].estimate.makespan < all_choices[w].estimate.makespan)
                .unwrap_or(true);
            if better {
                winner = Some(i);
            }
        }
        let winner = winner.ok_or_else(|| {
            RelalgError::InvalidPlan(format!(
                "no strategy is feasible on {} processors ({})",
                self.options.processors,
                infeasible
                    .iter()
                    .map(|(s, _, e)| format!("{s}: {e}"))
                    .collect::<Vec<_>>()
                    .join("; ")
            ))
        })?;
        let (variant, plan) = candidates.swap_remove(winner);
        let estimate = all_choices[winner].estimate.clone();
        let tree = variants[variant].0.clone();
        let lowered = lowered_variants.swap_remove(variant);

        // Assemble the binding: join specs from the lowering, plus scan
        // filters (pushdown) and the post-join pipeline stages.
        let root_degree = plan.sink().degree();
        let root_est = lowered.est_cards()[tree.root()];
        let scan_filters: HashMap<String, Predicate> = if pushdown {
            (0..query.len())
                .filter_map(|rel| {
                    query
                        .combined_filter(rel)
                        .map(|p| (query.graph().names()[rel].clone(), p))
                })
                .collect()
        } else {
            HashMap::new()
        };
        let stages = build_stages(
            query,
            spec,
            &root_cols,
            &select_cols,
            lowered.schemas()[tree.root()].clone(),
            root_est,
            resid_sel,
            residual,
            root_degree,
        )?;
        let binding = QueryBinding::from_lowered(&tree, &lowered)?
            .with_scan_filters(scan_filters)
            .with_stages(stages)?;
        all_choices.sort_by(|a, b| {
            // NaN-tolerant: a cost model returning NaN sorts last instead
            // of panicking the planning thread.
            a.estimate
                .makespan
                .partial_cmp(&b.estimate.makespan)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(PlannedQuery {
            tree,
            plan,
            binding,
            lowered,
            estimate,
            choices: all_choices,
            infeasible,
        })
    }
}

/// Attribute indices referenced by a predicate, in first-use order.
fn predicate_cols(predicate: &Predicate) -> Vec<usize> {
    let mut out = Vec::new();
    predicate.for_each_attr(&mut |i| {
        if !out.contains(&i) {
            out.push(i);
        }
    });
    out
}

/// Estimated distinct-group count for the aggregate stage.
fn estimate_groups(spec: &SelectSpec, input_est: f64) -> f64 {
    if spec.group_by.is_empty() {
        return 1.0;
    }
    let cap = input_est.max(1.0);
    match spec.group_distinct_hint {
        Some(d) => (d as f64).clamp(1.0, cap),
        // Square-root heuristic when no statistics are available.
        None => cap.sqrt().ceil().clamp(1.0, cap),
    }
}

/// First integer column of `schema` — the routing key candidate for a
/// partitioned stage.
fn first_int_col(schema: &Schema) -> Option<usize> {
    (0..schema.arity()).find(|&c| matches!(schema.attr(c), Ok(a) if a.ty == DataType::Int))
}

/// Builds the post-join pipeline stages for the winning plan.
#[allow(clippy::too_many_arguments)]
fn build_stages(
    query: &JoinQuery,
    spec: &SelectSpec,
    root_cols: &[(usize, usize)],
    select_cols: &[(usize, usize)],
    root_schema: Arc<Schema>,
    root_est: u64,
    resid_sel: f64,
    residual: bool,
    root_degree: usize,
) -> Result<Vec<PipelineStage>> {
    let pos = |rel: usize, col: usize| -> Result<usize> {
        root_cols
            .iter()
            .position(|&rc| rc == (rel, col))
            .ok_or_else(|| {
                RelalgError::InvalidPlan(format!(
                    "column {rel}.{col} was pruned below the root but a stage needs it"
                ))
            })
    };

    let mut stages: Vec<PipelineStage> = Vec::new();
    let mut in_schema = root_schema;
    let mut in_est = root_est as f64;

    if residual {
        let mut combined: Option<Predicate> = None;
        for f in query.filters() {
            let rel = f.rel;
            let p = f.predicate.map_attrs(&|c| pos(rel, c))?;
            combined = Some(match combined {
                None => p,
                Some(acc) => Predicate::And(Box::new(acc), Box::new(p)),
            });
        }
        let predicate = combined.expect("residual implies filters");
        // Without a downstream aggregate, the filter also projects the
        // carrier columns away, restoring the SELECT list's shape.
        let projection = if spec.needs_aggregate() {
            None
        } else {
            let cols: Vec<usize> = select_cols
                .iter()
                .map(|&(r, c)| pos(r, c))
                .collect::<Result<_>>()?;
            let identity =
                cols.len() == in_schema.arity() && cols.iter().copied().eq(0..cols.len());
            if identity {
                None
            } else {
                Some(Projection::new(cols))
            }
        };
        let schema = match &projection {
            Some(p) => Arc::new(p.output_schema(&in_schema)?),
            None => in_schema.clone(),
        };
        let (degree, partition_col) = match first_int_col(&in_schema) {
            Some(c) if root_degree > 1 => (root_degree, c),
            _ => (1, 0),
        };
        in_est *= resid_sel;
        let label = format!("filter σ({predicate})");
        stages.push(PipelineStage {
            kind: StageKind::Filter {
                predicate,
                projection,
            },
            degree,
            partition_col,
            schema: schema.clone(),
            est_out: in_est.round().max(1.0) as u64,
            label,
        });
        in_schema = schema;
    }

    if spec.needs_aggregate() {
        let group: Vec<usize> = spec
            .group_by
            .iter()
            .map(|&(r, c)| pos(r, c))
            .collect::<Result<_>>()?;
        let mut aggs: Vec<AggSpec> = Vec::new();
        for item in &spec.items {
            if let SelectItemSpec::Aggregate { func, input, name } = item {
                let col = match input {
                    Some((r, c)) => pos(*r, *c)?,
                    None => 0,
                };
                aggs.push(AggSpec::new(*func, col, name.clone()));
            }
        }
        // Output layout is [group..., aggs...]; the projection restores
        // the SELECT list's order.
        let mut layout_attrs: Vec<Attribute> = Vec::with_capacity(group.len() + aggs.len());
        for &g in &group {
            layout_attrs.push(in_schema.attr(g)?.clone());
        }
        for a in &aggs {
            layout_attrs.push(Attribute::int(a.name.clone()));
        }
        let layout = Schema::new(layout_attrs);
        let mut proj_cols = Vec::with_capacity(spec.items.len());
        let mut agg_seen = 0usize;
        for item in &spec.items {
            match item {
                SelectItemSpec::Column(r, c) => {
                    let p = pos(*r, *c)?;
                    let gi = group.iter().position(|&g| g == p).expect("validated");
                    proj_cols.push(gi);
                }
                SelectItemSpec::Aggregate { .. } => {
                    proj_cols.push(group.len() + agg_seen);
                    agg_seen += 1;
                }
            }
        }
        let identity =
            proj_cols.len() == layout.arity() && proj_cols.iter().copied().eq(0..proj_cols.len());
        let projection = if identity {
            None
        } else {
            Some(Projection::new(proj_cols))
        };
        let schema = Arc::new(match &projection {
            Some(p) => p.output_schema(&layout)?,
            None => layout,
        });
        // Partition by the first integer grouping column; a global
        // aggregate (or all-string keys) runs at degree 1.
        let partition = group
            .iter()
            .copied()
            .find(|&g| matches!(in_schema.attr(g), Ok(a) if a.ty == DataType::Int));
        let (degree, partition_col) = match partition {
            Some(c) if root_degree > 1 => (root_degree, c),
            _ => (1, 0),
        };
        in_est = estimate_groups(spec, in_est);
        let label = format!(
            "aggregate group={group:?} aggs=[{}]",
            aggs.iter()
                .map(|a| a.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        stages.push(PipelineStage {
            kind: StageKind::Aggregate {
                group,
                aggs,
                projection,
            },
            degree,
            partition_col,
            schema: schema.clone(),
            est_out: in_est.round().max(1.0) as u64,
            label,
        });
        in_schema = schema;
    }

    if let Some(k) = spec.limit {
        stages.push(PipelineStage {
            kind: StageKind::Limit { k },
            degree: 1,
            partition_col: 0,
            schema: in_schema.clone(),
            est_out: (in_est.round().max(0.0) as u64).min(k),
            label: format!("limit {k}"),
        });
    }

    Ok(stages)
}

/// Builds a [`JoinQuery`] from catalog statistics: cardinalities and
/// schemas come from the catalog, edge selectivities from the System-R
/// formula `1 / max(distinct(a.col), distinct(b.col))` over the recorded
/// (or [`Catalog::analyze`]d) per-column distinct counts.
pub fn query_from_catalog(
    catalog: &Catalog,
    relations: &[&str],
    joins: &[(usize, usize, usize, usize)],
) -> Result<JoinQuery> {
    let mut query = JoinQuery::new();
    for name in relations {
        let stats = catalog.stats(name)?;
        let schema = catalog.relation(name)?.schema().clone();
        query.add_relation(*name, stats.cardinality, schema)?;
    }
    for &(a, b, col_a, col_b) in joins {
        if a >= relations.len() || b >= relations.len() {
            return Err(RelalgError::InvalidPlan(format!(
                "join edge ({a}, {b}) references a relation outside 0..{}",
                relations.len()
            )));
        }
        let (na, nb) = (relations[a], relations[b]);
        let da = catalog.column_distinct(na, col_a)?.max(1);
        let db = catalog.column_distinct(nb, col_b)?.max(1);
        let selectivity = 1.0 / da.max(db) as f64;
        query.add_join(a, b, col_a, col_b, selectivity)?;
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::engine::run_plan;
    use mj_relalg::JoinAlgorithm;
    use mj_storage::WisconsinGenerator;
    use std::sync::Arc;

    fn wisconsin_chain(k: usize, n: usize) -> (Arc<Catalog>, JoinQuery) {
        let catalog = Arc::new(Catalog::new());
        for (name, rel) in WisconsinGenerator::new(n, 42).generate_named("R", k) {
            catalog.register(name, rel);
        }
        let names: Vec<String> = (0..k).map(|i| format!("R{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        // Regular chain on unique1 (column 0, a permutation of 0..n).
        let joins: Vec<(usize, usize, usize, usize)> =
            (0..k - 1).map(|i| (i, i + 1, 0, 0)).collect();
        let query = query_from_catalog(&catalog, &refs, &joins).unwrap();
        (catalog, query)
    }

    #[test]
    fn planner_produces_an_executable_winning_plan() {
        let (catalog, query) = wisconsin_chain(5, 200);
        let planned = Planner::new(PlannerOptions::new(8)).plan(&query).unwrap();
        assert!(!planned.choices.is_empty());
        assert_eq!(planned.choices[0].strategy, planned.strategy());
        // Choices are sorted and the winner is cheapest.
        for pair in planned.choices.windows(2) {
            assert!(pair[0].estimate.makespan <= pair[1].estimate.makespan);
        }
        // The plan runs on the real engine and matches the lowered oracle.
        let outcome = run_plan(
            &planned.plan,
            &planned.binding,
            catalog.as_ref(),
            &ExecConfig::default(),
        )
        .unwrap();
        let oracle = planned
            .lowered
            .to_xra(&planned.tree, JoinAlgorithm::Simple)
            .unwrap()
            .eval(catalog.as_ref())
            .unwrap();
        assert_eq!(outcome.relation.len(), 200);
        assert!(outcome.relation.multiset_eq(&oracle));
        // Estimated cardinalities flowed into the metrics.
        assert!(outcome.metrics.ops.iter().all(|o| o.est_out > 0));
        // Perfect key joins: every estimate within 2x of actual.
        assert!(outcome.metrics.max_q_error() < 2.0);
    }

    #[test]
    fn strategy_override_is_respected() {
        let (_, query) = wisconsin_chain(4, 100);
        let mut options = PlannerOptions::new(6);
        options.strategy = Some(Strategy::SE);
        let planned = Planner::new(options).plan(&query).unwrap();
        assert_eq!(planned.strategy(), Strategy::SE);
        assert!(planned.choices.iter().all(|c| c.strategy == Strategy::SE));
    }

    #[test]
    fn infeasible_strategies_are_reported_not_fatal() {
        let (_, query) = wisconsin_chain(6, 100);
        // 2 processors, 5 joins, no oversubscription: SE/RD/FP variants
        // with more concurrent ops than processors drop out, SP remains.
        let mut options = PlannerOptions::new(2);
        options.allow_oversubscribe = false;
        let planned = Planner::new(options).plan(&query).unwrap();
        assert!(planned.choices.iter().any(|c| c.strategy == Strategy::SP));
        assert!(!planned.infeasible.is_empty());
        let text = planned.explain();
        assert!(text.contains("chosen"));
        assert!(text.contains("infeasible"));
    }

    #[test]
    fn too_few_relations_is_an_error() {
        let catalog = Catalog::new();
        let q = query_from_catalog(&catalog, &[], &[]).unwrap();
        assert!(Planner::new(PlannerOptions::new(4)).plan(&q).is_err());
    }

    #[test]
    fn zero_processors_is_an_error_not_a_panic() {
        let (_, query) = wisconsin_chain(3, 50);
        let err = Planner::new(PlannerOptions::new(0))
            .plan(&query)
            .unwrap_err();
        assert!(err.to_string().contains("at least 1 processor"), "{err}");
    }

    #[test]
    fn output_columns_shape_the_plan_result() {
        let (catalog, query) = wisconsin_chain(3, 100);
        // Keep only unique2 of the first and last relation.
        let output = vec![(0usize, 1usize), (2usize, 1usize)];
        let planned = Planner::new(PlannerOptions::new(4))
            .plan_with_output(&query, Some(&output))
            .unwrap();
        let outcome = run_plan(
            &planned.plan,
            &planned.binding,
            catalog.as_ref(),
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.relation.len(), 100);
        assert_eq!(outcome.relation.schema().arity(), 2);
        let oracle = planned
            .lowered
            .to_xra(&planned.tree, JoinAlgorithm::Simple)
            .unwrap()
            .eval(catalog.as_ref())
            .unwrap();
        assert!(outcome.relation.multiset_eq(&oracle));
    }

    #[test]
    fn catalog_selectivity_uses_column_distincts() {
        let catalog = Arc::new(Catalog::new());
        for (name, rel) in WisconsinGenerator::new(100, 1).generate_named("R", 2) {
            catalog.register(name, rel);
        }
        catalog.set_column_distinct("R0", 1, 20);
        catalog.set_column_distinct("R1", 0, 10);
        let q = query_from_catalog(&catalog, &["R0", "R1"], &[(0, 1, 1, 0)]).unwrap();
        // sel = 1 / max(20, 10).
        assert!((q.graph().edges()[0].2 - 0.05).abs() < 1e-12);
    }
}
