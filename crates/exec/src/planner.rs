//! The end-to-end cost-based planner: [`JoinQuery`] → join tree →
//! strategy + processor allocation → executable [`ParallelPlan`] +
//! [`QueryBinding`].
//!
//! This is the piece the paper leaves to "the optimizer" and the repo
//! previously left to the *user*: `mj run` took `--shape` and
//! `--strategy` flags, and the phase-1 optimizers produced trees nobody
//! lowered. The planner wires the whole pipeline:
//!
//! 1. **Tree** (phase 1): exhaustive bushy DP up to
//!    [`MAX_DP_RELATIONS`](mj_plan::optimize::MAX_DP_RELATIONS) relations,
//!    greedy above — minimal *total* cost, parallelism-blind (§1.2).
//! 2. **Strategy + allocation** (phase 2): generate an SP/SE/RD/FP plan
//!    for the tree *and* its free right-oriented mirror (§5), each with
//!    proportional processor allocation, and cost every candidate with the
//!    analytic schedule model ([`mj_core::schedule`]). Cheapest wins.
//! 3. **Lowering**: the winner's tree is lowered to per-join [`EquiJoin`]
//!    specs and derived schemas ([`mj_plan::query::lower`]) and bound into
//!    a [`QueryBinding`] the engine executes directly.
//!
//! Estimated per-op cardinalities travel through the plan into
//! [`Metrics`](crate::metrics::Metrics), so every run reports
//! estimated-vs-actual plan quality.
//!
//! [`EquiJoin`]: mj_relalg::EquiJoin

use std::fmt;

use mj_core::schedule::{estimate_schedule, ScheduleEstimate, ScheduleModel};
use mj_core::{generate, GeneratorInput, ParallelPlan, PlanStats, Strategy};
use mj_plan::cost::{tree_costs, CostModel};
use mj_plan::optimize::{greedy_tree, optimize_bushy, MAX_DP_RELATIONS};
use mj_plan::query::{lower, JoinQuery, LoweredQuery};
use mj_plan::transform::right_orient;
use mj_plan::tree::JoinTree;
use mj_relalg::{RelalgError, RelationProvider, Result};
use mj_storage::Catalog;

use crate::binding::QueryBinding;

/// Planner knobs. [`PlannerOptions::new`] gives the defaults: all four
/// strategies considered, right-orientation tried, oversubscription
/// allowed when the machine is smaller than the plan.
#[derive(Clone, Copy, Debug)]
pub struct PlannerOptions {
    /// Logical processors the plan may use.
    pub processors: usize,
    /// Phase-1 / work cost model (§4.3 coefficients).
    pub cost_model: CostModel,
    /// Schedule model for phase-2 candidate costing.
    pub schedule_model: ScheduleModel,
    /// Forces a single strategy instead of costing all four — the manual
    /// `--strategy` override with planner-chosen tree and allocation.
    pub strategy: Option<Strategy>,
    /// Also cost each strategy on the right-oriented mirror of the
    /// phase-1 tree ("possible without cost penalty", §5).
    pub try_right_orient: bool,
    /// Permit concurrent operations to share processors when `processors`
    /// is smaller than a strategy needs (otherwise such candidates are
    /// simply skipped as infeasible).
    pub allow_oversubscribe: bool,
}

impl PlannerOptions {
    /// Default options for a machine of `processors` logical processors.
    pub fn new(processors: usize) -> Self {
        PlannerOptions {
            processors,
            cost_model: CostModel::default(),
            schedule_model: ScheduleModel::default(),
            strategy: None,
            try_right_orient: true,
            allow_oversubscribe: true,
        }
    }
}

/// One costed (strategy, tree-variant) candidate.
#[derive(Clone, Debug)]
pub struct PlanChoice {
    /// The strategy of this candidate.
    pub strategy: Strategy,
    /// True if the candidate runs on the right-oriented mirror.
    pub right_oriented: bool,
    /// Estimated schedule (the planner's objective is `.makespan`).
    pub estimate: ScheduleEstimate,
    /// Startup/coordination drivers of the candidate plan.
    pub stats: PlanStats,
    /// True if concurrent ops share processors in this candidate.
    pub oversubscribed: bool,
}

/// The planner's output: an executable plan plus everything needed to run,
/// verify, and explain it.
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    /// The chosen join tree (possibly the right-oriented mirror).
    pub tree: JoinTree,
    /// The winning parallel plan, fully allocated.
    pub plan: ParallelPlan,
    /// Join specs and schemas, ready for the engine.
    pub binding: QueryBinding,
    /// The generalized lowering (per-node schemas, specs, estimates) —
    /// `lowered.to_xra(&tree, ..)` is the sequential oracle.
    pub lowered: LoweredQuery,
    /// The winner's schedule estimate.
    pub estimate: ScheduleEstimate,
    /// Every costed candidate, cheapest first (winner is `choices[0]`).
    pub choices: Vec<PlanChoice>,
    /// Candidates that could not be planned, with the reason.
    pub infeasible: Vec<(Strategy, bool, String)>,
}

impl PlannedQuery {
    /// The winning strategy.
    pub fn strategy(&self) -> Strategy {
        self.plan.strategy
    }

    /// Human-readable comparison of every costed alternative — what
    /// `mj plan` prints.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>14} {:>12} {:>10} {:>10}\n",
            "candidate", "est cost", "startup", "streams", "processes"
        ));
        for (i, c) in self.choices.iter().enumerate() {
            out.push_str(&format!(
                "{:<10} {:>14.0} {:>12.0} {:>10} {:>10}  {}\n",
                format!(
                    "{}{}",
                    c.strategy,
                    if c.right_oriented { "+mirror" } else { "" }
                ),
                c.estimate.makespan,
                c.estimate.startup,
                c.stats.tuple_streams,
                c.stats.operation_processes,
                if i == 0 { "<- chosen" } else { "" },
            ));
        }
        for (s, mirrored, why) in &self.infeasible {
            out.push_str(&format!(
                "{:<10} infeasible: {why}\n",
                format!("{s}{}", if *mirrored { "+mirror" } else { "" })
            ));
        }
        out
    }
}

impl fmt::Display for PlannedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

/// The cost-based planner. Stateless apart from its options; cheap to
/// build per query.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    options: PlannerOptions,
}

impl Planner {
    /// Creates a planner.
    pub fn new(options: PlannerOptions) -> Self {
        Planner { options }
    }

    /// The planner's options.
    pub fn options(&self) -> &PlannerOptions {
        &self.options
    }

    /// Plans `query` end to end: phase-1 tree, phase-2 strategy and
    /// processor allocation by cheapest estimated schedule, generalized
    /// lowering, binding. Keeps every column of every relation in
    /// tree-independent `(relation, column)` order.
    pub fn plan(&self, query: &JoinQuery) -> Result<PlannedQuery> {
        self.plan_with_output(query, None)
    }

    /// [`plan`](Self::plan) with an explicit output column list: the final
    /// result contains exactly the `(relation, column)` pairs of `output`,
    /// in order (the session layer's `SELECT` list). `None` keeps every
    /// column.
    pub fn plan_with_output(
        &self,
        query: &JoinQuery,
        output: Option<&[(usize, usize)]>,
    ) -> Result<PlannedQuery> {
        if self.options.processors == 0 {
            return Err(RelalgError::InvalidPlan(
                "planner needs at least 1 processor".into(),
            ));
        }
        if query.len() < 2 {
            return Err(RelalgError::InvalidPlan(
                "planner needs at least 2 relations".into(),
            ));
        }
        // Phase 1: minimal-total-cost tree.
        let phase1 = if query.len() <= MAX_DP_RELATIONS {
            optimize_bushy(query.graph(), &self.options.cost_model)?
        } else {
            greedy_tree(query.graph(), &self.options.cost_model)?
        };

        // Tree variants: the phase-1 tree and (optionally) its free
        // right-oriented mirror.
        let mut variants: Vec<(JoinTree, bool)> = vec![(phase1.tree.clone(), false)];
        if self.options.try_right_orient {
            let oriented = right_orient(&phase1.tree);
            if oriented != phase1.tree {
                variants.push((oriented, true));
            }
        }
        let strategies: Vec<Strategy> = match self.options.strategy {
            Some(s) => vec![s],
            None => Strategy::ALL.to_vec(),
        };

        // (variant index, plan) per feasible candidate, parallel to
        // `all_choices`; the winner is materialized once after the sweep.
        let mut candidates: Vec<(usize, ParallelPlan)> = Vec::new();
        let mut all_choices: Vec<PlanChoice> = Vec::new();
        let mut infeasible: Vec<(Strategy, bool, String)> = Vec::new();
        let mut lowered_variants = Vec::with_capacity(variants.len());

        for (v, (tree, mirrored)) in variants.iter().enumerate() {
            let lowered = lower(tree, query, output)?;
            let cards = lowered.est_cards().to_vec();
            let costs = tree_costs(tree, &cards, &self.options.cost_model);
            for &strategy in &strategies {
                let mut input = GeneratorInput::new(tree, &cards, &costs, self.options.processors);
                // Pass the option through unconditionally: the generators
                // only actually share processors when an allocation pool
                // runs short (which RD/SE segment-local splits can hit
                // even with processors >= join_count).
                input.allow_oversubscribe = self.options.allow_oversubscribe;
                let plan = match generate(strategy, &input) {
                    Ok(p) => p,
                    Err(e) => {
                        infeasible.push((strategy, *mirrored, e.to_string()));
                        continue;
                    }
                };
                let estimate = estimate_schedule(&plan, &costs, &self.options.schedule_model);
                all_choices.push(PlanChoice {
                    strategy,
                    right_oriented: *mirrored,
                    estimate,
                    stats: plan.stats(),
                    oversubscribed: plan.oversubscribed,
                });
                candidates.push((v, plan));
            }
            lowered_variants.push(lowered);
        }

        // First minimal candidate wins ties, matching the stable sort
        // below (so the winner is always `choices[0]`).
        let mut winner: Option<usize> = None;
        for i in 0..all_choices.len() {
            let better = winner
                .map(|w| all_choices[i].estimate.makespan < all_choices[w].estimate.makespan)
                .unwrap_or(true);
            if better {
                winner = Some(i);
            }
        }
        let winner = winner.ok_or_else(|| {
            RelalgError::InvalidPlan(format!(
                "no strategy is feasible on {} processors ({})",
                self.options.processors,
                infeasible
                    .iter()
                    .map(|(s, _, e)| format!("{s}: {e}"))
                    .collect::<Vec<_>>()
                    .join("; ")
            ))
        })?;
        let (variant, plan) = candidates.swap_remove(winner);
        let estimate = all_choices[winner].estimate.clone();
        let tree = variants[variant].0.clone();
        let lowered = lowered_variants.swap_remove(variant);
        let binding = QueryBinding::from_lowered(&tree, &lowered)?;
        all_choices.sort_by(|a, b| {
            a.estimate
                .makespan
                .partial_cmp(&b.estimate.makespan)
                .unwrap()
        });
        Ok(PlannedQuery {
            tree,
            plan,
            binding,
            lowered,
            estimate,
            choices: all_choices,
            infeasible,
        })
    }
}

/// Builds a [`JoinQuery`] from catalog statistics: cardinalities and
/// schemas come from the catalog, edge selectivities from the System-R
/// formula `1 / max(distinct(a.col), distinct(b.col))` over the recorded
/// (or [`Catalog::analyze`]d) per-column distinct counts.
pub fn query_from_catalog(
    catalog: &Catalog,
    relations: &[&str],
    joins: &[(usize, usize, usize, usize)],
) -> Result<JoinQuery> {
    let mut query = JoinQuery::new();
    for name in relations {
        let stats = catalog.stats(name)?;
        let schema = catalog.relation(name)?.schema().clone();
        query.add_relation(*name, stats.cardinality, schema)?;
    }
    for &(a, b, col_a, col_b) in joins {
        if a >= relations.len() || b >= relations.len() {
            return Err(RelalgError::InvalidPlan(format!(
                "join edge ({a}, {b}) references a relation outside 0..{}",
                relations.len()
            )));
        }
        let (na, nb) = (relations[a], relations[b]);
        let da = catalog.column_distinct(na, col_a)?.max(1);
        let db = catalog.column_distinct(nb, col_b)?.max(1);
        let selectivity = 1.0 / da.max(db) as f64;
        query.add_join(a, b, col_a, col_b, selectivity)?;
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::engine::run_plan;
    use mj_relalg::JoinAlgorithm;
    use mj_storage::WisconsinGenerator;
    use std::sync::Arc;

    fn wisconsin_chain(k: usize, n: usize) -> (Arc<Catalog>, JoinQuery) {
        let catalog = Arc::new(Catalog::new());
        for (name, rel) in WisconsinGenerator::new(n, 42).generate_named("R", k) {
            catalog.register(name, rel);
        }
        let names: Vec<String> = (0..k).map(|i| format!("R{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        // Regular chain on unique1 (column 0, a permutation of 0..n).
        let joins: Vec<(usize, usize, usize, usize)> =
            (0..k - 1).map(|i| (i, i + 1, 0, 0)).collect();
        let query = query_from_catalog(&catalog, &refs, &joins).unwrap();
        (catalog, query)
    }

    #[test]
    fn planner_produces_an_executable_winning_plan() {
        let (catalog, query) = wisconsin_chain(5, 200);
        let planned = Planner::new(PlannerOptions::new(8)).plan(&query).unwrap();
        assert!(!planned.choices.is_empty());
        assert_eq!(planned.choices[0].strategy, planned.strategy());
        // Choices are sorted and the winner is cheapest.
        for pair in planned.choices.windows(2) {
            assert!(pair[0].estimate.makespan <= pair[1].estimate.makespan);
        }
        // The plan runs on the real engine and matches the lowered oracle.
        let outcome = run_plan(
            &planned.plan,
            &planned.binding,
            catalog.as_ref(),
            &ExecConfig::default(),
        )
        .unwrap();
        let oracle = planned
            .lowered
            .to_xra(&planned.tree, JoinAlgorithm::Simple)
            .unwrap()
            .eval(catalog.as_ref())
            .unwrap();
        assert_eq!(outcome.relation.len(), 200);
        assert!(outcome.relation.multiset_eq(&oracle));
        // Estimated cardinalities flowed into the metrics.
        assert!(outcome.metrics.ops.iter().all(|o| o.est_out > 0));
        // Perfect key joins: every estimate within 2x of actual.
        assert!(outcome.metrics.max_q_error() < 2.0);
    }

    #[test]
    fn strategy_override_is_respected() {
        let (_, query) = wisconsin_chain(4, 100);
        let mut options = PlannerOptions::new(6);
        options.strategy = Some(Strategy::SE);
        let planned = Planner::new(options).plan(&query).unwrap();
        assert_eq!(planned.strategy(), Strategy::SE);
        assert!(planned.choices.iter().all(|c| c.strategy == Strategy::SE));
    }

    #[test]
    fn infeasible_strategies_are_reported_not_fatal() {
        let (_, query) = wisconsin_chain(6, 100);
        // 2 processors, 5 joins, no oversubscription: SE/RD/FP variants
        // with more concurrent ops than processors drop out, SP remains.
        let mut options = PlannerOptions::new(2);
        options.allow_oversubscribe = false;
        let planned = Planner::new(options).plan(&query).unwrap();
        assert!(planned.choices.iter().any(|c| c.strategy == Strategy::SP));
        assert!(!planned.infeasible.is_empty());
        let text = planned.explain();
        assert!(text.contains("chosen"));
        assert!(text.contains("infeasible"));
    }

    #[test]
    fn too_few_relations_is_an_error() {
        let catalog = Catalog::new();
        let q = query_from_catalog(&catalog, &[], &[]).unwrap();
        assert!(Planner::new(PlannerOptions::new(4)).plan(&q).is_err());
    }

    #[test]
    fn zero_processors_is_an_error_not_a_panic() {
        let (_, query) = wisconsin_chain(3, 50);
        let err = Planner::new(PlannerOptions::new(0))
            .plan(&query)
            .unwrap_err();
        assert!(err.to_string().contains("at least 1 processor"), "{err}");
    }

    #[test]
    fn output_columns_shape_the_plan_result() {
        let (catalog, query) = wisconsin_chain(3, 100);
        // Keep only unique2 of the first and last relation.
        let output = vec![(0usize, 1usize), (2usize, 1usize)];
        let planned = Planner::new(PlannerOptions::new(4))
            .plan_with_output(&query, Some(&output))
            .unwrap();
        let outcome = run_plan(
            &planned.plan,
            &planned.binding,
            catalog.as_ref(),
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.relation.len(), 100);
        assert_eq!(outcome.relation.schema().arity(), 2);
        let oracle = planned
            .lowered
            .to_xra(&planned.tree, JoinAlgorithm::Simple)
            .unwrap()
            .eval(catalog.as_ref())
            .unwrap();
        assert!(outcome.relation.multiset_eq(&oracle));
    }

    #[test]
    fn catalog_selectivity_uses_column_distincts() {
        let catalog = Arc::new(Catalog::new());
        for (name, rel) in WisconsinGenerator::new(100, 1).generate_named("R", 2) {
            catalog.register(name, rel);
        }
        catalog.set_column_distinct("R0", 1, 20);
        catalog.set_column_distinct("R1", 0, 10);
        let q = query_from_catalog(&catalog, &["R0", "R1"], &[(0, 1, 1, 0)]).unwrap();
        // sel = 1 / max(20, 10).
        assert!((q.graph().edges()[0].2 - 0.05).abs() < 1e-12);
    }
}
