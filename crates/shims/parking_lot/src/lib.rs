//! Minimal, offline stand-in for `parking_lot`: `Mutex` and `RwLock`
//! without lock poisoning, wrapping the `std::sync` primitives.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning (a panicked holder).
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> StdReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> StdWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
