//! Minimal, offline stand-in for `criterion`: enough of the API surface to
//! compile and run the workspace's `[[bench]]` targets. Each benchmark is
//! timed with a short calibrated loop and reported as median ns/iter —
//! no statistics engine, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// A named benchmark id, e.g. `simple/10000`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark harness entry point.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measure: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: the shim is for smoke-running benches, and the
        // repro binary holds the real measurement harness.
        Criterion {
            measure: Duration::from_millis(300),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let ns = run_bench(self.measure, self.sample_size, &mut f);
        report(name, ns, None);
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let ns = run_bench(self.criterion.measure, samples, &mut |b| f(b, input));
        report(&format!("{}/{}", self.name, id.id), ns, self.throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let ns = run_bench(self.criterion.measure, samples, &mut f);
        report(&format!("{}/{}", self.name, id), ns, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timed iterations of one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the harness-chosen iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// An opaque value sink preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn run_bench(measure: Duration, samples: usize, f: &mut dyn FnMut(&mut Bencher)) -> f64 {
    // Calibrate: find an iteration count whose run takes >= ~1/10 of the
    // per-sample budget.
    let per_sample = measure / samples.max(1) as u32;
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed * 10 >= per_sample || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    per_iter[per_iter.len() / 2]
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Melem/s", n as f64 / ns_per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MB/s", n as f64 / ns_per_iter * 1e3)
        }
        None => String::new(),
    };
    eprintln!("  {name}: {ns_per_iter:.0} ns/iter{rate}");
}

/// Declares the benchmark functions of one target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($f(&mut criterion);)+
        }
    };
}

/// Declares the entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
