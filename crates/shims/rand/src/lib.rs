//! Minimal, offline stand-in for the `rand` crate surface the workspace
//! uses: a seeded 64-bit PRNG (`rngs::StdRng`), `Rng::{gen, gen_range}`,
//! `SeedableRng::seed_from_u64`, and `seq::SliceRandom::shuffle`.
//!
//! The generator is xorshift64* seeded through splitmix64 — not
//! cryptographic, but statistically fine for workload generation, skew
//! sampling, and randomized local search, and fully deterministic per seed.

use std::ops::{Range, RangeInclusive};

/// Random number generator engines.
pub mod rngs {
    /// The workspace's standard seeded PRNG (xorshift64*).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 scramble so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        StdRng { state: z | 1 }
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples a uniformly distributed value.
    fn sample_standard(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn sample_standard(rng: &mut StdRng) -> Self {
        rng.next_u64_impl()
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut StdRng) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut StdRng) -> Self {
        rng.next_u64_impl() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples a uniformly distributed value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64_impl() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64_impl() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing RNG interface.
pub trait Rng {
    /// Returns the next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T;

    /// Samples uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, StdRng};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub use seq::SliceRandom;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let inc = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&inc));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_varied() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..100).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((0.3..0.7).contains(&mean), "suspicious mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<i64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
