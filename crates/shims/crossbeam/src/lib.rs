//! Minimal, offline stand-in for the `crossbeam` channel API used by
//! `mj-exec`: bounded MPMC channels with blocking send/recv, disconnect
//! semantics, and a `Select` over receivers.
//!
//! Built on `std::sync::{Mutex, Condvar}`. Throughput is lower than real
//! crossbeam's lock-free queues, but the engine amortizes channel overhead
//! over tuple batches, so the difference is invisible at the batch sizes
//! the workspace uses.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Creates a bounded channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(cap),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is returned to the caller.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]: the channel is full or every
    /// receiver has been dropped; the unsent message is returned either way.
    pub enum TrySendError<T> {
        /// The channel is at capacity; retry later.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`]: nothing queued right now,
    /// or nothing queued and every sender gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty; retry later.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or errors if every
        /// receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.chan.inner.lock().expect("channel lock");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                if inner.queue.len() < inner.cap {
                    inner.queue.push_back(msg);
                    drop(inner);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                inner = self.chan.not_full.wait(inner).expect("channel lock");
            }
        }

        /// Non-blocking send: enqueues if there is room, otherwise returns
        /// the message with [`TrySendError::Full`] (or `Disconnected` once
        /// every receiver is gone).
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.chan.inner.lock().expect("channel lock");
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if inner.queue.len() >= inner.cap {
                return Err(TrySendError::Full(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.inner.lock().expect("channel lock").senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().expect("channel lock");
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.chan.not_empty.notify_all();
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, or errors once the channel is
        /// empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.chan.inner.lock().expect("channel lock");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.chan.not_empty.wait(inner).expect("channel lock");
            }
        }

        /// Non-blocking receive: returns a queued message if one exists,
        /// [`TryRecvError::Empty`] if not, and `Disconnected` once the
        /// channel is drained and every sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.chan.inner.lock().expect("channel lock");
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// True if a `recv` would return without blocking (message queued
        /// or channel disconnected).
        fn is_ready(&self) -> bool {
            let inner = self.chan.inner.lock().expect("channel lock");
            !inner.queue.is_empty() || inner.senders == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.inner.lock().expect("channel lock").receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().expect("channel lock");
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.chan.not_full.notify_all();
            }
        }
    }

    /// Readiness probe for [`Select`], object-safe across message types.
    trait ReadyProbe {
        fn probe(&self) -> bool;
    }

    impl<T> ReadyProbe for Receiver<T> {
        fn probe(&self) -> bool {
            self.is_ready()
        }
    }

    /// Blocks on multiple receivers until one is ready.
    ///
    /// Poll-based: `select()` spins (with escalating yields/sleeps) over
    /// the registered receivers. Correct for the engine's usage, where each
    /// receiver endpoint has a single consuming thread — the readiness
    /// observed by `select()` cannot be stolen before the follow-up
    /// [`SelectedOperation::recv`].
    #[derive(Default)]
    pub struct Select<'a> {
        probes: Vec<&'a dyn ReadyProbe>,
    }

    impl<'a> Select<'a> {
        /// Creates an empty selector.
        pub fn new() -> Self {
            Select { probes: Vec::new() }
        }

        /// Registers a receiver; returns its operation index.
        pub fn recv<T>(&mut self, rx: &'a Receiver<T>) -> usize {
            self.probes.push(rx);
            self.probes.len() - 1
        }

        /// Blocks until one registered receiver is ready.
        pub fn select(&mut self) -> SelectedOperation<'a> {
            assert!(!self.probes.is_empty(), "select over zero operations");
            let mut spins = 0u32;
            loop {
                for (i, p) in self.probes.iter().enumerate() {
                    if p.probe() {
                        return SelectedOperation {
                            index: i,
                            marker: std::marker::PhantomData,
                        };
                    }
                }
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else if spins < 256 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
        }
    }

    /// A ready operation returned by [`Select::select`].
    pub struct SelectedOperation<'a> {
        index: usize,
        marker: std::marker::PhantomData<&'a ()>,
    }

    impl<'a> SelectedOperation<'a> {
        /// Index of the ready operation (registration order).
        pub fn index(&self) -> usize {
            self.index
        }

        /// Completes the operation by receiving from the ready channel.
        pub fn recv<T>(self, rx: &Receiver<T>) -> Result<T, RecvError> {
            rx.recv()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, Select};

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());

        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn select_picks_the_live_channel() {
        let (tx_a, rx_a) = bounded::<i32>(1);
        let (tx_b, rx_b) = bounded::<i32>(1);
        tx_b.send(42).unwrap();
        let mut sel = Select::new();
        sel.recv(&rx_a);
        sel.recv(&rx_b);
        let op = sel.select();
        assert_eq!(op.index(), 1);
        assert_eq!(op.recv(&rx_b).unwrap(), 42);
        drop(tx_a);
        let mut sel = Select::new();
        sel.recv(&rx_a);
        let op = sel.select();
        assert!(op.recv(&rx_a).is_err(), "disconnect counts as ready");
    }

    #[test]
    fn try_send_try_recv_never_block() {
        use super::channel::{TryRecvError, TrySendError};
        let (tx, rx) = bounded(1);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.try_recv().unwrap(), 1);
        drop(tx);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
    }

    #[test]
    fn mpmc_clone_endpoints() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3);
    }
}
