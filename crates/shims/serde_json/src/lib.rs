//! Minimal, offline stand-in for `serde_json`: JSON text printing and
//! parsing over the vendored `serde` shim's [`JsonValue`] data model.

use std::fmt;

use serde::{DeError, Deserialize, JsonValue, Serialize};

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.to_json(), &mut out);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_json(&v)?)
}

// ---- printing ----

fn print_value(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Int(n) => out.push_str(&n.to_string()),
        JsonValue::UInt(n) => out.push_str(&n.to_string()),
        JsonValue::Float(n) => {
            if n.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                let s = format!("{n:?}");
                out.push_str(&s);
            } else if n.is_nan() {
                out.push_str("\"NaN\"");
            } else if *n > 0.0 {
                out.push_str("\"Infinity\"");
            } else {
                out.push_str("\"-Infinity\"");
            }
        }
        JsonValue::Str(s) => print_string(s, out),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_string(k, out);
                out.push(':');
                print_value(v, out);
            }
            out.push('}');
        }
    }
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: JsonValue) -> Result<JsonValue, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("non-utf8 number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = *rest
                .first()
                .ok_or_else(|| Error("unterminated string".into()))?;
            match c {
                b'"' => {
                    self.pos += 1;
                    // Round-trip the non-finite float sentinels.
                    return Ok(out);
                }
                b'\\' => {
                    let esc = *rest.get(1).ok_or_else(|| Error("dangling escape".into()))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error(format!("bad codepoint {cp:#x}")))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let s =
                        std::str::from_utf8(rest).map_err(|_| Error("non-utf8 string".into()))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error("bad \\u escape".into()))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_array(&mut self) -> Result<JsonValue, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<i64>(&to_string(&-42i64).unwrap()).unwrap(), -42);
        assert_eq!(from_str::<f64>(&to_string(&0.1f64).unwrap()).unwrap(), 0.1);
        assert!(from_str::<bool>("true").unwrap());
        let s = "line\n\"quoted\" \\ tab\t unicode \u{1F600} \u{7}".to_string();
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![(1.5f64, 2.5f64), (0.0, -1.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(f64, f64)>>(&json).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v: Vec<i64> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let s: String = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(s, "Aé😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<i64>("12 34").is_err());
        assert!(from_str::<i64>("{").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
