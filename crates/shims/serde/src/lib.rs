//! Minimal, offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of serde it actually uses: a
//! self-describing JSON value model, `Serialize`/`Deserialize` traits over
//! it, and derive macros (re-exported from `serde_derive`) for plain
//! structs and enums without `#[serde(...)]` attributes. `serde_json`
//! provides `to_string`/`from_str` on top.
//!
//! The external JSON shape follows real serde's defaults: structs are
//! objects, unit enum variants are strings, newtype variants are
//! `{"Variant": value}`, tuple variants are `{"Variant": [..]}`, struct
//! variants are `{"Variant": {..}}`.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer (also used for unsigned values that fit).
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, with insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serializes a value into the JSON data model.
pub trait Serialize {
    /// Converts `self` to a [`JsonValue`].
    fn to_json(&self) -> JsonValue;
}

/// Reconstructs a value from the JSON data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a [`JsonValue`].
    fn from_json(v: &JsonValue) -> Result<Self, DeError>;
}

// ---- helpers used by generated code ----

/// Fetches and deserializes a named field of an object.
pub fn field<T: Deserialize>(v: &JsonValue, name: &str) -> Result<T, DeError> {
    let inner = v
        .get(name)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))?;
    T::from_json(inner).map_err(|e| DeError(format!("field `{name}`: {}", e.0)))
}

/// Interprets `v` as an array of exactly `len` elements.
pub fn as_arr(v: &JsonValue, len: usize) -> Result<&[JsonValue], DeError> {
    match v {
        JsonValue::Arr(items) if items.len() == len => Ok(items),
        JsonValue::Arr(items) => Err(DeError(format!(
            "expected array of {len}, found array of {}",
            items.len()
        ))),
        other => Err(DeError(format!("expected array, found {other:?}"))),
    }
}

/// Deserializes element `i` of an array slice.
pub fn elem<T: Deserialize>(items: &[JsonValue], i: usize) -> Result<T, DeError> {
    T::from_json(&items[i]).map_err(|e| DeError(format!("element {i}: {}", e.0)))
}

// ---- primitive impls ----

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &JsonValue) -> Result<Self, DeError> {
                match v {
                    JsonValue::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    JsonValue::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, u8, u16, u32, isize);

// usize/u64 may exceed i64; serialize through UInt when needed.
macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> JsonValue {
                match i64::try_from(*self) {
                    Ok(n) => JsonValue::Int(n),
                    Err(_) => JsonValue::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &JsonValue) -> Result<Self, DeError> {
                match v {
                    JsonValue::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    JsonValue::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

uint_impl!(u64, usize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &JsonValue) -> Result<Self, DeError> {
                match v {
                    JsonValue::Float(n) => Ok(*n as $t),
                    JsonValue::Int(n) => Ok(*n as $t),
                    JsonValue::UInt(n) => Ok(*n as $t),
                    other => Err(DeError(format!(
                        "expected {}, found {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Deserialize for Box<str> {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        String::from_json(v).map(String::into_boxed_str)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(DeError(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        Vec::<T>::from_json(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        let vec = Vec::<T>::from_json(v)?;
        let len = vec.len();
        vec.try_into()
            .map_err(|_| DeError(format!("expected array of {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        T::from_json(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        let items = as_arr(v, 2)?;
        Ok((elem(items, 0)?, elem(items, 1)?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        let items = as_arr(v, 3)?;
        Ok((elem(items, 0)?, elem(items, 1)?, elem(items, 2)?))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json(&self) -> JsonValue {
        // Sort keys for deterministic output.
        let mut pairs: Vec<(String, JsonValue)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        JsonValue::Obj(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(DeError(format!("expected object, found {other:?}"))),
        }
    }
}

impl Serialize for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl Deserialize for JsonValue {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_json(&42i64.to_json()).unwrap(), 42);
        assert_eq!(u64::from_json(&u64::MAX.to_json()).unwrap(), u64::MAX);
        assert_eq!(f64::from_json(&1.5f64.to_json()).unwrap(), 1.5);
        assert_eq!(String::from_json(&"x".to_string().to_json()).unwrap(), "x");
        assert!(bool::from_json(&true.to_json()).unwrap());
        assert_eq!(
            Vec::<i64>::from_json(&vec![1i64, 2].to_json()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(<[u64; 2]>::from_json(&[3u64, 4].to_json()).unwrap(), [3, 4]);
        assert_eq!(
            <(f64, f64)>::from_json(&(0.5f64, 2.5f64).to_json()).unwrap(),
            (0.5, 2.5)
        );
        assert_eq!(Option::<i64>::from_json(&JsonValue::Null).unwrap(), None);
    }

    #[test]
    fn type_errors_surface() {
        assert!(i64::from_json(&JsonValue::Str("x".into())).is_err());
        assert!(bool::from_json(&JsonValue::Int(1)).is_err());
        assert!(<[i64; 2]>::from_json(&vec![1i64].to_json()).is_err());
    }
}
