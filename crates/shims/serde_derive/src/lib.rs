//! Derive macros for the vendored `serde` shim.
//!
//! Parses the deriving item with the bare `proc_macro` API (no `syn`/
//! `quote` available offline) and emits `Serialize`/`Deserialize` impls
//! against the shim's JSON data model. Supported shapes — the only ones the
//! workspace uses — are non-generic named-field structs and enums with
//! unit, tuple, and named-field variants, without `#[serde(...)]`
//! attributes. Field types never need to be parsed: generated code relies
//! on type inference through `serde::field`/`serde::elem`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (`{name}`)");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("`{name}`: no braced body (tuple structs unsupported)"),
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` and friends
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` skipping the types (angle-bracket aware).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        fields.push(name);
        i += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(tuple_arity(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip the trailing comma (and any discriminant — unused here).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Number of fields in a tuple variant: top-level commas + 1.
fn tuple_arity(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    commas + 1 - usize::from(trailing_comma)
}

// ---- code generation ----

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_json(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json(&self) -> ::serde::JsonValue {{\n\
                 ::serde::JsonValue::Obj(vec![{}])\n}}\n}}",
                pairs.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::JsonValue::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::JsonValue::Obj(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_json(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_json(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::JsonValue::Obj(vec![(\"{vn}\".to_string(), ::serde::JsonValue::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_json({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::JsonValue::Obj(vec![(\"{vn}\".to_string(), ::serde::JsonValue::Obj(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json(&self) -> ::serde::JsonValue {{\n\
                 match self {{\n{}\n}}\n}}\n}}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(v, \"{f}\")?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json(v: &::serde::JsonValue) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 Ok({name} {{ {} }})\n}}\n}}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_json(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> =
                                (0..*n).map(|k| format!("::serde::elem(items, {k})?")).collect();
                            Some(format!(
                                "\"{vn}\" => {{ let items = ::serde::as_arr(inner, {n})?; Ok({name}::{vn}({})) }},",
                                elems.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(inner, \"{f}\")?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json(v: &::serde::JsonValue) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::JsonValue::Str(s) => match s.as_str() {{\n\
                 {}\n\
                 other => Err(::serde::DeError(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }},\n\
                 ::serde::JsonValue::Obj(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {}\n\
                 other => Err(::serde::DeError(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::DeError(format!(\"expected {name}, found {{other:?}}\"))),\n\
                 }}\n}}\n}}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}
