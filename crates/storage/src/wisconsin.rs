//! The Wisconsin benchmark relation layout \[BDT83\].
//!
//! The paper's experiments use relations of Wisconsin tuples: "two unique
//! integer attributes and a number of other attributes up to a total size of
//! 208 bytes per tuple" (§4.1). This module reproduces the classic 16
//! attribute layout: thirteen integers and three 52-character strings.
//!
//! The first two attributes (`unique1`, `unique2`) are the join keys used by
//! the regular multi-join query; they are always at positions 0 and 1, an
//! invariant the join projections in `mj-plan` rely on.

use mj_relalg::{Attribute, Schema, Tuple, Value};

/// Position of `unique1` in every Wisconsin(-shaped) tuple.
pub const UNIQUE1: usize = 0;
/// Position of `unique2` in every Wisconsin(-shaped) tuple.
pub const UNIQUE2: usize = 1;
/// Length of the Wisconsin string attributes.
pub const STRING_LEN: usize = 52;

/// The full 16-attribute Wisconsin schema (208 bytes of payload per tuple).
pub fn full_schema() -> Schema {
    Schema::new(vec![
        Attribute::int("unique1"),
        Attribute::int("unique2"),
        Attribute::int("two"),
        Attribute::int("four"),
        Attribute::int("ten"),
        Attribute::int("twenty"),
        Attribute::int("onePercent"),
        Attribute::int("tenPercent"),
        Attribute::int("twentyPercent"),
        Attribute::int("fiftyPercent"),
        Attribute::int("unique3"),
        Attribute::int("evenOnePercent"),
        Attribute::int("oddOnePercent"),
        Attribute::str("stringu1"),
        Attribute::str("stringu2"),
        Attribute::str("string4"),
    ])
}

/// A compact 3-attribute stand-in (`unique1`, `unique2`, `filler`) for tests
/// and simulations where moving 208-byte tuples through the real engine
/// would only cost time without changing any observable behaviour.
pub fn compact_schema() -> Schema {
    Schema::new(vec![
        Attribute::int("unique1"),
        Attribute::int("unique2"),
        Attribute::int("filler"),
    ])
}

/// Builds the cyclic string the Wisconsin benchmark derives from a unique
/// value: the value is written in base 26 over `A`..`Z` into the first seven
/// positions, padded with `x` to [`STRING_LEN`].
pub fn unique_string(mut v: i64) -> String {
    let mut s = vec![b'x'; STRING_LEN];
    // Benchmark strings use seven significant characters.
    for i in (0..7).rev() {
        s[i] = b'A' + (v.rem_euclid(26)) as u8;
        v /= 26;
    }
    // Safety of from_utf8: all bytes are ASCII by construction.
    String::from_utf8(s).expect("ascii")
}

/// The cyclic `string4` attribute: `AAAA...`, `HHHH...`, `OOOO...`,
/// `VVVV...` repeating with period four.
pub fn string4(index: i64) -> String {
    let c = match index.rem_euclid(4) {
        0 => 'A',
        1 => 'H',
        2 => 'O',
        _ => 'V',
    };
    std::iter::repeat_n(c, STRING_LEN).collect()
}

/// Builds one full Wisconsin tuple. `unique1`/`unique2` come from the
/// generator's permutations; `index` is the ordinal position used for the
/// cyclic attributes; `n` is the relation cardinality (for the percentage
/// attributes).
pub fn full_tuple(unique1: i64, unique2: i64, index: i64, n: i64) -> Tuple {
    let one_percent_bucket = (n / 100).max(1);
    let one_percent = unique1 % 100;
    Tuple::new(vec![
        Value::Int(unique1),
        Value::Int(unique2),
        Value::Int(unique1 % 2),
        Value::Int(unique1 % 4),
        Value::Int(unique1 % 10),
        Value::Int(unique1 % 20),
        Value::Int(one_percent),
        Value::Int(unique1 % 10),
        Value::Int(unique1 % 5),
        Value::Int(unique1 % 2),
        Value::Int(unique1 / one_percent_bucket),
        Value::Int(one_percent * 2),
        Value::Int(one_percent * 2 + 1),
        Value::str(unique_string(unique1)),
        Value::str(unique_string(unique2)),
        Value::str(string4(index)),
    ])
}

/// Builds one compact Wisconsin tuple (see [`compact_schema`]).
pub fn compact_tuple(unique1: i64, unique2: i64, index: i64) -> Tuple {
    Tuple::new(vec![
        Value::Int(unique1),
        Value::Int(unique2),
        Value::Int(index),
    ])
}

/// Nominal on-the-wire tuple size the paper quotes (bytes). The simulator
/// charges network costs per tuple assuming this size.
pub const TUPLE_BYTES: usize = 208;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_schema_has_16_attributes() {
        let s = full_schema();
        assert_eq!(s.arity(), 16);
        assert_eq!(s.attr(UNIQUE1).unwrap().name, "unique1");
        assert_eq!(s.attr(UNIQUE2).unwrap().name, "unique2");
    }

    #[test]
    fn full_tuple_matches_schema() {
        let s = full_schema();
        let t = full_tuple(123, 456, 0, 1000);
        assert!(s.validate(&t).is_ok());
    }

    #[test]
    fn compact_tuple_matches_schema() {
        let s = compact_schema();
        let t = compact_tuple(1, 2, 3);
        assert!(s.validate(&t).is_ok());
    }

    #[test]
    fn unique_strings_are_distinct_and_fixed_width() {
        let a = unique_string(0);
        let b = unique_string(1);
        let c = unique_string(26);
        assert_eq!(a.len(), STRING_LEN);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        assert!(a.ends_with('x'));
    }

    #[test]
    fn string4_cycles_with_period_four() {
        assert_eq!(string4(0), string4(4));
        assert_ne!(string4(0), string4(1));
        assert_ne!(string4(1), string4(2));
        assert_ne!(string4(2), string4(3));
    }

    #[test]
    fn full_tuple_payload_is_approximately_208_bytes() {
        // 13 ints * 8 + 3 strings * 52 = 104 + 156 = 260 raw; the benchmark
        // counts 208 by packing ints as 4 bytes. We only assert the order of
        // magnitude so the estimate stays honest.
        let t = full_tuple(1, 2, 0, 100);
        assert!(t.est_bytes() >= TUPLE_BYTES);
    }
}
