//! Deterministic Wisconsin relation generator.
//!
//! Reproduces the PRISMA data generator as used in §4.1: every relation has
//! `n` tuples; `unique1` and `unique2` are *independent* random permutations
//! of `0..n`, so there is no correlation between the two attributes of one
//! relation, nor between the unique attributes of different relations. This
//! is exactly what makes every join of the regular query a perfect 1-to-1
//! match on `unique1`.

use std::sync::Arc;

use mj_relalg::{Relation, Schema, Tuple};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::wisconsin;

/// Whether to generate full 208-byte Wisconsin tuples or a compact
/// stand-in that preserves the join-relevant attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadMode {
    /// Full 16-attribute Wisconsin tuples.
    Full,
    /// Compact `(unique1, unique2, filler)` tuples.
    Compact,
}

/// Deterministic generator for Wisconsin relations.
#[derive(Clone, Debug)]
pub struct WisconsinGenerator {
    n: usize,
    seed: u64,
    payload: PayloadMode,
}

impl WisconsinGenerator {
    /// Creates a generator for relations of `n` tuples. The same
    /// `(n, seed)` always generates the same data.
    pub fn new(n: usize, seed: u64) -> Self {
        WisconsinGenerator {
            n,
            seed,
            payload: PayloadMode::Compact,
        }
    }

    /// Selects full or compact tuples (default: compact).
    pub fn with_payload(mut self, payload: PayloadMode) -> Self {
        self.payload = payload;
        self
    }

    /// Relation cardinality this generator produces.
    pub fn cardinality(&self) -> usize {
        self.n
    }

    /// The schema of generated relations.
    pub fn schema(&self) -> Schema {
        match self.payload {
            PayloadMode::Full => wisconsin::full_schema(),
            PayloadMode::Compact => wisconsin::compact_schema(),
        }
    }

    fn permutation(&self, stream: u64) -> Vec<i64> {
        let mut perm: Vec<i64> = (0..self.n as i64).collect();
        // Derive a distinct RNG stream per (seed, relation, attribute) so
        // the permutations are mutually independent.
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ stream);
        perm.shuffle(&mut rng);
        perm
    }

    /// Generates the `index`-th relation (relations of one query use
    /// indices `0..k` so their keys are mutually uncorrelated).
    pub fn generate(&self, index: usize) -> Relation {
        let u1 = self.permutation(index as u64 * 2 + 1);
        let u2 = self.permutation(index as u64 * 2 + 2);
        let schema = Arc::new(self.schema());
        let mut tuples = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let t: Tuple = match self.payload {
                PayloadMode::Full => wisconsin::full_tuple(u1[i], u2[i], i as i64, self.n as i64),
                PayloadMode::Compact => wisconsin::compact_tuple(u1[i], u2[i], i as i64),
            };
            tuples.push(t);
        }
        Relation::new_unchecked(schema, tuples)
    }

    /// Generates `count` mutually-uncorrelated relations named
    /// `prefix0..prefix{count-1}`.
    pub fn generate_named(&self, prefix: &str, count: usize) -> Vec<(String, Arc<Relation>)> {
        (0..count)
            .map(|i| (format!("{prefix}{i}"), Arc::new(self.generate(i))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn unique1_and_unique2_are_permutations() {
        let g = WisconsinGenerator::new(100, 42);
        let r = g.generate(0);
        let u1: HashSet<i64> = r.iter().map(|t| t.int(0).unwrap()).collect();
        let u2: HashSet<i64> = r.iter().map(|t| t.int(1).unwrap()).collect();
        assert_eq!(u1.len(), 100);
        assert_eq!(u2.len(), 100);
        assert!(u1.iter().all(|&v| (0..100).contains(&v)));
        assert!(u2.iter().all(|&v| (0..100).contains(&v)));
    }

    #[test]
    fn attributes_are_not_correlated() {
        // With independent permutations, unique1 == unique2 should hold for
        // about 1 tuple in n, not for most tuples.
        let g = WisconsinGenerator::new(1000, 7);
        let r = g.generate(0);
        let equal = r
            .iter()
            .filter(|t| t.int(0).unwrap() == t.int(1).unwrap())
            .count();
        assert!(equal < 50, "suspicious correlation: {equal} equal pairs");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WisconsinGenerator::new(50, 9).generate(3);
        let b = WisconsinGenerator::new(50, 9).generate(3);
        let c = WisconsinGenerator::new(50, 10).generate(3);
        assert!(a.multiset_eq(&b));
        assert!(!a.multiset_eq(&c));
    }

    #[test]
    fn different_indices_differ() {
        let g = WisconsinGenerator::new(50, 9);
        assert!(!g.generate(0).multiset_eq(&g.generate(1)));
    }

    #[test]
    fn full_payload_validates() {
        let g = WisconsinGenerator::new(10, 1).with_payload(PayloadMode::Full);
        let r = g.generate(0);
        assert_eq!(r.schema().arity(), 16);
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn generate_named_yields_prefixed_relations() {
        let g = WisconsinGenerator::new(10, 1);
        let rels = g.generate_named("R", 3);
        assert_eq!(rels.len(), 3);
        assert_eq!(rels[0].0, "R0");
        assert_eq!(rels[2].0, "R2");
    }
}
