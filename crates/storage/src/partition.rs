//! Partitioning functions.
//!
//! The same hash function is used for initial fragmentation and for the
//! engine's mid-query redistribution (hash split), so that "ideal data
//! fragmentation" (§4.1) really does let the first join of each base
//! relation skip redistribution.

use mj_relalg::{RelalgError, Relation, Result, Tuple};

/// Maps a join key to a partition in `0..parts`.
///
/// Delegates to the workspace-wide canonical hash
/// ([`mj_relalg::hash::bucket_of`]) so fragmentation, redistribution, and
/// the join tables all agree. `parts` must be positive; the public
/// partitioning entry points in this module validate it once before their
/// per-tuple loops.
#[inline]
pub fn hash_key(key: i64, parts: usize) -> usize {
    mj_relalg::hash::bucket_of(key, parts)
}

/// Rejects a zero partition count before any per-tuple arithmetic runs.
/// Without this, release builds hit integer remainder-by-zero (hash) or
/// `parts - 1` underflow (split) panics.
fn ensure_parts(parts: usize) -> Result<()> {
    if parts == 0 {
        return Err(RelalgError::InvalidPartitioning(
            "partition count must be positive".into(),
        ));
    }
    Ok(())
}

/// Rejects relations whose row indices do not fit the `u32` index vectors
/// used by [`partition_indices`]. In release builds an unchecked `i as u32`
/// would silently wrap and gather the wrong rows.
fn ensure_u32_indexable(rows: usize) -> Result<()> {
    if rows > u32::MAX as usize {
        return Err(RelalgError::InvalidPartitioning(format!(
            "relation of {rows} rows exceeds the u32 row-index cap ({})",
            u32::MAX
        )));
    }
    Ok(())
}

fn split_by<F>(input: &Relation, parts: usize, assign: F) -> Result<Vec<Relation>>
where
    F: Fn(usize, &Tuple) -> Result<usize>,
{
    ensure_parts(parts)?;
    let schema = input.schema().clone();
    let mut out: Vec<Vec<Tuple>> = (0..parts)
        .map(|_| Vec::with_capacity(input.len() / parts + 1))
        .collect();
    for (i, t) in input.iter().enumerate() {
        let p = assign(i, t)?;
        // An out-of-range assignment is a router/partitioner bug; clamping
        // it would silently misplace the tuple and mask the defect.
        if p >= parts {
            return Err(RelalgError::InvalidPartitioning(format!(
                "row {i} assigned to partition {p}, but only {parts} partitions exist"
            )));
        }
        out[p].push(t.clone());
    }
    Ok(out
        .into_iter()
        .map(|tuples| Relation::new_unchecked(schema.clone(), tuples))
        .collect())
}

/// Computes, for each fragment, the row indices of `input` that hash to
/// it. Partitioning by index performs no tuple movement at all; the
/// fragments are materialized later with [`Relation::gather`], which
/// shares tuple payloads instead of deep-copying rows.
pub fn partition_indices(input: &Relation, parts: usize, key_col: usize) -> Result<Vec<Vec<u32>>> {
    ensure_parts(parts)?;
    ensure_u32_indexable(input.len())?;
    // Counting pass sizes every index vector exactly — no growth churn.
    let mut counts = vec![0usize; parts];
    for t in input.iter() {
        counts[hash_key(t.int(key_col)?, parts)] += 1;
    }
    let mut out: Vec<Vec<u32>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for (i, t) in input.iter().enumerate() {
        out[hash_key(t.int(key_col)?, parts)].push(i as u32);
    }
    Ok(out)
}

/// Hash-partitions `input` into `parts` fragments on the integer column
/// `key_col`. Two-pass, index-based: rows are never deep-copied, each
/// fragment is gathered from shared tuples in one exactly-sized
/// allocation.
pub fn hash_partition(input: &Relation, parts: usize, key_col: usize) -> Result<Vec<Relation>> {
    partition_indices(input, parts, key_col)?
        .iter()
        .map(|idx| input.gather(idx))
        .collect()
}

/// Round-robin partitions `input` into `parts` fragments.
pub fn round_robin_partition(input: &Relation, parts: usize) -> Result<Vec<Relation>> {
    split_by(input, parts, |i, _| Ok(i % parts))
}

/// Range-partitions `input` on integer column `key_col` using the given
/// upper `bounds` (exclusive); tuples above the last bound go to the last
/// fragment. Produces `bounds.len() + 1` fragments. `bounds` must be
/// sorted ascending — `partition_point` assumes a sorted slice, so
/// unsorted bounds would silently scatter tuples into wrong fragments.
pub fn range_partition(input: &Relation, bounds: &[i64], key_col: usize) -> Result<Vec<Relation>> {
    if let Some(w) = bounds.windows(2).find(|w| w[0] > w[1]) {
        return Err(RelalgError::InvalidPartitioning(format!(
            "range bounds must be sorted ascending, found {} before {}",
            w[0], w[1]
        )));
    }
    let parts = bounds.len() + 1;
    split_by(input, parts, |_, t| {
        let k = t.int(key_col)?;
        Ok(bounds.partition_point(|&b| b <= k))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::{Attribute, Schema};

    fn rel(n: i64) -> Relation {
        let schema = Schema::new(vec![Attribute::int("k")]).shared();
        Relation::new(schema, (0..n).map(|v| Tuple::from_ints(&[v])).collect()).unwrap()
    }

    #[test]
    fn hash_partition_is_complete_and_consistent() {
        let r = rel(1000);
        let parts = hash_partition(&r, 7, 0).unwrap();
        assert_eq!(parts.len(), 7);
        assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), 1000);
        for (p, frag) in parts.iter().enumerate() {
            for t in frag {
                assert_eq!(hash_key(t.int(0).unwrap(), 7), p);
            }
        }
    }

    #[test]
    fn hash_partition_is_roughly_balanced_on_dense_keys() {
        let r = rel(10_000);
        let parts = hash_partition(&r, 8, 0).unwrap();
        for frag in &parts {
            // Expected 1250 per fragment; allow generous slack.
            assert!(frag.len() > 1000 && frag.len() < 1500, "got {}", frag.len());
        }
    }

    #[test]
    fn round_robin_is_balanced_exactly() {
        let parts = round_robin_partition(&rel(10), 3).unwrap();
        let sizes: Vec<usize> = parts.iter().map(Relation::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn range_partition_respects_bounds() {
        let parts = range_partition(&rel(10), &[3, 7], 0).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 3); // 0,1,2
        assert_eq!(parts[1].len(), 4); // 3..6
        assert_eq!(parts[2].len(), 3); // 7..9
    }

    #[test]
    fn single_partition_keeps_everything() {
        let parts = hash_partition(&rel(5), 1, 0).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 5);
    }

    #[test]
    fn partition_indices_agree_with_hash_partition() {
        let r = rel(500);
        let idx = partition_indices(&r, 5, 0).unwrap();
        let frags = hash_partition(&r, 5, 0).unwrap();
        assert_eq!(idx.len(), 5);
        for (ix, frag) in idx.iter().zip(&frags) {
            assert_eq!(ix.len(), frag.len());
        }
        assert_eq!(idx.iter().map(Vec::len).sum::<usize>(), 500);
    }

    #[test]
    fn fragments_share_payloads_instead_of_deep_copying() {
        // Wide rows use the shared representation; partitioning must hand
        // out refcount bumps, not copies.
        let schema =
            Schema::new((0..6).map(|i| Attribute::int(format!("c{i}"))).collect()).shared();
        let r = Relation::new(
            schema,
            (0..100i64)
                .map(|v| Tuple::from_ints(&[v, v, v, v, v, v]))
                .collect(),
        )
        .unwrap();
        let frags = hash_partition(&r, 4, 0).unwrap();
        for frag in &frags {
            for t in frag {
                let original = r
                    .iter()
                    .find(|o| o.int(0).unwrap() == t.int(0).unwrap())
                    .unwrap();
                assert!(Tuple::ptr_eq(t, original), "fragment deep-copied a row");
            }
        }
    }

    #[test]
    fn hash_key_stays_in_range() {
        for k in -100..100 {
            for p in 1..10 {
                assert!(hash_key(k, p) < p);
            }
        }
    }

    #[test]
    fn zero_parts_errors_instead_of_panicking() {
        // Regression: these panicked in release builds (remainder-by-zero
        // in the hash, `parts - 1` underflow in split_by).
        let r = rel(10);
        assert!(hash_partition(&r, 0, 0).is_err());
        assert!(partition_indices(&r, 0, 0).is_err());
        assert!(round_robin_partition(&r, 0).is_err());
    }

    #[test]
    fn out_of_range_assignment_errors_instead_of_clamping() {
        // Regression: split_by used to clamp with `p.min(parts - 1)`,
        // silently misplacing tuples from a buggy assigner.
        let r = rel(4);
        let err = split_by(&r, 2, |_, t| Ok(t.int(0).unwrap() as usize)).unwrap_err();
        assert!(
            err.to_string().contains("partition"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn unsorted_range_bounds_rejected() {
        // Regression: partition_point on unsorted bounds yields silently
        // wrong fragments; the entry point must reject them.
        let r = rel(10);
        assert!(range_partition(&r, &[7, 3], 0).is_err());
        // Sorted-with-duplicates stays legal (the duplicate fragment is
        // simply empty).
        let parts = range_partition(&r, &[3, 3, 7], 0).unwrap();
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), 10);
        assert_eq!(parts[1].len(), 0);
    }

    #[test]
    fn u32_row_index_cap_is_enforced() {
        // The boundary check itself (a >u32::MAX relation cannot be
        // materialized in a test, so the guard is exercised directly).
        assert!(ensure_u32_indexable(u32::MAX as usize).is_ok());
        assert!(ensure_u32_indexable(u32::MAX as usize + 1).is_err());
        let err = ensure_u32_indexable(u32::MAX as usize + 1).unwrap_err();
        assert!(err.to_string().contains("row-index cap"));
    }
}
