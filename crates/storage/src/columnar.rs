//! Columnar fragment scans.
//!
//! Bridges the row-oriented fragment store to the engine's columnar
//! execution layer: a scan converts a stored fragment to a
//! [`ColumnBatch`] once, and bucket-restricted scans (the `Filtered`
//! operand an `RD`-redistributed join reads) hash the whole key column and
//! gather the matching rows in one pass instead of testing tuples one at a
//! time.

use mj_relalg::column::{bucket_keys, ColumnBatch};
use mj_relalg::{Relation, Result};

/// Scans a stored fragment into columns (one typed buffer per attribute).
pub fn scan_columns(fragment: &Relation) -> Result<ColumnBatch> {
    ColumnBatch::from_relation(fragment)
}

/// Scans the rows of `fragment` whose `key_col` hashes to `bucket` among
/// `of` buckets, emitting them as columns. The key column is hashed
/// vectorized ([`bucket_keys`]) and the survivors gathered column-wise —
/// the columnar form of the aligned-fragment read that "ideal
/// fragmentation" (§4.1) relies on.
pub fn scan_bucket_columns(
    fragment: &Relation,
    key_col: usize,
    bucket: usize,
    of: usize,
) -> Result<ColumnBatch> {
    let cols = scan_columns(fragment)?;
    if of <= 1 {
        return Ok(cols);
    }
    let keys = cols.int_col(key_col)?;
    let mut dests = Vec::new();
    bucket_keys(keys, of, &mut dests);
    let sel: Vec<u32> = dests
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d as usize == bucket)
        .map(|(i, _)| i as u32)
        .collect();
    let mut out = ColumnBatch::shapeless();
    out.append_gather(&cols, &sel)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::hash::bucket_of;
    use mj_relalg::{Attribute, Schema, Tuple};

    fn rel(n: i64) -> Relation {
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        Relation::new(
            schema,
            (0..n).map(|k| Tuple::from_ints(&[k, k * 10])).collect(),
        )
        .unwrap()
    }

    #[test]
    fn scan_emits_all_rows_as_columns() {
        let r = rel(10);
        let cols = scan_columns(&r).unwrap();
        assert_eq!(cols.rows(), 10);
        assert_eq!(cols.int_col(1).unwrap()[3], 30);
    }

    #[test]
    fn bucket_scan_matches_scalar_hash_partition() {
        let r = rel(100);
        let of = 4;
        let mut total = 0;
        for bucket in 0..of {
            let cols = scan_bucket_columns(&r, 0, bucket, of).unwrap();
            for &k in cols.int_col(0).unwrap() {
                assert_eq!(bucket_of(k, of), bucket);
            }
            total += cols.rows();
        }
        assert_eq!(total, 100, "buckets partition the fragment exactly");
    }

    #[test]
    fn single_bucket_scan_is_a_full_scan() {
        let r = rel(7);
        let cols = scan_bucket_columns(&r, 0, 0, 1).unwrap();
        assert_eq!(cols.rows(), 7);
    }
}
