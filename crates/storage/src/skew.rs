//! Skewed data generation for the skew ablation.
//!
//! The paper's trade-off analysis (§3.5) assumes non-skewed data
//! partitioning; the reproduction quantifies what happens when that
//! assumption is violated by generating join keys from a Zipf distribution
//! instead of a permutation.

use std::sync::Arc;

use mj_relalg::Relation;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::wisconsin;

/// Draws `n` keys from a Zipf(`theta`) distribution over `0..domain`.
/// `theta = 0` is uniform; `theta ~ 1` is heavily skewed. Uses the inverse
/// CDF over precomputed cumulative weights.
pub fn zipf_keys(n: usize, domain: usize, theta: f64, seed: u64) -> Vec<i64> {
    assert!(domain > 0, "domain must be positive");
    assert!(theta >= 0.0, "theta must be non-negative");
    // Cumulative weights: w_i = 1 / (i+1)^theta.
    let mut cdf = Vec::with_capacity(domain);
    let mut total = 0.0f64;
    for i in 0..domain {
        total += 1.0 / ((i + 1) as f64).powf(theta);
        cdf.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen::<f64>() * total;
        // partition_point returns the first index with cdf[i] >= u.
        let idx = cdf.partition_point(|&c| c < u).min(domain - 1);
        keys.push(idx as i64);
    }
    keys
}

/// Generates a compact Wisconsin-shaped relation whose `unique1` keys are
/// Zipf-distributed over `0..n` (so self-similar skew across relations),
/// while `unique2` stays a permutation so projections keep working.
pub fn skewed_relation(n: usize, theta: f64, seed: u64) -> Relation {
    let keys = zipf_keys(n, n, theta, seed);
    let schema = Arc::new(wisconsin::compact_schema());
    let mut tuples = Vec::with_capacity(n);
    for (i, &k) in keys.iter().enumerate() {
        tuples.push(wisconsin::compact_tuple(k, i as i64, i as i64));
    }
    Relation::new_unchecked(schema, tuples)
}

/// The fraction of tuples captured by the most frequent key — a simple
/// scalar skew metric used by tests and the ablation report.
pub fn top_key_fraction(keys: &[i64]) -> f64 {
    if keys.is_empty() {
        return 0.0;
    }
    let mut counts = std::collections::HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0usize) += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    max as f64 / keys.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let keys = zipf_keys(10_000, 100, 0.0, 1);
        let top = top_key_fraction(&keys);
        assert!(top < 0.03, "uniform top fraction was {top}");
    }

    #[test]
    fn high_theta_is_skewed() {
        let uniform = top_key_fraction(&zipf_keys(10_000, 100, 0.0, 2));
        let skewed = top_key_fraction(&zipf_keys(10_000, 100, 1.0, 2));
        assert!(skewed > 3.0 * uniform, "uniform={uniform}, skewed={skewed}");
    }

    #[test]
    fn keys_stay_in_domain() {
        let keys = zipf_keys(1000, 50, 0.8, 3);
        assert!(keys.iter().all(|&k| (0..50).contains(&k)));
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(zipf_keys(100, 10, 0.5, 7), zipf_keys(100, 10, 0.5, 7));
        assert_ne!(zipf_keys(100, 10, 0.5, 7), zipf_keys(100, 10, 0.5, 8));
    }

    #[test]
    fn skewed_relation_shape() {
        let r = skewed_relation(500, 1.0, 4);
        assert_eq!(r.len(), 500);
        assert_eq!(r.schema().arity(), 3);
    }

    #[test]
    fn top_key_fraction_edge_cases() {
        assert_eq!(top_key_fraction(&[]), 0.0);
        assert_eq!(top_key_fraction(&[1, 1, 1]), 1.0);
    }
}
