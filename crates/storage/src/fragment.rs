//! Fragmented relations: a relation split over a set of processors.
//!
//! The paper starts every query from its "ideal data fragmentation": each
//! base relation is fragmented on the join attribute of its first join, over
//! exactly the processors used for that join (§4.1). [`FragmentedRelation`]
//! records both the fragments and the scheme that produced them so the
//! engine can recognize when redistribution is unnecessary.

use mj_relalg::{RelalgError, Relation, Result};
use std::sync::Arc;

use crate::partition;

/// How a relation was split into fragments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Hash partitioned on the given column with [`partition::hash_key`].
    Hash {
        /// Key column index.
        col: usize,
    },
    /// Round-robin (balanced, but not key-aligned).
    RoundRobin,
    /// Range partitioned on a column with explicit upper bounds.
    Range {
        /// Key column index.
        col: usize,
        /// Exclusive upper bounds between fragments.
        bounds: Vec<i64>,
    },
}

/// A named relation split into per-processor fragments.
#[derive(Clone, Debug)]
pub struct FragmentedRelation {
    name: String,
    scheme: PartitionScheme,
    fragments: Vec<Arc<Relation>>,
}

impl FragmentedRelation {
    /// Hash-fragments `relation` on `col` into `parts` fragments — the
    /// paper's "ideal" fragmentation for a join on `col` over `parts`
    /// processors.
    pub fn ideal(
        name: impl Into<String>,
        relation: &Relation,
        col: usize,
        parts: usize,
    ) -> Result<Self> {
        if parts == 0 {
            return Err(RelalgError::InvalidPlan(
                "cannot fragment over 0 processors".into(),
            ));
        }
        let fragments = partition::hash_partition(relation, parts, col)?
            .into_iter()
            .map(Arc::new)
            .collect();
        Ok(FragmentedRelation {
            name: name.into(),
            scheme: PartitionScheme::Hash { col },
            fragments,
        })
    }

    /// Round-robin fragmentation (used by the "full fragmentation"
    /// alternative the paper discusses and rejects).
    pub fn round_robin(name: impl Into<String>, relation: &Relation, parts: usize) -> Result<Self> {
        if parts == 0 {
            return Err(RelalgError::InvalidPlan(
                "cannot fragment over 0 processors".into(),
            ));
        }
        let fragments = partition::round_robin_partition(relation, parts)?
            .into_iter()
            .map(Arc::new)
            .collect();
        Ok(FragmentedRelation {
            name: name.into(),
            scheme: PartitionScheme::RoundRobin,
            fragments,
        })
    }

    /// Wraps pre-computed fragments.
    pub fn from_fragments(
        name: impl Into<String>,
        scheme: PartitionScheme,
        fragments: Vec<Arc<Relation>>,
    ) -> Result<Self> {
        if fragments.is_empty() {
            return Err(RelalgError::InvalidPlan(
                "a fragmented relation needs >=1 fragment".into(),
            ));
        }
        let arity = fragments[0].schema().arity();
        if fragments.iter().any(|f| f.schema().arity() != arity) {
            return Err(RelalgError::SchemaMismatch(
                "fragments disagree on arity".into(),
            ));
        }
        Ok(FragmentedRelation {
            name: name.into(),
            scheme,
            fragments,
        })
    }

    /// Logical relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The partitioning scheme.
    pub fn scheme(&self) -> &PartitionScheme {
        &self.scheme
    }

    /// Number of fragments (= processors holding the relation).
    pub fn parts(&self) -> usize {
        self.fragments.len()
    }

    /// The `i`-th fragment.
    pub fn fragment(&self, i: usize) -> Result<&Arc<Relation>> {
        self.fragments.get(i).ok_or(RelalgError::IndexOutOfBounds {
            index: i,
            arity: self.fragments.len(),
        })
    }

    /// All fragments.
    pub fn fragments(&self) -> &[Arc<Relation>] {
        &self.fragments
    }

    /// Total cardinality across fragments.
    pub fn total_len(&self) -> usize {
        self.fragments.iter().map(|f| f.len()).sum()
    }

    /// True if the fragmentation is hash-aligned for a join keyed on `col`
    /// over exactly `parts` processors (i.e. no redistribution needed).
    pub fn aligned_for(&self, col: usize, parts: usize) -> bool {
        self.scheme == PartitionScheme::Hash { col } && self.parts() == parts
    }

    /// Reassembles the fragments into a single relation (test/debug use).
    pub fn reassemble(&self) -> Relation {
        let schema = self.fragments[0].schema().clone();
        let mut tuples = Vec::with_capacity(self.total_len());
        for f in &self.fragments {
            tuples.extend(f.iter().cloned());
        }
        Relation::new_unchecked(schema, tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::{Attribute, Schema, Tuple};

    fn rel(n: i64) -> Relation {
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        Relation::new(
            schema,
            (0..n).map(|v| Tuple::from_ints(&[v, v * 10])).collect(),
        )
        .unwrap()
    }

    #[test]
    fn ideal_fragmentation_round_trips() {
        let r = rel(100);
        let f = FragmentedRelation::ideal("R", &r, 0, 4).unwrap();
        assert_eq!(f.parts(), 4);
        assert_eq!(f.total_len(), 100);
        assert!(f.reassemble().multiset_eq(&r));
        assert!(f.aligned_for(0, 4));
        assert!(!f.aligned_for(1, 4));
        assert!(!f.aligned_for(0, 8));
    }

    #[test]
    fn zero_parts_rejected() {
        assert!(FragmentedRelation::ideal("R", &rel(10), 0, 0).is_err());
        assert!(FragmentedRelation::round_robin("R", &rel(10), 0).is_err());
    }

    #[test]
    fn round_robin_not_aligned() {
        let f = FragmentedRelation::round_robin("R", &rel(10), 2).unwrap();
        assert!(!f.aligned_for(0, 2));
        assert_eq!(f.total_len(), 10);
    }

    #[test]
    fn from_fragments_validates() {
        let a = Arc::new(rel(3));
        let one_col = Relation::new(
            Schema::new(vec![Attribute::int("k")]).shared(),
            vec![Tuple::from_ints(&[1])],
        )
        .unwrap();
        assert!(
            FragmentedRelation::from_fragments("R", PartitionScheme::RoundRobin, vec![]).is_err()
        );
        assert!(FragmentedRelation::from_fragments(
            "R",
            PartitionScheme::RoundRobin,
            vec![a.clone(), Arc::new(one_col)]
        )
        .is_err());
        assert!(
            FragmentedRelation::from_fragments("R", PartitionScheme::RoundRobin, vec![a]).is_ok()
        );
    }

    #[test]
    fn fragment_access() {
        let f = FragmentedRelation::ideal("R", &rel(10), 0, 2).unwrap();
        assert!(f.fragment(0).is_ok());
        assert!(f.fragment(2).is_err());
        assert_eq!(f.name(), "R");
    }
}
