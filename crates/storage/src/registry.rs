//! The query-scoped fragment registry backing late materialization.
//!
//! A late-materialized plan replaces the payload columns of every base
//! relation with one packed row-reference column; the full-width payload
//! batches are *pinned* here, indexed by leaf id, until the query's final
//! gather resolves the surviving references. The registry is built once
//! during query setup (before any task runs) and then shared immutably, so
//! readers need no locks; it drops with the query, independently of the
//! [`FragmentStore`](crate::FragmentStore) reclaiming the scanned
//! (narrowed) fragments — cancelling a query with refs still in flight is
//! safe because the refs die with their batches while the registry keeps
//! the payload alive until teardown.

use std::sync::Arc;

use mj_relalg::column::ColumnBatch;
use mj_relalg::{RelalgError, Result};

/// Packs a leaf id and row index into one row reference
/// (`(leaf << 32) | row`).
pub fn pack_ref(leaf: u32, row: u32) -> u64 {
    ((leaf as u64) << 32) | row as u64
}

/// The leaf id of a packed row reference.
pub fn ref_leaf(r: u64) -> u32 {
    (r >> 32) as u32
}

/// The row index of a packed row reference.
pub fn ref_row(r: u64) -> u32 {
    r as u32
}

/// Pinned full-width payload batches of a late-materialized query, one
/// slot per join-tree leaf. Immutable after setup.
#[derive(Debug, Default)]
pub struct FragmentRegistry {
    slots: Vec<Option<Arc<ColumnBatch>>>,
}

impl FragmentRegistry {
    /// An empty registry with one slot per leaf.
    pub fn new(leaves: usize) -> Self {
        FragmentRegistry {
            slots: vec![None; leaves],
        }
    }

    /// Pins `batch` as the payload source of leaf `leaf` (setup only).
    pub fn set(&mut self, leaf: usize, batch: Arc<ColumnBatch>) {
        if leaf >= self.slots.len() {
            self.slots.resize(leaf + 1, None);
        }
        self.slots[leaf] = Some(batch);
    }

    /// The pinned payload batch of leaf `leaf`.
    pub fn get(&self, leaf: usize) -> Result<&Arc<ColumnBatch>> {
        self.slots
            .get(leaf)
            .and_then(|s| s.as_ref())
            .ok_or_else(|| RelalgError::InvalidPlan(format!("no pinned fragment for leaf {leaf}")))
    }

    /// Logical bytes pinned across all leaves — what the owning query's
    /// memory budget is charged for keeping payloads resolvable.
    pub fn est_bytes(&self) -> u64 {
        self.slots.iter().flatten().map(|b| b.est_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::column::ColumnLayout;
    use mj_relalg::Tuple;

    #[test]
    fn refs_pack_and_unpack() {
        let r = pack_ref(7, u32::MAX - 3);
        assert_eq!(ref_leaf(r), 7);
        assert_eq!(ref_row(r), u32::MAX - 3);
        assert_eq!(pack_ref(0, 0), 0);
    }

    #[test]
    fn registry_pins_and_accounts_batches() {
        let mut reg = FragmentRegistry::new(2);
        assert!(reg.get(0).is_err());
        let mut b = ColumnBatch::with_capacity(&ColumnLayout::ints(2), 2);
        b.push_tuple(&Tuple::from_ints(&[1, 2])).unwrap();
        reg.set(0, Arc::new(b));
        assert_eq!(reg.get(0).unwrap().rows(), 1);
        assert_eq!(reg.est_bytes(), 16);
        assert!(reg.get(1).is_err(), "unset slot");
        assert!(reg.get(9).is_err(), "out of range");
    }
}
