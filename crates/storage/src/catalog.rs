//! Catalog: named relations plus the statistics the phase-1 optimizer uses.

use mj_relalg::{RelalgError, Relation, RelationProvider, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Optimizer-visible statistics for a base relation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TableStats {
    /// Tuple count.
    pub cardinality: u64,
    /// Number of distinct values in the (primary) join key column. For
    /// Wisconsin relations this equals the cardinality (`unique1` is
    /// unique).
    pub distinct_keys: u64,
}

impl TableStats {
    /// Stats for a relation with a unique join key.
    pub fn unique_key(cardinality: u64) -> Self {
        TableStats {
            cardinality,
            distinct_keys: cardinality,
        }
    }
}

/// A thread-safe catalog of named relations and their statistics.
#[derive(Debug, Default)]
pub struct Catalog {
    entries: RwLock<HashMap<String, (Arc<Relation>, TableStats)>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a relation, deriving unique-key statistics from its size.
    pub fn register(&self, name: impl Into<String>, relation: Arc<Relation>) {
        let stats = TableStats::unique_key(relation.len() as u64);
        self.register_with_stats(name, relation, stats);
    }

    /// Registers a relation with explicit statistics (e.g. skewed keys).
    pub fn register_with_stats(
        &self,
        name: impl Into<String>,
        relation: Arc<Relation>,
        stats: TableStats,
    ) {
        self.entries.write().insert(name.into(), (relation, stats));
    }

    /// The statistics recorded for `name`.
    pub fn stats(&self, name: &str) -> Result<TableStats> {
        self.entries
            .read()
            .get(name)
            .map(|(_, s)| *s)
            .ok_or_else(|| RelalgError::UnknownRelation(name.to_string()))
    }

    /// Names of all registered relations (unordered).
    pub fn names(&self) -> Vec<String> {
        self.entries.read().keys().cloned().collect()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True if no relations are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

impl RelationProvider for Catalog {
    fn relation(&self, name: &str) -> Result<Arc<Relation>> {
        self.entries
            .read()
            .get(name)
            .map(|(r, _)| r.clone())
            .ok_or_else(|| RelalgError::UnknownRelation(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::{Attribute, Schema, Tuple};

    fn rel(n: i64) -> Arc<Relation> {
        let schema = Schema::new(vec![Attribute::int("k")]).shared();
        Arc::new(Relation::new(schema, (0..n).map(|v| Tuple::from_ints(&[v])).collect()).unwrap())
    }

    #[test]
    fn register_and_lookup() {
        let c = Catalog::new();
        assert!(c.is_empty());
        c.register("R", rel(10));
        assert_eq!(c.len(), 1);
        assert_eq!(c.relation("R").unwrap().len(), 10);
        assert_eq!(c.stats("R").unwrap().cardinality, 10);
        assert_eq!(c.stats("R").unwrap().distinct_keys, 10);
        assert!(c.relation("S").is_err());
        assert!(c.stats("S").is_err());
    }

    #[test]
    fn explicit_stats_override() {
        let c = Catalog::new();
        c.register_with_stats(
            "R",
            rel(10),
            TableStats {
                cardinality: 10,
                distinct_keys: 3,
            },
        );
        assert_eq!(c.stats("R").unwrap().distinct_keys, 3);
    }

    #[test]
    fn names_lists_everything() {
        let c = Catalog::new();
        c.register("A", rel(1));
        c.register("B", rel(2));
        let mut names = c.names();
        names.sort();
        assert_eq!(names, vec!["A", "B"]);
    }
}
