//! Catalog: named relations plus the statistics the phase-1 optimizer uses.

use mj_relalg::{RelalgError, Relation, RelationProvider, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Optimizer-visible statistics for a base relation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TableStats {
    /// Tuple count.
    pub cardinality: u64,
    /// Number of distinct values in the (primary) join key column. For
    /// Wisconsin relations this equals the cardinality (`unique1` is
    /// unique).
    pub distinct_keys: u64,
}

impl TableStats {
    /// Stats for a relation with a unique join key.
    pub fn unique_key(cardinality: u64) -> Self {
        TableStats {
            cardinality,
            distinct_keys: cardinality,
        }
    }
}

/// A thread-safe catalog of named relations and their statistics.
#[derive(Debug, Default)]
pub struct Catalog {
    entries: RwLock<HashMap<String, (Arc<Relation>, TableStats)>>,
    /// Distinct-value counts per (relation, column) — what the planner's
    /// selectivity formula `1 / max(d_left, d_right)` runs on. Columns
    /// without an entry fall back to [`TableStats`].
    column_distinct: RwLock<HashMap<(String, usize), u64>>,
    /// Monotonic mutation counter: bumped by every write path
    /// (`register*`, `set_column_distinct`, `analyze`). Cached query
    /// plans record the generation they were built against and must be
    /// re-validated when it moves — a stale plan never runs against a
    /// changed catalog.
    generation: AtomicU64,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The current mutation generation. Any catalog write (registration,
    /// statistics update, `analyze`) advances it; plan caches compare
    /// generations to detect staleness.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Registers a relation, deriving unique-key statistics from its size.
    pub fn register(&self, name: impl Into<String>, relation: Arc<Relation>) {
        let stats = TableStats::unique_key(relation.len() as u64);
        self.register_with_stats(name, relation, stats);
    }

    /// Registers a relation, erroring if the name is already taken. The
    /// check-and-insert is atomic under the catalog's write lock, so
    /// concurrent sessions cannot silently overwrite each other — the
    /// session front door's duplicate guard.
    pub fn register_new(&self, name: impl Into<String>, relation: Arc<Relation>) -> Result<()> {
        let name = name.into();
        let stats = TableStats::unique_key(relation.len() as u64);
        let mut entries = self.entries.write();
        if entries.contains_key(&name) {
            return Err(RelalgError::InvalidPlan(format!(
                "relation `{name}` is already registered"
            )));
        }
        entries.insert(name, (relation, stats));
        drop(entries);
        self.bump_generation();
        Ok(())
    }

    /// Registers a relation with explicit statistics (e.g. skewed keys).
    pub fn register_with_stats(
        &self,
        name: impl Into<String>,
        relation: Arc<Relation>,
        stats: TableStats,
    ) {
        self.entries.write().insert(name.into(), (relation, stats));
        self.bump_generation();
    }

    /// The statistics recorded for `name`.
    pub fn stats(&self, name: &str) -> Result<TableStats> {
        self.entries
            .read()
            .get(name)
            .map(|(_, s)| *s)
            .ok_or_else(|| RelalgError::UnknownRelation(name.to_string()))
    }

    /// Records the distinct-value count of one column of `name`.
    pub fn set_column_distinct(&self, name: impl Into<String>, column: usize, distinct: u64) {
        self.column_distinct
            .write()
            .insert((name.into(), column), distinct);
        self.bump_generation();
    }

    /// Scans the relation and records exact distinct counts for every
    /// column — O(rows × columns); meant for generated/benchmark data, not
    /// for production-size loads.
    pub fn analyze(&self, name: &str) -> Result<()> {
        let rel = self.relation(name)?;
        for col in 0..rel.schema().arity() {
            let mut seen = std::collections::HashSet::new();
            for tuple in rel.iter() {
                seen.insert(tuple.get(col)?.clone());
            }
            self.set_column_distinct(name, col, seen.len() as u64);
        }
        Ok(())
    }

    /// Distinct-value estimate for one column: the recorded per-column
    /// count if any, else [`TableStats::distinct_keys`] for column 0 (the
    /// primary join key), else the relation cardinality (assume unique).
    pub fn column_distinct(&self, name: &str, column: usize) -> Result<u64> {
        if let Some(d) = self.column_distinct.read().get(&(name.to_string(), column)) {
            return Ok(*d);
        }
        let stats = self.stats(name)?;
        Ok(if column == 0 {
            stats.distinct_keys
        } else {
            stats.cardinality
        })
    }

    /// Names of all registered relations (unordered).
    pub fn names(&self) -> Vec<String> {
        self.entries.read().keys().cloned().collect()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True if no relations are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

impl RelationProvider for Catalog {
    fn relation(&self, name: &str) -> Result<Arc<Relation>> {
        self.entries
            .read()
            .get(name)
            .map(|(r, _)| r.clone())
            .ok_or_else(|| RelalgError::UnknownRelation(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::{Attribute, Schema, Tuple};

    fn rel(n: i64) -> Arc<Relation> {
        let schema = Schema::new(vec![Attribute::int("k")]).shared();
        Arc::new(Relation::new(schema, (0..n).map(|v| Tuple::from_ints(&[v])).collect()).unwrap())
    }

    #[test]
    fn register_and_lookup() {
        let c = Catalog::new();
        assert!(c.is_empty());
        c.register("R", rel(10));
        assert_eq!(c.len(), 1);
        assert_eq!(c.relation("R").unwrap().len(), 10);
        assert_eq!(c.stats("R").unwrap().cardinality, 10);
        assert_eq!(c.stats("R").unwrap().distinct_keys, 10);
        assert!(c.relation("S").is_err());
        assert!(c.stats("S").is_err());
    }

    #[test]
    fn register_new_rejects_duplicates() {
        let c = Catalog::new();
        c.register_new("R", rel(5)).unwrap();
        let err = c.register_new("R", rel(7)).unwrap_err();
        assert!(err.to_string().contains("already registered"), "{err}");
        // The original registration is untouched.
        assert_eq!(c.relation("R").unwrap().len(), 5);
    }

    #[test]
    fn explicit_stats_override() {
        let c = Catalog::new();
        c.register_with_stats(
            "R",
            rel(10),
            TableStats {
                cardinality: 10,
                distinct_keys: 3,
            },
        );
        assert_eq!(c.stats("R").unwrap().distinct_keys, 3);
    }

    #[test]
    fn column_stats_fall_back_to_table_stats() {
        let c = Catalog::new();
        c.register("R", rel(10));
        // No per-column entries: col 0 uses distinct_keys, others cardinality.
        assert_eq!(c.column_distinct("R", 0).unwrap(), 10);
        assert_eq!(c.column_distinct("R", 3).unwrap(), 10);
        c.set_column_distinct("R", 3, 4);
        assert_eq!(c.column_distinct("R", 3).unwrap(), 4);
        assert!(c.column_distinct("missing", 0).is_err());
    }

    #[test]
    fn analyze_counts_exact_distincts() {
        let c = Catalog::new();
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        let tuples = (0..12).map(|i| Tuple::from_ints(&[i % 3, i])).collect();
        c.register("S", Arc::new(Relation::new(schema, tuples).unwrap()));
        c.analyze("S").unwrap();
        assert_eq!(c.column_distinct("S", 0).unwrap(), 3);
        assert_eq!(c.column_distinct("S", 1).unwrap(), 12);
    }

    #[test]
    fn generation_tracks_every_write_path() {
        let c = Catalog::new();
        let g0 = c.generation();
        c.register("R", rel(4));
        let g1 = c.generation();
        assert!(g1 > g0, "register bumps");
        c.register_new("S", rel(4)).unwrap();
        let g2 = c.generation();
        assert!(g2 > g1, "register_new bumps");
        // A *failed* register_new leaves the generation alone.
        assert!(c.register_new("S", rel(9)).is_err());
        assert_eq!(c.generation(), g2, "failed registration is not a write");
        c.set_column_distinct("R", 0, 2);
        let g3 = c.generation();
        assert!(g3 > g2, "stat update bumps");
        c.analyze("R").unwrap();
        assert!(c.generation() > g3, "analyze bumps");
        // Reads never move it.
        let g = c.generation();
        let _ = c.stats("R").unwrap();
        let _ = c.column_distinct("R", 0).unwrap();
        let _ = c.names();
        assert_eq!(c.generation(), g);
    }

    #[test]
    fn names_lists_everything() {
        let c = Catalog::new();
        c.register("A", rel(1));
        c.register("B", rel(2));
        let mut names = c.names();
        names.sort();
        assert_eq!(names, vec!["A", "B"]);
    }
}
