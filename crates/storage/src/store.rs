//! Per-node fragment store.
//!
//! Each PRISMA node holds relation fragments in its own main memory;
//! operation processes "access data fragments that are stored in the main
//! memory of their own processor directly" (§2.2). [`FragmentStore`] models
//! exactly that: node-local keyed fragment storage with byte accounting,
//! shared by the real engine's worker threads.
//!
//! One store can be shared by many concurrent queries: the node set grows
//! on demand ([`ensure_nodes`](FragmentStore::ensure_nodes)) so plans with
//! different logical processor counts coexist, and a query's intermediates
//! are namespaced by a caller-chosen prefix that
//! [`remove_prefix`](FragmentStore::remove_prefix) reclaims when the query
//! finishes.

use mj_relalg::{RelalgError, Relation, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

type NodeMemory = Arc<RwLock<HashMap<String, Arc<Relation>>>>;

/// Shared-nothing fragment storage for a growable set of logical
/// processors.
#[derive(Debug)]
pub struct FragmentStore {
    nodes: RwLock<Vec<NodeMemory>>,
}

impl FragmentStore {
    /// Creates a store for `nodes` processors.
    pub fn new(nodes: usize) -> Self {
        FragmentStore {
            nodes: RwLock::new(
                (0..nodes)
                    .map(|_| Arc::new(RwLock::new(HashMap::new())))
                    .collect(),
            ),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.read().len()
    }

    /// Grows the store to at least `nodes` processors (no-op if already
    /// large enough). Lets one shared store serve plans with different
    /// logical processor counts.
    pub fn ensure_nodes(&self, nodes: usize) {
        let mut v = self.nodes.write();
        while v.len() < nodes {
            v.push(Arc::new(RwLock::new(HashMap::new())));
        }
    }

    fn node(&self, node: usize) -> Result<NodeMemory> {
        let nodes = self.nodes.read();
        nodes
            .get(node)
            .cloned()
            .ok_or(RelalgError::IndexOutOfBounds {
                index: node,
                arity: nodes.len(),
            })
    }

    fn snapshot(&self) -> Vec<NodeMemory> {
        self.nodes.read().clone()
    }

    /// Stores `fragment` under `name` in `node`'s memory, replacing any
    /// previous fragment of that name.
    pub fn put(&self, node: usize, name: impl Into<String>, fragment: Arc<Relation>) -> Result<()> {
        self.node(node)?.write().insert(name.into(), fragment);
        Ok(())
    }

    /// Fetches the fragment stored under `name` at `node`.
    pub fn get(&self, node: usize, name: &str) -> Result<Arc<Relation>> {
        self.node(node)?
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| RelalgError::UnknownRelation(format!("{name}@node{node}")))
    }

    /// Removes the fragment stored under `name` at `node`, returning it.
    pub fn take(&self, node: usize, name: &str) -> Result<Arc<Relation>> {
        self.node(node)?
            .write()
            .remove(name)
            .ok_or_else(|| RelalgError::UnknownRelation(format!("{name}@node{node}")))
    }

    /// Drops every fragment named `name` on all nodes (used to free
    /// intermediate results once consumed).
    pub fn drop_all(&self, name: &str) {
        for n in self.snapshot() {
            n.write().remove(name);
        }
    }

    /// Drops every fragment whose name starts with `prefix` on all nodes —
    /// the reclamation hook for per-query namespaces in a shared store.
    /// Returns the estimated bytes freed, so the caller can credit them
    /// back to the owning query's memory budget.
    pub fn remove_prefix(&self, prefix: &str) -> usize {
        let mut freed = 0usize;
        for n in self.snapshot() {
            n.write().retain(|name, rel| {
                let keep = !name.starts_with(prefix);
                if !keep {
                    freed += rel.est_bytes();
                }
                keep
            });
        }
        freed
    }

    /// Approximate bytes resident at `node`.
    pub fn node_bytes(&self, node: usize) -> Result<usize> {
        Ok(self
            .node(node)?
            .read()
            .values()
            .map(|r| r.est_bytes())
            .sum())
    }

    /// Approximate bytes resident across all nodes.
    pub fn total_bytes(&self) -> usize {
        (0..self.nodes())
            .map(|n| self.node_bytes(n).unwrap_or(0))
            .sum()
    }

    /// Collects all fragments named `name` across nodes in node order
    /// (missing nodes are skipped).
    pub fn collect(&self, name: &str) -> Vec<Arc<Relation>> {
        let mut out = Vec::new();
        for n in self.snapshot() {
            if let Some(r) = n.read().get(name) {
                out.push(r.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::{Attribute, Schema, Tuple};

    fn rel(n: i64) -> Arc<Relation> {
        let schema = Schema::new(vec![Attribute::int("k")]).shared();
        Arc::new(Relation::new(schema, (0..n).map(|v| Tuple::from_ints(&[v])).collect()).unwrap())
    }

    #[test]
    fn put_get_take() {
        let s = FragmentStore::new(2);
        s.put(0, "R", rel(3)).unwrap();
        assert_eq!(s.get(0, "R").unwrap().len(), 3);
        assert!(s.get(1, "R").is_err());
        assert_eq!(s.take(0, "R").unwrap().len(), 3);
        assert!(s.get(0, "R").is_err());
    }

    #[test]
    fn out_of_range_node_errors() {
        let s = FragmentStore::new(1);
        assert!(s.put(5, "R", rel(1)).is_err());
        assert!(s.get(5, "R").is_err());
    }

    #[test]
    fn byte_accounting() {
        let s = FragmentStore::new(2);
        assert_eq!(s.total_bytes(), 0);
        s.put(0, "R", rel(10)).unwrap();
        s.put(1, "R", rel(20)).unwrap();
        assert!(s.node_bytes(0).unwrap() > 0);
        assert!(s.node_bytes(1).unwrap() > s.node_bytes(0).unwrap());
        assert_eq!(
            s.total_bytes(),
            s.node_bytes(0).unwrap() + s.node_bytes(1).unwrap()
        );
    }

    #[test]
    fn collect_and_drop_all() {
        let s = FragmentStore::new(3);
        s.put(0, "R", rel(1)).unwrap();
        s.put(2, "R", rel(2)).unwrap();
        s.put(1, "S", rel(3)).unwrap();
        assert_eq!(s.collect("R").len(), 2);
        s.drop_all("R");
        assert!(s.collect("R").is_empty());
        assert_eq!(s.collect("S").len(), 1);
    }

    #[test]
    fn grows_on_demand_and_clears_prefixes() {
        let s = FragmentStore::new(1);
        assert!(s.put(3, "q1:op0", rel(1)).is_err());
        s.ensure_nodes(4);
        assert_eq!(s.nodes(), 4);
        s.ensure_nodes(2); // never shrinks
        assert_eq!(s.nodes(), 4);
        s.put(3, "q1:op0", rel(1)).unwrap();
        s.put(0, "q1:op1", rel(2)).unwrap();
        s.put(0, "q2:op0", rel(3)).unwrap();
        let before = s.total_bytes();
        let freed = s.remove_prefix("q1:");
        assert_eq!(freed, before - s.total_bytes(), "freed bytes reported");
        assert!(freed > 0);
        assert!(s.collect("q1:op0").is_empty());
        assert!(s.collect("q1:op1").is_empty());
        assert_eq!(s.collect("q2:op0").len(), 1, "other queries untouched");
    }

    #[test]
    fn concurrent_access() {
        let s = Arc::new(FragmentStore::new(4));
        std::thread::scope(|scope| {
            for node in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        s.put(node, format!("f{i}"), rel(i)).unwrap();
                    }
                });
            }
        });
        assert_eq!(s.collect("f10").len(), 4);
    }
}
