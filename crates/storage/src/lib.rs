//! Main-memory storage substrate.
//!
//! Models the storage side of PRISMA/DB: a shared-nothing collection of node
//! memories holding relation *fragments*, a Wisconsin benchmark data
//! generator (the paper's test data, §4.1), partitioning functions used for
//! both initial fragmentation and mid-query redistribution, and a catalog
//! with the statistics the phase-1 optimizer consumes.

#![warn(missing_docs)]

pub mod catalog;
pub mod columnar;
pub mod fragment;
pub mod generator;
pub mod partition;
pub mod registry;
pub mod skew;
pub mod store;
pub mod wisconsin;

pub use catalog::{Catalog, TableStats};
pub use columnar::{scan_bucket_columns, scan_columns};
pub use fragment::{FragmentedRelation, PartitionScheme};
pub use generator::{PayloadMode, WisconsinGenerator};
pub use partition::{
    hash_key, hash_partition, partition_indices, range_partition, round_robin_partition,
};
pub use registry::{pack_ref, ref_leaf, ref_row, FragmentRegistry};
pub use store::FragmentStore;
