//! XRA: the logical operator tree (eXtended Relational Algebra).
//!
//! PRISMA/DB used XRA as the internal representation of queries; the
//! scheduler received an XRA program annotated with parallelism (degree and
//! placement per operator). In this reproduction the *logical* tree lives
//! here, while parallel annotations are produced by `mj-core` as a separate
//! physical IR (`mj-core`'s `plan_ir`). Keeping the logical tree free of
//! placement lets the sequential reference evaluator double as the
//! correctness oracle for every parallel backend.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use crate::error::{RelalgError, Result};
use crate::ops;
use crate::ops::{nested_loop::nested_loop_join, AggSpec};
use crate::predicate::Predicate;
use crate::projection::Projection;
use crate::relation::{Relation, RelationProvider};
use crate::schema::Schema;

/// Which hash-join algorithm a physical backend should use for a join node.
/// The sequential evaluator ignores the hint (it uses a nested-loop oracle);
/// the paper's strategies pick `Simple` for SP/SE/RD and `Pipelining` for FP
/// (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinAlgorithm {
    /// Two-phase build–probe hash join ("simple hash-join", §2.3.2).
    Simple,
    /// Symmetric single-phase hash join that builds a table on *both*
    /// operands and produces output as early as possible ("pipelining
    /// hash-join", \[WiA91\]).
    Pipelining,
}

impl fmt::Display for JoinAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinAlgorithm::Simple => write!(f, "simple"),
            JoinAlgorithm::Pipelining => write!(f, "pipelining"),
        }
    }
}

/// An equi-join condition plus the projection applied to matches.
///
/// `left_key`/`right_key` index into the respective operand schemas; the
/// projection indexes into the concatenation `left ++ right`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EquiJoin {
    /// Key column in the left operand.
    pub left_key: usize,
    /// Key column in the right operand.
    pub right_key: usize,
    /// Projection applied to each matching concatenated tuple.
    pub projection: Projection,
}

impl EquiJoin {
    /// Creates an equi-join spec.
    pub fn new(left_key: usize, right_key: usize, projection: Projection) -> Self {
        EquiJoin {
            left_key,
            right_key,
            projection,
        }
    }

    /// Output schema given the operand schemas.
    pub fn output_schema(&self, left: &Schema, right: &Schema) -> Result<Schema> {
        self.projection.output_schema(&left.concat(right))
    }

    /// Validates the key columns against the operand schemas.
    pub fn validate(&self, left: &Schema, right: &Schema) -> Result<()> {
        left.attr(self.left_key)?;
        right.attr(self.right_key)?;
        self.output_schema(left, right)?;
        Ok(())
    }
}

/// A logical XRA plan node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum XraNode {
    /// Scan of a named base relation.
    Scan {
        /// Catalog name of the relation.
        relation: String,
    },
    /// Selection.
    Select {
        /// Input plan.
        input: Box<XraNode>,
        /// Filter predicate.
        predicate: Predicate,
    },
    /// Projection.
    Project {
        /// Input plan.
        input: Box<XraNode>,
        /// Columns to keep.
        projection: Projection,
    },
    /// Hash equi-join.
    HashJoin {
        /// Left (build) operand.
        left: Box<XraNode>,
        /// Right (probe) operand.
        right: Box<XraNode>,
        /// Join condition and output projection.
        join: EquiJoin,
        /// Physical algorithm hint for parallel backends.
        algorithm: JoinAlgorithm,
    },
    /// Bag union of any number of inputs.
    UnionAll {
        /// Input plans (at least one).
        inputs: Vec<XraNode>,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input plan.
        input: Box<XraNode>,
        /// Grouping columns.
        group: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
}

impl XraNode {
    /// Convenience scan constructor.
    pub fn scan(relation: impl Into<String>) -> XraNode {
        XraNode::Scan {
            relation: relation.into(),
        }
    }

    /// Convenience join constructor.
    pub fn join(
        left: XraNode,
        right: XraNode,
        join: EquiJoin,
        algorithm: JoinAlgorithm,
    ) -> XraNode {
        XraNode::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            join,
            algorithm,
        }
    }

    /// Number of join nodes in the plan.
    pub fn join_count(&self) -> usize {
        match self {
            XraNode::Scan { .. } => 0,
            XraNode::Select { input, .. }
            | XraNode::Project { input, .. }
            | XraNode::Aggregate { input, .. } => input.join_count(),
            XraNode::HashJoin { left, right, .. } => 1 + left.join_count() + right.join_count(),
            XraNode::UnionAll { inputs } => inputs.iter().map(XraNode::join_count).sum(),
        }
    }

    /// Computes the output schema, resolving base relations via `provider`.
    /// Doubles as plan validation: every structural error surfaces here.
    pub fn schema(&self, provider: &dyn RelationProvider) -> Result<Schema> {
        match self {
            XraNode::Scan { relation } => {
                Ok(provider.relation(relation)?.schema().as_ref().clone())
            }
            XraNode::Select { input, .. } => input.schema(provider),
            XraNode::Project { input, projection } => {
                projection.output_schema(&input.schema(provider)?)
            }
            XraNode::HashJoin {
                left, right, join, ..
            } => {
                let ls = left.schema(provider)?;
                let rs = right.schema(provider)?;
                join.validate(&ls, &rs)?;
                join.output_schema(&ls, &rs)
            }
            XraNode::UnionAll { inputs } => {
                let first = inputs
                    .first()
                    .ok_or_else(|| RelalgError::InvalidPlan("union of zero inputs".into()))?;
                let schema = first.schema(provider)?;
                for other in &inputs[1..] {
                    let s = other.schema(provider)?;
                    if s.arity() != schema.arity() {
                        return Err(RelalgError::SchemaMismatch(
                            "union inputs have different arities".into(),
                        ));
                    }
                }
                Ok(schema)
            }
            XraNode::Aggregate { input, group, aggs } => {
                let in_schema = input.schema(provider)?;
                // Reuse the operator's schema computation on an empty input.
                let empty = Relation::empty(Arc::new(in_schema));
                Ok(ops::aggregate(&empty, group, aggs)
                    .map(|r| r.schema().as_ref().clone())
                    // MIN/MAX over the empty probe relation error; recompute
                    // group-less schemas structurally in that case.
                    .unwrap_or_else(|_| {
                        let mut attrs = Vec::new();
                        for &c in group.iter() {
                            if let Ok(a) = empty.schema().attr(c) {
                                attrs.push(a.clone());
                            }
                        }
                        for a in aggs {
                            attrs.push(crate::schema::Attribute::int(a.name.clone()));
                        }
                        Schema::new(attrs)
                    }))
            }
        }
    }

    /// Sequential reference evaluation. Joins use the nested-loop oracle so
    /// that this path shares no code with the hash joins it validates.
    pub fn eval(&self, provider: &dyn RelationProvider) -> Result<Relation> {
        match self {
            XraNode::Scan { relation } => Ok(provider.relation(relation)?.as_ref().clone()),
            XraNode::Select { input, predicate } => ops::filter(&input.eval(provider)?, predicate),
            XraNode::Project { input, projection } => {
                ops::project(&input.eval(provider)?, projection)
            }
            XraNode::HashJoin {
                left, right, join, ..
            } => {
                let l = left.eval(provider)?;
                let r = right.eval(provider)?;
                nested_loop_join(&l, &r, join)
            }
            XraNode::UnionAll { inputs } => {
                let rels: Vec<Relation> = inputs
                    .iter()
                    .map(|n| n.eval(provider))
                    .collect::<Result<_>>()?;
                ops::union_all(&rels)
            }
            XraNode::Aggregate { input, group, aggs } => {
                ops::aggregate(&input.eval(provider)?, group, aggs)
            }
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            XraNode::Scan { relation } => writeln!(f, "{pad}Scan {relation}"),
            XraNode::Select { input, predicate } => {
                writeln!(f, "{pad}Select {predicate}")?;
                input.fmt_indent(f, depth + 1)
            }
            XraNode::Project { input, projection } => {
                writeln!(f, "{pad}Project {projection}")?;
                input.fmt_indent(f, depth + 1)
            }
            XraNode::HashJoin {
                left,
                right,
                join,
                algorithm,
            } => {
                writeln!(
                    f,
                    "{pad}HashJoin[{algorithm}] l#{} = r#{} {}",
                    join.left_key, join.right_key, join.projection
                )?;
                left.fmt_indent(f, depth + 1)?;
                right.fmt_indent(f, depth + 1)
            }
            XraNode::UnionAll { inputs } => {
                writeln!(f, "{pad}UnionAll")?;
                for i in inputs {
                    i.fmt_indent(f, depth + 1)?;
                }
                Ok(())
            }
            XraNode::Aggregate { input, group, aggs } => {
                let names: Vec<&str> = aggs.iter().map(|a| a.name.as_str()).collect();
                writeln!(f, "{pad}Aggregate group={group:?} aggs={names:?}")?;
                input.fmt_indent(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for XraNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AggFunc;
    use crate::schema::Attribute;
    use crate::tuple::Tuple;
    use std::collections::HashMap;

    fn provider() -> HashMap<String, Arc<Relation>> {
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        let mk = |rows: &[[i64; 2]]| {
            Arc::new(
                Relation::new(
                    schema.clone(),
                    rows.iter().map(|r| Tuple::from_ints(r)).collect(),
                )
                .unwrap(),
            )
        };
        let mut m = HashMap::new();
        m.insert("r".to_string(), mk(&[[1, 10], [2, 20], [3, 30]]));
        m.insert("s".to_string(), mk(&[[2, 200], [3, 300], [5, 500]]));
        m
    }

    fn join_plan() -> XraNode {
        XraNode::join(
            XraNode::scan("r"),
            XraNode::scan("s"),
            EquiJoin::new(0, 0, Projection::new(vec![0, 1, 3])),
            JoinAlgorithm::Simple,
        )
    }

    #[test]
    fn eval_join() {
        let out = join_plan().eval(&provider()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn schema_propagates_and_validates() {
        let p = provider();
        let s = join_plan().schema(&p).unwrap();
        assert_eq!(s.arity(), 3);

        let bad = XraNode::join(
            XraNode::scan("r"),
            XraNode::scan("s"),
            EquiJoin::new(9, 0, Projection::new(vec![0])),
            JoinAlgorithm::Simple,
        );
        assert!(bad.schema(&p).is_err());
    }

    #[test]
    fn select_project_aggregate_pipeline() {
        let p = provider();
        let plan = XraNode::Aggregate {
            input: Box::new(XraNode::Project {
                input: Box::new(XraNode::Select {
                    input: Box::new(XraNode::scan("r")),
                    predicate: Predicate::cmp_int(1, crate::predicate::CmpOp::Ge, 20),
                }),
                projection: Projection::new(vec![1]),
            }),
            group: vec![],
            aggs: vec![AggSpec::new(AggFunc::Sum, 0, "total")],
        };
        let out = plan.eval(&p).unwrap();
        assert_eq!(out.tuples()[0], Tuple::from_ints(&[50]));
        assert_eq!(plan.schema(&p).unwrap().attr(0).unwrap().name, "total");
    }

    #[test]
    fn union_all_eval_and_schema() {
        let p = provider();
        let plan = XraNode::UnionAll {
            inputs: vec![XraNode::scan("r"), XraNode::scan("s")],
        };
        assert_eq!(plan.eval(&p).unwrap().len(), 6);
        assert_eq!(plan.schema(&p).unwrap().arity(), 2);
        let empty = XraNode::UnionAll { inputs: vec![] };
        assert!(empty.schema(&p).is_err());
        assert!(empty.eval(&p).is_err());
    }

    #[test]
    fn join_count_counts_nested_joins() {
        let two = XraNode::join(
            join_plan(),
            XraNode::scan("s"),
            EquiJoin::new(0, 0, Projection::new(vec![0])),
            JoinAlgorithm::Pipelining,
        );
        assert_eq!(two.join_count(), 2);
        assert_eq!(XraNode::scan("r").join_count(), 0);
    }

    #[test]
    fn display_renders_tree() {
        let s = join_plan().to_string();
        assert!(s.contains("HashJoin[simple]"));
        assert!(s.contains("Scan r"));
        assert!(s.contains("Scan s"));
    }

    #[test]
    fn unknown_relation_errors() {
        let p = provider();
        assert!(XraNode::scan("nope").eval(&p).is_err());
        assert!(XraNode::scan("nope").schema(&p).is_err());
    }
}
