//! Textual XRA: a parser and printer for logical plans.
//!
//! PRISMA/DB's XRA was a textual language — the scheduler received XRA
//! programs as text (\[GWF91\], the PRISMA/DB 1 user manual). This module
//! provides the equivalent surface syntax for [`XraNode`] plans so they
//! can be written by hand, logged, diffed, and round-tripped:
//!
//! ```text
//! join(
//!   select(scan(orders), #2 >= 19950101),
//!   scan(customers),
//!   #1 = #0, [0, 2, 4], pipelining
//! )
//! ```
//!
//! Grammar (whitespace-insensitive; `#n` is the attribute at index n;
//! the join condition `#l = #r` indexes the left and right operand
//! schemas respectively, while the projection indexes their
//! concatenation):
//!
//! ```text
//! node    := scan | select | project | join | union | agg
//! scan    := "scan" "(" ident ")"
//! select  := "select" "(" node "," pred ")"
//! project := "project" "(" node "," cols ")"
//! join    := "join" "(" node "," node "," "#" n "=" "#" n "," cols
//!            [ "," ("simple" | "pipelining") ] ")"
//! union   := "union" "(" node { "," node } ")"
//! agg     := "agg" "(" node "," "group" cols ","
//!            "[" aggspec { "," aggspec } "]" ")"
//! cols    := "[" [ n { "," n } ] "]"
//! aggspec := ("count" | "sum" | "min" | "max") "(" n ")" "as" ident
//! pred    := or-expr with "and" / "or" / "not" / parentheses;
//!            comparisons `expr (= | <> | < | <= | > | >=) expr`;
//!            scalar exprs over "#" n, integer and 'string' literals,
//!            + - * % with the usual precedence
//! ```
//!
//! [`parse`] and [`print()`](fn@print) are exact inverses over well-formed plans
//! (property-tested): `parse(&print(&plan)) == Ok(plan)`.

use std::fmt::Write as _;

use crate::error::{RelalgError, Result};
use crate::expr::{ArithOp, Expr};
use crate::ops::{AggFunc, AggSpec};
use crate::predicate::{CmpOp, Predicate};
use crate::projection::Projection;
use crate::value::Value;
use crate::xra::{EquiJoin, JoinAlgorithm, XraNode};

// ------------------------------------------------------------------
// Printer
// ------------------------------------------------------------------

/// Renders `plan` in the textual XRA syntax accepted by [`parse`].
pub fn print(plan: &XraNode) -> String {
    let mut out = String::new();
    print_node(plan, &mut out);
    out
}

fn print_node(node: &XraNode, out: &mut String) {
    match node {
        XraNode::Scan { relation } => {
            let _ = write!(out, "scan({relation})");
        }
        XraNode::Select { input, predicate } => {
            out.push_str("select(");
            print_node(input, out);
            out.push_str(", ");
            print_pred(predicate, out);
            out.push(')');
        }
        XraNode::Project { input, projection } => {
            out.push_str("project(");
            print_node(input, out);
            out.push_str(", ");
            print_cols(projection.cols(), out);
            out.push(')');
        }
        XraNode::HashJoin {
            left,
            right,
            join,
            algorithm,
        } => {
            out.push_str("join(");
            print_node(left, out);
            out.push_str(", ");
            print_node(right, out);
            let _ = write!(out, ", #{} = #{}, ", join.left_key, join.right_key);
            print_cols(join.projection.cols(), out);
            let _ = write!(out, ", {algorithm}");
            out.push(')');
        }
        XraNode::UnionAll { inputs } => {
            out.push_str("union(");
            for (i, n) in inputs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_node(n, out);
            }
            out.push(')');
        }
        XraNode::Aggregate { input, group, aggs } => {
            out.push_str("agg(");
            print_node(input, out);
            out.push_str(", group ");
            print_cols(group, out);
            out.push_str(", [");
            for (i, a) in aggs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let f = match a.func {
                    AggFunc::Count => "count",
                    AggFunc::Sum => "sum",
                    AggFunc::Min => "min",
                    AggFunc::Max => "max",
                };
                let _ = write!(out, "{f}(#{}) as {}", a.col, a.name);
            }
            out.push_str("])");
        }
    }
}

fn print_cols(cols: &[usize], out: &mut String) {
    out.push('[');
    for (i, c) in cols.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{c}");
    }
    out.push(']');
}

fn print_pred(p: &Predicate, out: &mut String) {
    match p {
        Predicate::True => out.push_str("true"),
        Predicate::Cmp { left, op, right } => {
            print_expr(left, out);
            let _ = write!(out, " {op} ");
            print_expr(right, out);
        }
        Predicate::And(a, b) => {
            out.push('(');
            print_pred(a, out);
            out.push_str(" and ");
            print_pred(b, out);
            out.push(')');
        }
        Predicate::Or(a, b) => {
            out.push('(');
            print_pred(a, out);
            out.push_str(" or ");
            print_pred(b, out);
            out.push(')');
        }
        Predicate::Not(inner) => {
            out.push_str("not (");
            print_pred(inner, out);
            out.push(')');
        }
    }
}

fn print_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Attr(i) => {
            let _ = write!(out, "#{i}");
        }
        Expr::Lit(Value::Int(v)) => {
            let _ = write!(out, "{v}");
        }
        Expr::Lit(Value::Str(s)) => {
            // Single-quoted, with quote doubling for embedded quotes.
            let _ = write!(out, "'{}'", s.replace('\'', "''"));
        }
        Expr::Param(n) => {
            let _ = write!(out, "?{n}");
        }
        Expr::Arith(l, op, r) => {
            let sym = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Mod => "%",
            };
            out.push('(');
            print_expr(l, out);
            let _ = write!(out, " {sym} ");
            print_expr(r, out);
            out.push(')');
        }
    }
}

// ------------------------------------------------------------------
// Lexer
// ------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Hash,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Plus,
    Minus,
    #[allow(clippy::enum_variant_names)]
    StarTok,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            '[' => {
                toks.push((Tok::LBracket, i));
                i += 1;
            }
            ']' => {
                toks.push((Tok::RBracket, i));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            '#' => {
                toks.push((Tok::Hash, i));
                i += 1;
            }
            '+' => {
                toks.push((Tok::Plus, i));
                i += 1;
            }
            '*' => {
                toks.push((Tok::StarTok, i));
                i += 1;
            }
            '%' => {
                toks.push((Tok::Percent, i));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, i));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push((Tok::Ne, i));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Le, i));
                    i += 2;
                } else {
                    toks.push((Tok::Lt, i));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Ge, i));
                    i += 2;
                } else {
                    toks.push((Tok::Gt, i));
                    i += 1;
                }
            }
            '-' => {
                // Negative integer literal or binary minus: decided by the
                // parser; the lexer always emits Minus.
                toks.push((Tok::Minus, i));
                i += 1;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(RelalgError::InvalidPlan(format!(
                                "unterminated string starting at byte {start}"
                            )))
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                toks.push((Tok::Str(s), start));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| {
                    RelalgError::InvalidPlan(format!("integer literal `{text}` out of range"))
                })?;
                toks.push((Tok::Int(v), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && {
                    let c = bytes[i] as char;
                    c.is_ascii_alphanumeric() || c == '_'
                } {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_string()), start));
            }
            other => {
                return Err(RelalgError::InvalidPlan(format!(
                    "unexpected character `{other}` at byte {i}"
                )))
            }
        }
    }
    Ok(toks)
}

// ------------------------------------------------------------------
// Parser (recursive descent)
// ------------------------------------------------------------------

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn err(&self, expected: &str) -> RelalgError {
        match self.toks.get(self.pos) {
            Some((t, at)) => {
                RelalgError::InvalidPlan(format!("expected {expected}, found {t:?} at byte {at}"))
            }
            None => RelalgError::InvalidPlan(format!("expected {expected}, found end of input")),
        }
    }

    fn eat(&mut self, t: Tok, expected: &str) -> Result<()> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn ident(&mut self, expected: &str) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err(expected)),
        }
    }

    fn usize_lit(&mut self) -> Result<usize> {
        match self.peek() {
            Some(Tok::Int(v)) if *v >= 0 => {
                let v = *v as usize;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err("a non-negative integer")),
        }
    }

    fn attr_index(&mut self) -> Result<usize> {
        self.eat(Tok::Hash, "`#`")?;
        self.usize_lit()
    }

    fn cols(&mut self) -> Result<Vec<usize>> {
        self.eat(Tok::LBracket, "`[`")?;
        let mut cols = Vec::new();
        if self.peek() == Some(&Tok::RBracket) {
            self.pos += 1;
            return Ok(cols);
        }
        loop {
            cols.push(self.usize_lit()?);
            match self.peek() {
                Some(Tok::Comma) => self.pos += 1,
                Some(Tok::RBracket) => {
                    self.pos += 1;
                    return Ok(cols);
                }
                _ => return Err(self.err("`,` or `]`")),
            }
        }
    }

    fn node(&mut self) -> Result<XraNode> {
        let head = self.ident("a plan operator (scan/select/project/join/union/agg)")?;
        self.eat(Tok::LParen, "`(`")?;
        let node = match head.as_str() {
            "scan" => {
                let rel = self.ident("a relation name")?;
                XraNode::Scan { relation: rel }
            }
            "select" => {
                let input = self.node()?;
                self.eat(Tok::Comma, "`,`")?;
                let predicate = self.pred()?;
                XraNode::Select {
                    input: Box::new(input),
                    predicate,
                }
            }
            "project" => {
                let input = self.node()?;
                self.eat(Tok::Comma, "`,`")?;
                let cols = self.cols()?;
                XraNode::Project {
                    input: Box::new(input),
                    projection: Projection::new(cols),
                }
            }
            "join" => {
                let left = self.node()?;
                self.eat(Tok::Comma, "`,`")?;
                let right = self.node()?;
                self.eat(Tok::Comma, "`,`")?;
                let lk = self.attr_index()?;
                self.eat(Tok::Eq, "`=`")?;
                let rk = self.attr_index()?;
                self.eat(Tok::Comma, "`,`")?;
                let cols = self.cols()?;
                let algorithm = if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    match self.ident("`simple` or `pipelining`")?.as_str() {
                        "simple" => JoinAlgorithm::Simple,
                        "pipelining" => JoinAlgorithm::Pipelining,
                        other => {
                            return Err(RelalgError::InvalidPlan(format!(
                                "unknown join algorithm `{other}`"
                            )))
                        }
                    }
                } else {
                    JoinAlgorithm::Simple
                };
                XraNode::HashJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    join: EquiJoin::new(lk, rk, Projection::new(cols)),
                    algorithm,
                }
            }
            "union" => {
                let mut inputs = vec![self.node()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    inputs.push(self.node()?);
                }
                XraNode::UnionAll { inputs }
            }
            "agg" => {
                let input = self.node()?;
                self.eat(Tok::Comma, "`,`")?;
                let kw = self.ident("`group`")?;
                if kw != "group" {
                    return Err(RelalgError::InvalidPlan(format!(
                        "expected `group`, found `{kw}`"
                    )));
                }
                let group = self.cols()?;
                self.eat(Tok::Comma, "`,`")?;
                self.eat(Tok::LBracket, "`[`")?;
                let mut aggs = Vec::new();
                loop {
                    let f = match self.ident("an aggregate function")?.as_str() {
                        "count" => AggFunc::Count,
                        "sum" => AggFunc::Sum,
                        "min" => AggFunc::Min,
                        "max" => AggFunc::Max,
                        other => {
                            return Err(RelalgError::InvalidPlan(format!(
                                "unknown aggregate `{other}`"
                            )))
                        }
                    };
                    self.eat(Tok::LParen, "`(`")?;
                    let col = self.attr_index()?;
                    self.eat(Tok::RParen, "`)`")?;
                    let kw = self.ident("`as`")?;
                    if kw != "as" {
                        return Err(RelalgError::InvalidPlan(format!(
                            "expected `as`, found `{kw}`"
                        )));
                    }
                    let name = self.ident("an output name")?;
                    aggs.push(AggSpec::new(f, col, name));
                    match self.peek() {
                        Some(Tok::Comma) => self.pos += 1,
                        Some(Tok::RBracket) => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("`,` or `]`")),
                    }
                }
                XraNode::Aggregate {
                    input: Box::new(input),
                    group,
                    aggs,
                }
            }
            other => {
                return Err(RelalgError::InvalidPlan(format!(
                    "unknown operator `{other}`"
                )))
            }
        };
        self.eat(Tok::RParen, "`)`")?;
        Ok(node)
    }

    // Predicates: or > and > unary.
    fn pred(&mut self) -> Result<Predicate> {
        let mut left = self.pred_and()?;
        while let Some(Tok::Ident(s)) = self.peek() {
            if s != "or" {
                break;
            }
            self.pos += 1;
            let right = self.pred_and()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> Result<Predicate> {
        let mut left = self.pred_unary()?;
        while let Some(Tok::Ident(s)) = self.peek() {
            if s != "and" {
                break;
            }
            self.pos += 1;
            let right = self.pred_unary()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_unary(&mut self) -> Result<Predicate> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == "not" => {
                self.pos += 1;
                Ok(Predicate::Not(Box::new(self.pred_unary()?)))
            }
            Some(Tok::Ident(s)) if s == "true" => {
                self.pos += 1;
                Ok(Predicate::True)
            }
            Some(Tok::LParen) => {
                // Either a parenthesized predicate or a parenthesized
                // scalar expression starting a comparison: try the
                // predicate first, backtracking on failure.
                let save = self.pos;
                self.pos += 1;
                if let Ok(p) = self.pred() {
                    if self.peek() == Some(&Tok::RParen) {
                        self.pos += 1;
                        return Ok(p);
                    }
                }
                self.pos = save;
                self.cmp()
            }
            _ => self.cmp(),
        }
    }

    fn cmp(&mut self) -> Result<Predicate> {
        let left = self.expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            _ => return Err(self.err("a comparison operator")),
        };
        self.pos += 1;
        let right = self.expr()?;
        Ok(Predicate::Cmp { left, op, right })
    }

    // Scalar expressions: +,- > *,% > atoms.
    fn expr(&mut self) -> Result<Expr> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.term()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::StarTok) => ArithOp::Mul,
                Some(Tok::Percent) => ArithOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.factor()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Tok::Hash) => {
                self.pos += 1;
                Ok(Expr::Attr(self.usize_lit()?))
            }
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Int(v)))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                match self.peek() {
                    Some(Tok::Int(v)) => {
                        let v = *v;
                        self.pos += 1;
                        Ok(Expr::Lit(Value::Int(-v)))
                    }
                    _ => Err(self.err("an integer after unary `-`")),
                }
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Str(s.into())))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.eat(Tok::RParen, "`)`")?;
                Ok(e)
            }
            _ => Err(self.err("a scalar expression")),
        }
    }
}

/// Parses a textual XRA plan.
pub fn parse(src: &str) -> Result<XraNode> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let node = p.node()?;
    if p.pos != p.toks.len() {
        return Err(p.err("end of input"));
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(plan: &XraNode) {
        let text = print(plan);
        let back = parse(&text).unwrap_or_else(|e| panic!("parse of `{text}` failed: {e}"));
        assert_eq!(&back, plan, "round-trip changed the plan: {text}");
    }

    #[test]
    fn scan_roundtrip() {
        roundtrip(&XraNode::scan("orders"));
    }

    #[test]
    fn join_roundtrips_with_both_algorithms() {
        for algo in [JoinAlgorithm::Simple, JoinAlgorithm::Pipelining] {
            roundtrip(&XraNode::join(
                XraNode::scan("r"),
                XraNode::scan("s"),
                EquiJoin::new(0, 2, Projection::new(vec![0, 1, 3])),
                algo,
            ));
        }
    }

    #[test]
    fn join_algorithm_defaults_to_simple() {
        let p = parse("join(scan(r), scan(s), #0 = #0, [0])").unwrap();
        match p {
            XraNode::HashJoin { algorithm, .. } => assert_eq!(algorithm, JoinAlgorithm::Simple),
            other => panic!("expected a join, got {other:?}"),
        }
    }

    #[test]
    fn select_with_compound_predicate() {
        let p = parse("select(scan(r), (#0 >= 10 and #1 <> 3) or not (#2 = #3))").unwrap();
        roundtrip(&p);
        match &p {
            XraNode::Select {
                predicate: Predicate::Or(a, b),
                ..
            } => {
                assert!(matches!(a.as_ref(), Predicate::And(_, _)));
                assert!(matches!(b.as_ref(), Predicate::Not(_)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        // `#0 + #1 * 2 = 10` must parse the `*` tighter than the `+`.
        let p = parse("select(scan(r), #0 + #1 * 2 = 10)").unwrap();
        match &p {
            XraNode::Select {
                predicate:
                    Predicate::Cmp {
                        left: Expr::Arith(_, ArithOp::Add, rhs),
                        ..
                    },
                ..
            } => {
                assert!(matches!(rhs.as_ref(), Expr::Arith(_, ArithOp::Mul, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        roundtrip(&p);
    }

    #[test]
    fn string_literals_with_embedded_quotes() {
        let p = XraNode::Select {
            input: Box::new(XraNode::scan("r")),
            predicate: Predicate::Cmp {
                left: Expr::Attr(1),
                op: CmpOp::Eq,
                right: Expr::Lit(Value::Str("O'Brien".into())),
            },
        };
        roundtrip(&p);
    }

    #[test]
    fn negative_literals() {
        let p = parse("select(scan(r), #0 > -5)").unwrap();
        roundtrip(&p);
    }

    #[test]
    fn aggregate_roundtrip() {
        let p = XraNode::Aggregate {
            input: Box::new(XraNode::scan("r")),
            group: vec![0, 2],
            aggs: vec![
                AggSpec::new(AggFunc::Sum, 1, "total"),
                AggSpec::new(AggFunc::Count, 0, "n"),
                AggSpec::new(AggFunc::Min, 3, "lo"),
                AggSpec::new(AggFunc::Max, 3, "hi"),
            ],
        };
        roundtrip(&p);
    }

    #[test]
    fn union_and_project_roundtrip() {
        let p = XraNode::UnionAll {
            inputs: vec![
                XraNode::Project {
                    input: Box::new(XraNode::scan("a")),
                    projection: Projection::new(vec![1, 0]),
                },
                XraNode::scan("b"),
                XraNode::scan("c"),
            ],
        };
        roundtrip(&p);
    }

    #[test]
    fn deep_nesting_roundtrips() {
        let mut plan = XraNode::scan("R0");
        for i in 1..10 {
            plan = XraNode::join(
                plan,
                XraNode::scan(format!("R{i}")),
                EquiJoin::new(0, 0, Projection::new(vec![1, 2, 3])),
                JoinAlgorithm::Pipelining,
            );
        }
        roundtrip(&plan);
    }

    #[test]
    fn empty_projection_list_is_allowed() {
        roundtrip(&XraNode::Project {
            input: Box::new(XraNode::scan("r")),
            projection: Projection::new(vec![]),
        });
    }

    #[test]
    fn parse_errors_name_the_position() {
        for (src, needle) in [
            ("scan(", "relation name"),
            ("scan(r", "`)`"),
            ("frobnicate(r)", "unknown operator"),
            (
                "join(scan(r), scan(s), #0 = #0, [0], quantum)",
                "unknown join algorithm",
            ),
            ("select(scan(r), #0 ??)", "unexpected character"),
            ("select(scan(r), 'open)", "unterminated string"),
            (
                "agg(scan(r), group [0], [avg(#1) as x])",
                "unknown aggregate",
            ),
            ("scan(r) scan(s)", "end of input"),
            (
                "select(scan(r), #0 >= 99999999999999999999)",
                "out of range",
            ),
        ] {
            let err = parse(src).expect_err(src).to_string();
            assert!(err.contains(needle), "error for `{src}` was `{err}`");
        }
    }

    #[test]
    fn parsed_plan_evaluates() {
        use crate::relation::Relation;
        use crate::schema::{Attribute, Schema};
        use crate::tuple::Tuple;
        use std::collections::HashMap;
        use std::sync::Arc;

        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        let mk = |rows: &[[i64; 2]]| {
            Arc::new(
                Relation::new(
                    schema.clone(),
                    rows.iter().map(|r| Tuple::from_ints(r)).collect(),
                )
                .unwrap(),
            )
        };
        let mut provider = HashMap::new();
        provider.insert("r".to_string(), mk(&[[1, 10], [2, 20], [3, 30]]));
        provider.insert("s".to_string(), mk(&[[2, 200], [3, 300]]));

        let plan = parse(
            "agg(join(select(scan(r), #1 >= 20), scan(s), #0 = #0, [0, 1, 3]), \
             group [], [sum(#2) as total])",
        )
        .unwrap();
        let out = plan.eval(&provider).unwrap();
        assert_eq!(out.tuples()[0], Tuple::from_ints(&[500]));
    }
}
