//! Error type shared by the relational substrate.

use std::fmt;

/// Errors raised while building or evaluating relational expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelalgError {
    /// An attribute name could not be resolved against a schema.
    UnknownAttribute(String),
    /// An attribute index was out of bounds for the tuple/schema arity.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The arity it was checked against.
        arity: usize,
    },
    /// A value had a different type than the operation required.
    TypeMismatch {
        /// What the operation required.
        expected: &'static str,
        /// What it got.
        found: &'static str,
    },
    /// A tuple did not conform to the schema it was checked against.
    SchemaMismatch(String),
    /// A named relation was not found in the catalog/provider.
    UnknownRelation(String),
    /// A plan was structurally invalid (bad arity, empty union, ...).
    InvalidPlan(String),
    /// A partitioning request was invalid (zero partitions, an assignment
    /// outside `0..parts`, unsorted range bounds, too many rows, ...).
    InvalidPartitioning(String),
    /// The query was cancelled by the client before it completed. Raised by
    /// operator tasks that observe their query's cancel token and by the
    /// coordinator once a cancelled query has quiesced.
    Canceled,
    /// The query ran past its wall-clock deadline and was aborted by the
    /// guardrail layer (per-step deadline checks plus the coordinator
    /// watchdog).
    DeadlineExceeded,
    /// The query charged more bytes against its memory budget than the
    /// configured cap and was aborted before it could endanger the process.
    ResourceExhausted {
        /// Bytes charged at the moment the budget trip was observed.
        used: u64,
        /// The configured budget cap in bytes.
        budget: u64,
    },
    /// The coordinator watchdog saw no task progress for the configured
    /// stall window; the payload is a per-operator progress dump.
    Stalled(String),
    /// An operator task panicked; the panic was contained by the worker
    /// pool and converted into this query-scoped error. The payload is the
    /// panic message.
    Internal(String),
    /// Admission control rejected the query: the engine is already running
    /// `max_concurrent` queries and the FIFO wait queue is full. Carries
    /// the wait-queue depth at rejection so clients can back off
    /// proportionally.
    Overloaded {
        /// Submissions waiting in the admission queue when this one was
        /// rejected (= the configured queue bound).
        queue_depth: usize,
    },
}

impl fmt::Display for RelalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelalgError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            RelalgError::IndexOutOfBounds { index, arity } => {
                write!(f, "attribute index {index} out of bounds for arity {arity}")
            }
            RelalgError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            RelalgError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            RelalgError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            RelalgError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            RelalgError::InvalidPartitioning(msg) => write!(f, "invalid partitioning: {msg}"),
            RelalgError::Canceled => write!(f, "query canceled"),
            RelalgError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            RelalgError::ResourceExhausted { used, budget } => {
                write!(
                    f,
                    "query memory budget exhausted: {used} bytes used of {budget} allowed"
                )
            }
            RelalgError::Stalled(dump) => write!(f, "query stalled: {dump}"),
            RelalgError::Internal(msg) => write!(f, "internal error (contained panic): {msg}"),
            RelalgError::Overloaded { queue_depth } => {
                write!(
                    f,
                    "engine overloaded: concurrent query limit and wait queue \
                     ({queue_depth} deep) are full"
                )
            }
        }
    }
}

impl std::error::Error for RelalgError {}

/// Convenient result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, RelalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = RelalgError::UnknownAttribute("u1".into());
        assert_eq!(e.to_string(), "unknown attribute `u1`");
        let e = RelalgError::IndexOutOfBounds { index: 9, arity: 3 };
        assert!(e.to_string().contains("index 9"));
        let e = RelalgError::TypeMismatch {
            expected: "Int",
            found: "Str",
        };
        assert!(e.to_string().contains("expected Int"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RelalgError::UnknownRelation("r".into()));
    }
}
