//! Tuples: fixed-arity rows of [`Value`]s.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{RelalgError, Result};
use crate::value::Value;

/// A row of values. Tuples are value types: cloning deep-copies the row,
/// which matches the shared-nothing model where redistribution physically
/// moves tuples between node memories.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values: values.into_boxed_slice() }
    }

    /// Creates an all-integer tuple (convenient in tests and generators).
    pub fn from_ints(ints: &[i64]) -> Self {
        Tuple::new(ints.iter().map(|&v| Value::Int(v)).collect())
    }

    /// Number of values in the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at position `i`.
    pub fn get(&self, i: usize) -> Result<&Value> {
        self.values
            .get(i)
            .ok_or(RelalgError::IndexOutOfBounds { index: i, arity: self.values.len() })
    }

    /// The integer at position `i`, or a type/index error.
    pub fn int(&self, i: usize) -> Result<i64> {
        self.get(i)?.as_int()
    }

    /// The string at position `i`, or a type/index error.
    pub fn str_at(&self, i: usize) -> Result<&str> {
        self.get(i)?.as_str()
    }

    /// Concatenates two tuples (the raw output of a join before projection).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend(self.values.iter().cloned());
        values.extend(other.values.iter().cloned());
        Tuple::new(values)
    }

    /// Projects the tuple onto the given column indices (with repetition and
    /// reordering allowed).
    pub fn project(&self, cols: &[usize]) -> Result<Tuple> {
        let mut values = Vec::with_capacity(cols.len());
        for &c in cols {
            values.push(self.get(c)?.clone());
        }
        Ok(Tuple::new(values))
    }

    /// Builds the projected concatenation of two tuples without
    /// materializing the intermediate concatenated row. `cols` indexes into
    /// the virtual concatenation `left ++ right`. This is the hot path of
    /// every hash join, so it avoids the double allocation of
    /// `concat().project()`.
    pub fn project_concat(left: &Tuple, right: &Tuple, cols: &[usize]) -> Result<Tuple> {
        let la = left.arity();
        let total = la + right.arity();
        let mut values = Vec::with_capacity(cols.len());
        for &c in cols {
            let v = if c < la {
                left.get(c)?
            } else if c < total {
                right.get(c - la)?
            } else {
                return Err(RelalgError::IndexOutOfBounds { index: c, arity: total });
            };
            values.push(v.clone());
        }
        Ok(Tuple::new(values))
    }

    /// Approximate in-memory footprint in bytes.
    pub fn est_bytes(&self) -> usize {
        // Enum discriminant + payload per value, plus the boxed-slice header.
        16 + self.values.iter().map(|v| v.est_bytes() + 8).sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.int(0).unwrap(), 1);
        assert_eq!(t.str_at(1).unwrap(), "x");
        assert!(t.get(2).is_err());
        assert!(t.int(1).is_err());
    }

    #[test]
    fn concat_and_project() {
        let a = Tuple::from_ints(&[1, 2]);
        let b = Tuple::from_ints(&[3]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.int(2).unwrap(), 3);
        let p = c.project(&[2, 0]).unwrap();
        assert_eq!(p, Tuple::from_ints(&[3, 1]));
        assert!(c.project(&[9]).is_err());
    }

    #[test]
    fn project_concat_matches_concat_then_project() {
        let a = Tuple::from_ints(&[1, 2]);
        let b = Tuple::from_ints(&[3, 4]);
        let cols = [3, 0, 2, 2];
        let expected = a.concat(&b).project(&cols).unwrap();
        let got = Tuple::project_concat(&a, &b, &cols).unwrap();
        assert_eq!(expected, got);
        assert!(Tuple::project_concat(&a, &b, &[3]).is_ok());
        assert!(Tuple::project_concat(&a, &b, &[4]).is_err());
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.to_string(), "[1, 'x']");
    }

    #[test]
    fn bytes_estimate_grows_with_arity() {
        let small = Tuple::from_ints(&[1]);
        let large = Tuple::from_ints(&[1, 2, 3, 4]);
        assert!(large.est_bytes() > small.est_bytes());
    }
}
