//! Tuples: fixed-arity rows of [`Value`]s.
//!
//! Tuples are *logically* value types — the shared-nothing model treats a
//! redistributed tuple as physically moved between node memories — but the
//! in-process representation is zero-copy:
//!
//! * Small all-integer rows (the Wisconsin compact workload) are stored
//!   **inline**: cloning is a flat memcpy, no heap traffic at all.
//! * Larger or string-carrying rows share an **`Arc`** payload: cloning is
//!   a reference-count bump.
//!
//! Memory accounting ([`Tuple::est_bytes`]) deliberately reports *logical*
//! (deep) bytes, not shared physical bytes, so the paper's RD-vs-FP memory
//! ablation (§5) — which models every hash table as owning its tuples — is
//! unaffected by the sharing.

use serde::{DeError, Deserialize, JsonValue, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{RelalgError, Result};
use crate::value::Value;

/// Maximum arity stored inline (all-int rows only).
pub const INLINE_CAP: usize = 4;

const ZERO: Value = Value::Int(0);

#[derive(Clone, Debug)]
enum Repr {
    /// All-integer row of arity <= [`INLINE_CAP`], stored inline.
    /// Cloning copies `INLINE_CAP` integer values — no allocation.
    Inline { len: u8, vals: [Value; INLINE_CAP] },
    /// Shared payload; cloning bumps the reference count.
    Shared(Arc<[Value]>),
}

/// A row of values. Cloning is cheap (memcpy or refcount bump); use
/// [`Tuple::deep_clone`] to force a physically independent copy.
#[derive(Clone, Debug)]
pub struct Tuple {
    repr: Repr,
}

/// True if an inline representation may hold these values.
fn inlineable(values: &[Value]) -> bool {
    values.len() <= INLINE_CAP && values.iter().all(|v| matches!(v, Value::Int(_)))
}

fn inline_from(values: &[Value]) -> Repr {
    let mut vals = [ZERO; INLINE_CAP];
    for (slot, v) in vals.iter_mut().zip(values) {
        *slot = v.clone(); // Value::Int: a flat copy.
    }
    Repr::Inline {
        len: values.len() as u8,
        vals,
    }
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        if inlineable(&values) {
            Tuple {
                repr: inline_from(&values),
            }
        } else {
            Tuple {
                repr: Repr::Shared(values.into()),
            }
        }
    }

    /// Creates an all-integer tuple (convenient in tests and generators).
    /// Rows up to [`INLINE_CAP`] integers take the allocation-free inline
    /// representation.
    pub fn from_ints(ints: &[i64]) -> Self {
        if ints.len() <= INLINE_CAP {
            let mut vals = [ZERO; INLINE_CAP];
            for (slot, &v) in vals.iter_mut().zip(ints) {
                *slot = Value::Int(v);
            }
            Tuple {
                repr: Repr::Inline {
                    len: ints.len() as u8,
                    vals,
                },
            }
        } else {
            Tuple {
                repr: Repr::Shared(ints.iter().map(|&v| Value::Int(v)).collect()),
            }
        }
    }

    /// Builds a tuple by draining `scratch`, leaving its capacity in place
    /// for the next row. Inline-eligible rows allocate nothing; other rows
    /// allocate exactly the shared payload.
    pub fn from_scratch(scratch: &mut Vec<Value>) -> Self {
        if inlineable(scratch) {
            let repr = inline_from(scratch);
            scratch.clear();
            Tuple { repr }
        } else {
            Tuple {
                repr: Repr::Shared(scratch.drain(..).collect()),
            }
        }
    }

    /// True if the row is stored inline (no heap payload).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// True if both tuples share one physical payload (trivially false for
    /// inline rows, which have no shared payload).
    pub fn ptr_eq(a: &Tuple, b: &Tuple) -> bool {
        match (&a.repr, &b.repr) {
            (Repr::Shared(x), Repr::Shared(y)) => Arc::ptr_eq(x, y),
            _ => false,
        }
    }

    /// Forces a physically independent copy (deep copy of the payload).
    /// Exists for baseline measurements of the pre-sharing representation;
    /// the engine never needs it.
    pub fn deep_clone(&self) -> Tuple {
        match &self.repr {
            Repr::Inline { .. } => self.clone(),
            Repr::Shared(vs) => Tuple {
                repr: Repr::Shared(vs.iter().cloned().collect()),
            },
        }
    }

    /// Number of values in the tuple.
    pub fn arity(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Shared(vs) => vs.len(),
        }
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        match &self.repr {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Shared(vs) => vs,
        }
    }

    /// The value at position `i`.
    pub fn get(&self, i: usize) -> Result<&Value> {
        self.values().get(i).ok_or(RelalgError::IndexOutOfBounds {
            index: i,
            arity: self.arity(),
        })
    }

    /// The integer at position `i`, or a type/index error.
    pub fn int(&self, i: usize) -> Result<i64> {
        self.get(i)?.as_int()
    }

    /// The string at position `i`, or a type/index error.
    pub fn str_at(&self, i: usize) -> Result<&str> {
        self.get(i)?.as_str()
    }

    /// Concatenates two tuples (the raw output of a join before projection).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend(self.values().iter().cloned());
        values.extend(other.values().iter().cloned());
        Tuple::new(values)
    }

    /// Projects the tuple onto the given column indices (with repetition and
    /// reordering allowed).
    pub fn project(&self, cols: &[usize]) -> Result<Tuple> {
        let mut values = Vec::with_capacity(cols.len());
        for &c in cols {
            values.push(self.get(c)?.clone());
        }
        Ok(Tuple::new(values))
    }

    /// Builds the projected concatenation of two tuples without
    /// materializing the intermediate concatenated row. `cols` indexes into
    /// the virtual concatenation `left ++ right`.
    pub fn project_concat(left: &Tuple, right: &Tuple, cols: &[usize]) -> Result<Tuple> {
        let mut scratch = Vec::with_capacity(cols.len());
        Tuple::project_concat_into(left, right, cols, &mut scratch)
    }

    /// [`Tuple::project_concat`] writing through a caller-provided scratch
    /// buffer — the hot path of every hash join. The scratch's capacity is
    /// reused across rows, so steady-state output of small all-int rows
    /// (the Wisconsin workload) performs **zero** allocations per row, and
    /// larger rows exactly one (the shared payload). The scratch is left
    /// empty (capacity intact) on both success and error.
    pub fn project_concat_into(
        left: &Tuple,
        right: &Tuple,
        cols: &[usize],
        scratch: &mut Vec<Value>,
    ) -> Result<Tuple> {
        scratch.clear();
        let lvals = left.values();
        let rvals = right.values();
        let total = lvals.len() + rvals.len();
        for &c in cols {
            let v = if c < lvals.len() {
                &lvals[c]
            } else if c < total {
                &rvals[c - lvals.len()]
            } else {
                scratch.clear();
                return Err(RelalgError::IndexOutOfBounds {
                    index: c,
                    arity: total,
                });
            };
            scratch.push(v.clone());
        }
        Ok(Tuple::from_scratch(scratch))
    }

    /// Approximate *logical* in-memory footprint in bytes: what the row
    /// would occupy if it owned its payload, exactly as the paper's memory
    /// model assumes. Sharing and inlining do not change this number.
    pub fn est_bytes(&self) -> usize {
        // Enum discriminant + payload per value, plus the payload header.
        16 + self
            .values()
            .iter()
            .map(|v| v.est_bytes() + 8)
            .sum::<usize>()
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.values() == other.values()
    }
}

impl Eq for Tuple {}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.values().cmp(other.values())
    }
}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.values().hash(state);
    }
}

impl Serialize for Tuple {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.values().iter().map(Serialize::to_json).collect())
    }
}

impl Deserialize for Tuple {
    fn from_json(v: &JsonValue) -> std::result::Result<Self, DeError> {
        Vec::<Value>::from_json(v).map(Tuple::new)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.int(0).unwrap(), 1);
        assert_eq!(t.str_at(1).unwrap(), "x");
        assert!(t.get(2).is_err());
        assert!(t.int(1).is_err());
    }

    #[test]
    fn concat_and_project() {
        let a = Tuple::from_ints(&[1, 2]);
        let b = Tuple::from_ints(&[3]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.int(2).unwrap(), 3);
        let p = c.project(&[2, 0]).unwrap();
        assert_eq!(p, Tuple::from_ints(&[3, 1]));
        assert!(c.project(&[9]).is_err());
    }

    #[test]
    fn project_concat_matches_concat_then_project() {
        let a = Tuple::from_ints(&[1, 2]);
        let b = Tuple::from_ints(&[3, 4]);
        let cols = [3, 0, 2, 2];
        let expected = a.concat(&b).project(&cols).unwrap();
        let got = Tuple::project_concat(&a, &b, &cols).unwrap();
        assert_eq!(expected, got);
        assert!(Tuple::project_concat(&a, &b, &[3]).is_ok());
        assert!(Tuple::project_concat(&a, &b, &[4]).is_err());
    }

    #[test]
    fn project_concat_into_reuses_scratch() {
        let a = Tuple::new(vec![Value::Int(1), Value::str("left")]);
        let b = Tuple::new(vec![Value::Int(2), Value::str("right")]);
        let mut scratch = Vec::new();
        for _ in 0..3 {
            let got = Tuple::project_concat_into(&a, &b, &[3, 0, 1], &mut scratch).unwrap();
            assert_eq!(got, a.concat(&b).project(&[3, 0, 1]).unwrap());
            assert!(scratch.is_empty(), "scratch drained into the tuple");
            assert!(scratch.capacity() >= 3, "capacity retained for reuse");
        }
        // Errors also leave the scratch empty and reusable.
        assert!(Tuple::project_concat_into(&a, &b, &[9], &mut scratch).is_err());
        assert!(scratch.is_empty());
        assert!(Tuple::project_concat_into(&a, &b, &[0], &mut scratch).is_ok());
    }

    #[test]
    fn small_int_rows_are_inline_and_clone_without_sharing() {
        let t = Tuple::from_ints(&[1, 2, 3]);
        assert!(t.is_inline());
        let c = t.clone();
        assert_eq!(t, c);
        assert!(!Tuple::ptr_eq(&t, &c), "inline rows have no shared payload");

        let big = Tuple::from_ints(&[1, 2, 3, 4, 5]);
        assert!(!big.is_inline());
        let shared = big.clone();
        assert!(
            Tuple::ptr_eq(&big, &shared),
            "large rows share their payload"
        );
        assert!(!Tuple::ptr_eq(&big, &big.deep_clone()));

        let stringy = Tuple::new(vec![Value::str("s")]);
        assert!(!stringy.is_inline(), "string rows never inline");
    }

    #[test]
    fn representations_compare_and_hash_identically() {
        use std::collections::hash_map::DefaultHasher;
        let inline = Tuple::from_ints(&[7, 8]);
        let shared = Tuple {
            repr: Repr::Shared(vec![Value::Int(7), Value::Int(8)].into()),
        };
        assert!(inline.is_inline() && !shared.is_inline());
        assert_eq!(inline, shared);
        assert_eq!(inline.cmp(&shared), std::cmp::Ordering::Equal);
        let hash = |t: &Tuple| {
            let mut h = DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&inline), hash(&shared));
        assert_eq!(inline.est_bytes(), shared.est_bytes());
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.to_string(), "[1, 'x']");
    }

    #[test]
    fn bytes_estimate_grows_with_arity() {
        let small = Tuple::from_ints(&[1]);
        let large = Tuple::from_ints(&[1, 2, 3, 4]);
        assert!(large.est_bytes() > small.est_bytes());
    }

    #[test]
    fn est_bytes_is_logical_not_physical() {
        // A shared clone reports the same bytes as the original: the
        // accounting models ownership, per the paper's §5 memory argument.
        let t = Tuple::new(vec![Value::str("abcdefgh"), Value::Int(1)]);
        let c = t.clone();
        assert!(Tuple::ptr_eq(&t, &c));
        assert_eq!(t.est_bytes(), c.est_bytes());
        // And matches the historical formula exactly.
        assert_eq!(t.est_bytes(), 16 + (8 + 16 + 8) + (8 + 8));
    }

    #[test]
    fn serde_roundtrip() {
        for t in [
            Tuple::from_ints(&[1, 2, 3]),
            Tuple::from_ints(&[1, 2, 3, 4, 5, 6]),
            Tuple::new(vec![Value::Int(-1), Value::str("x y")]),
        ] {
            let json = serde_json::to_string(&t).unwrap();
            let back: Tuple = serde_json::from_str(&json).unwrap();
            assert_eq!(back, t);
        }
    }
}
