//! Boolean predicates over a single tuple (selection conditions and join
//! conditions evaluated on the concatenated tuple).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

use crate::error::{RelalgError, Result};
use crate::expr::Expr;
use crate::tuple::Tuple;
use crate::value::Value;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean predicate over one tuple.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (scan without selection).
    True,
    /// Comparison between two scalar expressions of the same type.
    Cmp {
        /// Left-hand expression.
        left: Expr,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand expression.
        right: Expr,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr(i) op lit` — the common selection shape.
    pub fn cmp_int(i: usize, op: CmpOp, lit: i64) -> Predicate {
        Predicate::Cmp {
            left: Expr::Attr(i),
            op,
            right: Expr::Lit(Value::Int(lit)),
        }
    }

    /// `attr(i) = attr(j)` — the equi-join shape on a concatenated tuple.
    pub fn attr_eq(i: usize, j: usize) -> Predicate {
        Predicate::Cmp {
            left: Expr::Attr(i),
            op: CmpOp::Eq,
            right: Expr::Attr(j),
        }
    }

    /// Invokes `f` on every attribute index the predicate references
    /// (duplicates included, in syntactic order) — the shared traversal
    /// behind validation and column-collection passes.
    pub fn for_each_attr(&self, f: &mut impl FnMut(usize)) {
        fn walk_expr(e: &Expr, f: &mut impl FnMut(usize)) {
            match e {
                Expr::Attr(i) => f(*i),
                Expr::Lit(_) | Expr::Param(_) => {}
                Expr::Arith(l, _, r) => {
                    walk_expr(l, f);
                    walk_expr(r, f);
                }
            }
        }
        match self {
            Predicate::True => {}
            Predicate::Cmp { left, right, .. } => {
                walk_expr(left, f);
                walk_expr(right, f);
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.for_each_attr(f);
                b.for_each_attr(f);
            }
            Predicate::Not(p) => p.for_each_attr(f),
        }
    }

    /// Rebuilds the predicate with every attribute index passed through
    /// `map` — how a relation-local predicate is rebased onto a wider
    /// schema (e.g. a join output) whose columns live at other positions.
    pub fn map_attrs(&self, map: &impl Fn(usize) -> Result<usize>) -> Result<Predicate> {
        fn map_expr(e: &Expr, map: &impl Fn(usize) -> Result<usize>) -> Result<Expr> {
            Ok(match e {
                Expr::Attr(i) => Expr::Attr(map(*i)?),
                Expr::Lit(v) => Expr::Lit(v.clone()),
                Expr::Param(n) => Expr::Param(*n),
                Expr::Arith(l, op, r) => Expr::Arith(
                    Box::new(map_expr(l, map)?),
                    *op,
                    Box::new(map_expr(r, map)?),
                ),
            })
        }
        Ok(match self {
            Predicate::True => Predicate::True,
            Predicate::Cmp { left, op, right } => Predicate::Cmp {
                left: map_expr(left, map)?,
                op: *op,
                right: map_expr(right, map)?,
            },
            Predicate::And(a, b) => {
                Predicate::And(Box::new(a.map_attrs(map)?), Box::new(b.map_attrs(map)?))
            }
            Predicate::Or(a, b) => {
                Predicate::Or(Box::new(a.map_attrs(map)?), Box::new(b.map_attrs(map)?))
            }
            Predicate::Not(p) => Predicate::Not(Box::new(p.map_attrs(map)?)),
        })
    }

    /// Rebuilds the predicate with every leaf expression passed through
    /// `map` — the general form of [`Predicate::map_attrs`], used by the
    /// prepared-statement layer to substitute [`Expr::Param`] leaves with
    /// literals at execute time. Interior [`Expr::Arith`] nodes are
    /// rebuilt from mapped children; only leaves reach `map`.
    pub fn map_exprs(&self, map: &impl Fn(&Expr) -> Result<Expr>) -> Result<Predicate> {
        fn map_expr(e: &Expr, map: &impl Fn(&Expr) -> Result<Expr>) -> Result<Expr> {
            Ok(match e {
                Expr::Arith(l, op, r) => Expr::Arith(
                    Box::new(map_expr(l, map)?),
                    *op,
                    Box::new(map_expr(r, map)?),
                ),
                leaf => map(leaf)?,
            })
        }
        Ok(match self {
            Predicate::True => Predicate::True,
            Predicate::Cmp { left, op, right } => Predicate::Cmp {
                left: map_expr(left, map)?,
                op: *op,
                right: map_expr(right, map)?,
            },
            Predicate::And(a, b) => {
                Predicate::And(Box::new(a.map_exprs(map)?), Box::new(b.map_exprs(map)?))
            }
            Predicate::Or(a, b) => {
                Predicate::Or(Box::new(a.map_exprs(map)?), Box::new(b.map_exprs(map)?))
            }
            Predicate::Not(p) => Predicate::Not(Box::new(p.map_exprs(map)?)),
        })
    }

    /// Evaluates the predicate against `tuple`.
    pub fn eval(&self, tuple: &Tuple) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Cmp { left, op, right } => {
                let l = left.eval(tuple)?;
                let r = right.eval(tuple)?;
                let ord = match (&l, &r) {
                    (Value::Int(a), Value::Int(b)) => a.cmp(b),
                    (Value::Str(a), Value::Str(b)) => a.cmp(b),
                    _ => {
                        return Err(RelalgError::TypeMismatch {
                            expected: "operands of the same type",
                            found: "mixed Int/Str comparison",
                        })
                    }
                };
                Ok(op.test(ord))
            }
            Predicate::And(a, b) => Ok(a.eval(tuple)? && b.eval(tuple)?),
            Predicate::Or(a, b) => Ok(a.eval(tuple)? || b.eval(tuple)?),
            Predicate::Not(p) => Ok(!p.eval(tuple)?),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons() {
        let t = Tuple::from_ints(&[5, 7]);
        assert!(Predicate::cmp_int(0, CmpOp::Lt, 6).eval(&t).unwrap());
        assert!(!Predicate::cmp_int(0, CmpOp::Gt, 6).eval(&t).unwrap());
        assert!(Predicate::cmp_int(1, CmpOp::Ge, 7).eval(&t).unwrap());
        assert!(Predicate::cmp_int(1, CmpOp::Ne, 5).eval(&t).unwrap());
        assert!(Predicate::attr_eq(0, 0).eval(&t).unwrap());
        assert!(!Predicate::attr_eq(0, 1).eval(&t).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let t = Tuple::from_ints(&[5]);
        let lt = Predicate::cmp_int(0, CmpOp::Lt, 10);
        let gt = Predicate::cmp_int(0, CmpOp::Gt, 10);
        assert!(Predicate::And(Box::new(lt.clone()), Box::new(lt.clone()))
            .eval(&t)
            .unwrap());
        assert!(!Predicate::And(Box::new(lt.clone()), Box::new(gt.clone()))
            .eval(&t)
            .unwrap());
        assert!(Predicate::Or(Box::new(gt.clone()), Box::new(lt.clone()))
            .eval(&t)
            .unwrap());
        assert!(Predicate::Not(Box::new(gt)).eval(&t).unwrap());
        assert!(Predicate::True.eval(&t).unwrap());
    }

    #[test]
    fn string_comparison() {
        let t = Tuple::new(vec![Value::str("abc"), Value::str("abd")]);
        let p = Predicate::Cmp {
            left: Expr::Attr(0),
            op: CmpOp::Lt,
            right: Expr::Attr(1),
        };
        assert!(p.eval(&t).unwrap());
    }

    #[test]
    fn mixed_types_error() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("a")]);
        let p = Predicate::attr_eq(0, 1);
        assert!(p.eval(&t).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Predicate::cmp_int(0, CmpOp::Le, 3).to_string(), "#0 <= 3");
    }

    #[test]
    fn map_exprs_substitutes_params() {
        let p = Predicate::And(
            Box::new(Predicate::Cmp {
                left: Expr::Attr(0),
                op: CmpOp::Lt,
                right: Expr::Param(1),
            }),
            Box::new(Predicate::Cmp {
                left: Expr::Arith(
                    Box::new(Expr::Attr(1)),
                    crate::expr::ArithOp::Add,
                    Box::new(Expr::Param(2)),
                ),
                op: CmpOp::Eq,
                right: Expr::Lit(Value::Int(9)),
            }),
        );
        // Unbound params fail at eval time.
        assert!(p.eval(&Tuple::from_ints(&[1, 2])).is_err());
        let bound = p
            .map_exprs(&|e| {
                Ok(match e {
                    Expr::Param(n) => Expr::Lit(Value::Int(*n as i64 + 4)),
                    other => other.clone(),
                })
            })
            .unwrap();
        // ?1 -> 5, ?2 -> 6: `#0 < 5 AND (#1 + 6) = 9`.
        assert!(bound.eval(&Tuple::from_ints(&[4, 3])).unwrap());
        assert!(!bound.eval(&Tuple::from_ints(&[5, 3])).unwrap());
        assert_eq!(bound.to_string(), "(#0 < 5 AND (#1 + 6) = 9)");
    }
}
