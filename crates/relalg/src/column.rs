//! Columnar batches: one typed buffer per column plus selection vectors.
//!
//! This is the engine's internal data layout. Rows ([`Tuple`]) survive only
//! at the client/stream boundary; everywhere else operators move
//! [`ColumnBatch`]es — a `Vec<i64>` fast path per integer column and a
//! [`Value`] fallback column for strings — and describe *subsets* of a
//! batch with **selection vectors** (`Vec<u32>` of row indices) instead of
//! copying rows. The kernels here are the vectorized building blocks:
//!
//! * [`select`] evaluates a [`Predicate`] into a selection vector; the
//!   common `attr op literal` shape over an integer column compiles to a
//!   branch-free compare-into-selection loop ([`select_cmp_i64`]).
//! * gather/append primitives ([`ColumnBatch::append_gather`],
//!   [`ColumnBatch::append_concat_gather`]) materialize the selected or
//!   joined rows column-at-a-time.
//! * [`bucket_keys`] hashes a whole key column into partition buckets for
//!   the redistribution router.
//!
//! [`ColumnLayout`] carries the per-column types so buffer pools can
//! preallocate and account **real** columnar bytes (8 bytes per `i64` slot
//! rather than a row-struct guess).

use std::ops::Range;

use crate::error::{RelalgError, Result};
use crate::expr::Expr;
use crate::predicate::{CmpOp, Predicate};
use crate::relation::Relation;
use crate::schema::{DataType, Schema};
use crate::simd;
use crate::tuple::Tuple;
use crate::value::Value;

/// One column of a batch: a typed buffer.
///
/// Integer columns take the dense `Vec<i64>` fast path every vectorized
/// kernel targets; anything else (strings today) falls back to a `Vec` of
/// [`Value`]s.
#[derive(Clone, Debug, PartialEq)]
pub enum Column {
    /// Dense 64-bit integer column (the vectorized fast path).
    Int(Vec<i64>),
    /// Fallback column of boxed values (strings / mixed workloads).
    Val(Vec<Value>),
    /// Packed row references `(fragment_id << 32) | row_idx` carried by
    /// late-materialized plans instead of gathered payload columns. At row
    /// boundaries a ref bit-casts through [`Value::Int`].
    Ref(Vec<u64>),
}

impl Column {
    /// An empty column of the given type with room for `capacity` rows.
    pub fn for_type(ty: DataType, capacity: usize) -> Column {
        match ty {
            DataType::Int => Column::Int(Vec::with_capacity(capacity)),
            DataType::Str => Column::Val(Vec::with_capacity(capacity)),
            DataType::Ref => Column::Ref(Vec::with_capacity(capacity)),
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Val(_) => DataType::Str,
            Column::Ref(_) => DataType::Ref,
        }
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Val(v) => v.len(),
            Column::Ref(v) => v.len(),
        }
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all values, keeping the allocation.
    pub fn clear(&mut self) {
        match self {
            Column::Int(v) => v.clear(),
            Column::Val(v) => v.clear(),
            Column::Ref(v) => v.clear(),
        }
    }

    /// The dense integer slice, if this is an [`Column::Int`] column.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The packed row-reference slice, if this is a [`Column::Ref`] column.
    pub fn as_refs(&self) -> Option<&[u64]> {
        match self {
            Column::Ref(v) => Some(v),
            _ => None,
        }
    }

    /// The value at row `r` (clones; bounds-checked). Refs surface as
    /// bit-cast [`Value::Int`]s.
    pub fn value(&self, r: usize) -> Result<Value> {
        match self {
            Column::Int(v) => v.get(r).map(|&x| Value::Int(x)),
            Column::Val(v) => v.get(r).cloned(),
            Column::Ref(v) => v.get(r).map(|&x| Value::Int(x as i64)),
        }
        .ok_or(RelalgError::IndexOutOfBounds {
            index: r,
            arity: self.len(),
        })
    }

    /// Appends one value, enforcing the column type. A ref column accepts
    /// [`Value::Int`] (the bit-cast row-boundary form of a ref).
    pub fn push_value(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (Column::Int(col), Value::Int(x)) => col.push(*x),
            (Column::Ref(col), Value::Int(x)) => col.push(*x as u64),
            (Column::Val(col), v) => col.push(v.clone()),
            (Column::Int(_), Value::Str(_)) | (Column::Ref(_), Value::Str(_)) => {
                return Err(RelalgError::TypeMismatch {
                    expected: "Int for a dense column",
                    found: "Str",
                })
            }
        }
        Ok(())
    }

    /// Appends rows `start..end` of `src` (same column type required).
    pub fn append_range(&mut self, src: &Column, range: Range<usize>) -> Result<()> {
        match (self, src) {
            (Column::Int(dst), Column::Int(s)) => dst.extend_from_slice(&s[range]),
            (Column::Val(dst), Column::Val(s)) => dst.extend_from_slice(&s[range]),
            (Column::Ref(dst), Column::Ref(s)) => dst.extend_from_slice(&s[range]),
            (Column::Val(dst), Column::Int(s)) => {
                dst.extend(s[range].iter().map(|&x| Value::Int(x)))
            }
            (Column::Val(dst), Column::Ref(s)) => {
                dst.extend(s[range].iter().map(|&x| Value::Int(x as i64)))
            }
            _ => {
                return Err(RelalgError::TypeMismatch {
                    expected: "matching column source",
                    found: "mismatched column",
                })
            }
        }
        Ok(())
    }

    /// Appends the rows of `src` selected by `sel` (gather). Dense columns
    /// run the SIMD gather kernel when the host supports it.
    pub fn append_gather(&mut self, src: &Column, sel: &[u32]) -> Result<()> {
        match (self, src) {
            (Column::Int(dst), Column::Int(s)) => simd::gather_i64(s, sel, dst),
            (Column::Ref(dst), Column::Ref(s)) => simd::gather_u64(s, sel, dst),
            (Column::Val(dst), Column::Val(s)) => {
                dst.reserve(sel.len());
                for &i in sel {
                    dst.push(s[i as usize].clone());
                }
            }
            (Column::Val(dst), Column::Int(s)) => {
                dst.reserve(sel.len());
                for &i in sel {
                    dst.push(Value::Int(s[i as usize]));
                }
            }
            (Column::Val(dst), Column::Ref(s)) => {
                dst.reserve(sel.len());
                for &i in sel {
                    dst.push(Value::Int(s[i as usize] as i64));
                }
            }
            _ => {
                return Err(RelalgError::TypeMismatch {
                    expected: "matching column source",
                    found: "mismatched column",
                })
            }
        }
        Ok(())
    }

    /// Appends `src[pick(pair)]` for every join match pair, where `left`
    /// picks the build-row (`.0`) or probe-row (`.1`) index — the single
    /// gather-emission primitive of join output assembly.
    pub fn append_pair_gather(
        &mut self,
        src: &Column,
        pairs: &[(u32, u32)],
        left: bool,
    ) -> Result<()> {
        match (self, src) {
            (Column::Int(dst), Column::Int(s)) => simd::gather_pairs_i64(s, pairs, left, dst),
            (Column::Ref(dst), Column::Ref(s)) => simd::gather_pairs_u64(s, pairs, left, dst),
            (Column::Val(dst), s) => {
                dst.reserve(pairs.len());
                for &(l, r) in pairs {
                    dst.push(s.value(if left { l } else { r } as usize)?);
                }
            }
            _ => {
                return Err(RelalgError::TypeMismatch {
                    expected: "matching column source",
                    found: "mismatched column",
                })
            }
        }
        Ok(())
    }

    /// Bytes one *buffer slot* of this column type occupies (what a pool
    /// actually allocates per row of capacity).
    pub fn slot_bytes(ty: DataType) -> usize {
        match ty {
            DataType::Int | DataType::Ref => std::mem::size_of::<i64>(),
            DataType::Str => std::mem::size_of::<Value>(),
        }
    }

    /// Allocated buffer bytes (capacity, not length). Ref columns count
    /// their full 8-byte slots so memory budgets never undercount
    /// late-materialized batches.
    pub fn capacity_bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.capacity() * std::mem::size_of::<i64>(),
            Column::Val(v) => v.capacity() * std::mem::size_of::<Value>(),
            Column::Ref(v) => v.capacity() * std::mem::size_of::<u64>(),
        }
    }

    /// Logical bytes of the values held (heap payloads included for
    /// strings), mirroring [`Tuple::est_bytes`]'s ownership model.
    pub fn est_bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * std::mem::size_of::<i64>(),
            Column::Val(v) => v.iter().map(|x| x.est_bytes() + 8).sum(),
            Column::Ref(v) => v.len() * std::mem::size_of::<u64>(),
        }
    }
}

/// The per-column types of a batch — what a buffer pool needs to
/// preallocate correctly-typed column buffers and charge real bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnLayout {
    types: Vec<DataType>,
}

impl ColumnLayout {
    /// The layout of batches conforming to `schema`.
    pub fn of(schema: &Schema) -> ColumnLayout {
        ColumnLayout {
            types: schema.attrs().iter().map(|a| a.ty).collect(),
        }
    }

    /// An all-integer layout of the given arity (tests, generators).
    pub fn ints(arity: usize) -> ColumnLayout {
        ColumnLayout {
            types: vec![DataType::Int; arity],
        }
    }

    /// The column types in order.
    pub fn types(&self) -> &[DataType] {
        &self.types
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.types.len()
    }

    /// Buffer bytes one row of capacity occupies across all columns — the
    /// unit batch pools charge per pooled row slot: 8 bytes per integer
    /// column, one `Value` slot per fallback column.
    pub fn row_bytes(&self) -> usize {
        self.types.iter().map(|&t| Column::slot_bytes(t)).sum()
    }
}

/// Buffer bytes per row of a batch conforming to `schema` — the columnar
/// accounting unit used by pools, planners, and memory budgets.
pub fn columnar_row_bytes(schema: &Schema) -> usize {
    ColumnLayout::of(schema).row_bytes()
}

/// A batch of rows stored column-wise.
///
/// The batch either has a fixed layout from construction
/// ([`ColumnBatch::with_capacity`]) or starts *shapeless*
/// ([`ColumnBatch::shapeless`]) and adopts the layout of the first data
/// appended — operator output buffers use the latter so drivers need no
/// schema plumbing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ColumnBatch {
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnBatch {
    /// An empty batch with typed columns of the given capacity.
    pub fn with_capacity(layout: &ColumnLayout, capacity: usize) -> ColumnBatch {
        ColumnBatch {
            columns: layout
                .types
                .iter()
                .map(|&t| Column::for_type(t, capacity))
                .collect(),
            rows: 0,
        }
    }

    /// An empty batch shaped for `schema` (no preallocation).
    pub fn for_schema(schema: &Schema) -> ColumnBatch {
        ColumnBatch::with_capacity(&ColumnLayout::of(schema), 0)
    }

    /// A batch with no columns yet: the first append adopts the source's
    /// layout. Operator output buffers start shapeless.
    pub fn shapeless() -> ColumnBatch {
        ColumnBatch::default()
    }

    /// Converts a row relation to columns (the scan boundary).
    pub fn from_relation(rel: &Relation) -> Result<ColumnBatch> {
        let mut batch = ColumnBatch::with_capacity(&ColumnLayout::of(rel.schema()), rel.len());
        for t in rel.iter() {
            batch.push_tuple(t)?;
        }
        Ok(batch)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True if the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns (0 while shapeless).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Drops all rows, keeping every column buffer's allocation.
    pub fn clear(&mut self) {
        for c in &mut self.columns {
            c.clear();
        }
        self.rows = 0;
    }

    /// The column at position `c`.
    pub fn column(&self, c: usize) -> Result<&Column> {
        self.columns.get(c).ok_or(RelalgError::IndexOutOfBounds {
            index: c,
            arity: self.columns.len(),
        })
    }

    /// The dense integer slice of column `c`, or a type/index error — the
    /// entry point of every key-column kernel.
    pub fn int_col(&self, c: usize) -> Result<&[i64]> {
        self.column(c)?.as_ints().ok_or(RelalgError::TypeMismatch {
            expected: "Int column",
            found: "Val column",
        })
    }

    /// The value at (column `c`, row `r`), cloned.
    pub fn value_at(&self, c: usize, r: usize) -> Result<Value> {
        self.column(c)?.value(r)
    }

    /// The layout of this batch's columns.
    pub fn layout(&self) -> ColumnLayout {
        ColumnLayout {
            types: self.columns.iter().map(Column::data_type).collect(),
        }
    }

    /// If shapeless, adopts the given column types.
    fn ensure_layout(&mut self, types: impl Iterator<Item = DataType>) {
        if self.columns.is_empty() && self.rows == 0 {
            self.columns = types.map(|t| Column::for_type(t, 0)).collect();
        }
    }

    fn check_arity(&self, found: usize) -> Result<()> {
        if self.columns.len() != found {
            return Err(RelalgError::SchemaMismatch(format!(
                "batch of arity {} cannot accept rows of arity {found}",
                self.columns.len()
            )));
        }
        Ok(())
    }

    /// Appends one row from a [`Tuple`] (the boundary path: scans entering
    /// the columnar world and tests).
    pub fn push_tuple(&mut self, t: &Tuple) -> Result<()> {
        self.ensure_layout(t.values().iter().map(|v| match v {
            Value::Int(_) => DataType::Int,
            Value::Str(_) => DataType::Str,
        }));
        self.check_arity(t.arity())?;
        for (c, v) in self.columns.iter_mut().zip(t.values()) {
            c.push_value(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Materializes row `r` as a [`Tuple`] (the client boundary path).
    pub fn row(&self, r: usize) -> Result<Tuple> {
        if r >= self.rows {
            return Err(RelalgError::IndexOutOfBounds {
                index: r,
                arity: self.rows,
            });
        }
        let mut values = Vec::with_capacity(self.columns.len());
        for c in &self.columns {
            values.push(c.value(r)?);
        }
        Ok(Tuple::new(values))
    }

    /// Materializes rows `start..end` as [`Tuple`]s into `out`.
    pub fn rows_into(&self, range: Range<usize>, out: &mut Vec<Tuple>) -> Result<()> {
        out.reserve(range.len());
        for r in range {
            out.push(self.row(r)?);
        }
        Ok(())
    }

    /// Appends rows `start..end` of `src` column-at-a-time.
    pub fn append_rows(&mut self, src: &ColumnBatch, range: Range<usize>) -> Result<()> {
        self.ensure_layout(src.columns.iter().map(Column::data_type));
        self.check_arity(src.arity())?;
        for (dst, s) in self.columns.iter_mut().zip(&src.columns) {
            dst.append_range(s, range.clone())?;
        }
        self.rows += range.len();
        Ok(())
    }

    /// Appends `n` rows assembled column-by-column: `fill` is called once
    /// per column with `(column_index, &mut column)` and must append
    /// exactly `n` values to it. This is the late-materialization
    /// resolver's assembly point — each output column is either a dense
    /// copy or a registry gather, decided per column rather than per row.
    pub fn append_with(
        &mut self,
        n: usize,
        mut fill: impl FnMut(usize, &mut Column) -> Result<()>,
    ) -> Result<()> {
        for (i, col) in self.columns.iter_mut().enumerate() {
            let before = col.len();
            fill(i, col)?;
            debug_assert_eq!(
                col.len(),
                before + n,
                "append_with fill must add exactly n values to column {i}"
            );
        }
        self.rows += n;
        Ok(())
    }

    /// Appends the rows of `src` selected by `sel` (column-wise gather).
    pub fn append_gather(&mut self, src: &ColumnBatch, sel: &[u32]) -> Result<()> {
        self.ensure_layout(src.columns.iter().map(Column::data_type));
        self.check_arity(src.arity())?;
        for (dst, s) in self.columns.iter_mut().zip(&src.columns) {
            dst.append_gather(s, sel)?;
        }
        self.rows += sel.len();
        Ok(())
    }

    /// Appends the rows of `src` selected by `sel`, projected onto
    /// `cols` (indices into `src`) — selection and projection fused into
    /// one gather.
    pub fn append_project_gather(
        &mut self,
        src: &ColumnBatch,
        cols: &[usize],
        sel: &[u32],
    ) -> Result<()> {
        let mut types = Vec::with_capacity(cols.len());
        for &c in cols {
            types.push(src.column(c)?.data_type());
        }
        self.ensure_layout(types.into_iter());
        self.check_arity(cols.len())?;
        for (dst, &c) in self.columns.iter_mut().zip(cols) {
            dst.append_gather(src.column(c)?, sel)?;
        }
        self.rows += sel.len();
        Ok(())
    }

    /// Appends join results: for every `(l, r)` pair in `pairs`, the
    /// projected concatenation of `left` row `l` and `right` row `r`.
    /// `cols` indexes the virtual concatenation `left ++ right` exactly
    /// like [`Tuple::project_concat`], but each output column is gathered
    /// in one tight loop instead of per-row dispatch.
    pub fn append_concat_gather(
        &mut self,
        left: &ColumnBatch,
        right: &ColumnBatch,
        cols: &[usize],
        pairs: &[(u32, u32)],
    ) -> Result<()> {
        if pairs.is_empty() {
            // Nothing to append. Skipping the column-type resolution also
            // keeps an *empty* (still shapeless, arity-0) join side from
            // tripping the arity check below — probes routinely arrive
            // before the opposite table holds its first row.
            return Ok(());
        }
        let total = left.arity() + right.arity();
        let mut types = Vec::with_capacity(cols.len());
        for &c in cols {
            let col = if c < left.arity() {
                left.column(c)?
            } else if c < total {
                right.column(c - left.arity())?
            } else {
                return Err(RelalgError::IndexOutOfBounds {
                    index: c,
                    arity: total,
                });
            };
            types.push(col.data_type());
        }
        self.ensure_layout(types.into_iter());
        self.check_arity(cols.len())?;
        for (dst, &c) in self.columns.iter_mut().zip(cols) {
            if c < left.arity() {
                dst.append_pair_gather(left.column(c)?, pairs, true)?;
            } else {
                dst.append_pair_gather(right.column(c - left.arity())?, pairs, false)?;
            }
        }
        self.rows += pairs.len();
        Ok(())
    }

    /// Logical bytes of the rows held (the sizing unit operator metrics
    /// and flush thresholds use).
    pub fn est_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.est_bytes() as u64).sum()
    }

    /// Allocated buffer bytes across all columns (what the batch pool
    /// charges against a memory budget).
    pub fn capacity_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.capacity_bytes() as u64).sum()
    }
}

/// Branch-free compare-into-selection over a dense integer column: appends
/// to `out` the indices `i` (restricted to `sel` when given) where
/// `keys[i] op lit`. The dense (no `sel`) form dispatches to the explicit
/// SIMD kernel ([`simd::select_cmp`]) when the host supports it; the
/// selective form stays a scalar branch-free loop (unconditional store,
/// advance by the comparison result).
pub fn select_cmp_i64(keys: &[i64], op: CmpOp, lit: i64, sel: Option<&[u32]>, out: &mut Vec<u32>) {
    #[inline]
    fn run(keys: &[i64], sel: &[u32], out: &mut Vec<u32>, f: impl Fn(i64) -> bool) {
        let base = out.len();
        out.resize(base + sel.len(), 0);
        let mut k = base;
        for &i in sel {
            out[k] = i;
            k += f(keys[i as usize]) as usize;
        }
        out.truncate(k);
    }
    match sel {
        None => simd::select_cmp(keys, op, lit, out),
        Some(sel) => match op {
            CmpOp::Eq => run(keys, sel, out, |v| v == lit),
            CmpOp::Ne => run(keys, sel, out, |v| v != lit),
            CmpOp::Lt => run(keys, sel, out, |v| v < lit),
            CmpOp::Le => run(keys, sel, out, |v| v <= lit),
            CmpOp::Gt => run(keys, sel, out, |v| v > lit),
            CmpOp::Ge => run(keys, sel, out, |v| v >= lit),
        },
    }
}

/// Column-vs-column variant of [`select_cmp_i64`]: appends the indices
/// where `a[i] op b[i]`.
pub fn select_cmp_cols_i64(
    a: &[i64],
    b: &[i64],
    op: CmpOp,
    sel: Option<&[u32]>,
    out: &mut Vec<u32>,
) {
    #[inline]
    fn run(
        a: &[i64],
        b: &[i64],
        sel: Option<&[u32]>,
        out: &mut Vec<u32>,
        f: impl Fn(i64, i64) -> bool,
    ) {
        let base = out.len();
        match sel {
            None => {
                let n = a.len().min(b.len());
                out.resize(base + n, 0);
                let mut k = base;
                for i in 0..n {
                    out[k] = i as u32;
                    k += f(a[i], b[i]) as usize;
                }
                out.truncate(k);
            }
            Some(sel) => {
                out.resize(base + sel.len(), 0);
                let mut k = base;
                for &i in sel {
                    out[k] = i;
                    k += f(a[i as usize], b[i as usize]) as usize;
                }
                out.truncate(k);
            }
        }
    }
    match op {
        CmpOp::Eq => run(a, b, sel, out, |x, y| x == y),
        CmpOp::Ne => run(a, b, sel, out, |x, y| x != y),
        CmpOp::Lt => run(a, b, sel, out, |x, y| x < y),
        CmpOp::Le => run(a, b, sel, out, |x, y| x <= y),
        CmpOp::Gt => run(a, b, sel, out, |x, y| x > y),
        CmpOp::Ge => run(a, b, sel, out, |x, y| x >= y),
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Evaluates `pred` row-by-row over the candidate rows (the slow path for
/// string columns and arithmetic expressions).
fn select_fallback(
    pred: &Predicate,
    batch: &ColumnBatch,
    cand: &[u32],
    out: &mut Vec<u32>,
) -> Result<()> {
    for &i in cand {
        if pred.eval(&batch.row(i as usize)?)? {
            out.push(i);
        }
    }
    Ok(())
}

fn select_sel(
    pred: &Predicate,
    batch: &ColumnBatch,
    cand: &[u32],
    out: &mut Vec<u32>,
) -> Result<()> {
    match pred {
        Predicate::True => out.extend_from_slice(cand),
        Predicate::Cmp { left, op, right } => match (left, right) {
            (Expr::Attr(i), Expr::Lit(Value::Int(lit))) => match batch.column(*i)?.as_ints() {
                Some(keys) => select_cmp_i64(keys, *op, *lit, Some(cand), out),
                None => select_fallback(pred, batch, cand, out)?,
            },
            (Expr::Lit(Value::Int(lit)), Expr::Attr(i)) => match batch.column(*i)?.as_ints() {
                Some(keys) => select_cmp_i64(keys, flip(*op), *lit, Some(cand), out),
                None => select_fallback(pred, batch, cand, out)?,
            },
            (Expr::Attr(i), Expr::Attr(j)) => {
                match (batch.column(*i)?.as_ints(), batch.column(*j)?.as_ints()) {
                    (Some(a), Some(b)) => select_cmp_cols_i64(a, b, *op, Some(cand), out),
                    _ => select_fallback(pred, batch, cand, out)?,
                }
            }
            _ => select_fallback(pred, batch, cand, out)?,
        },
        Predicate::And(a, b) => {
            let mut tmp = Vec::new();
            select_sel(a, batch, cand, &mut tmp)?;
            select_sel(b, batch, &tmp, out)?;
        }
        Predicate::Or(a, b) => {
            // Keep candidate order: evaluate both sides and merge the two
            // ascending index lists, dropping duplicates.
            let (mut la, mut lb) = (Vec::new(), Vec::new());
            select_sel(a, batch, cand, &mut la)?;
            select_sel(b, batch, cand, &mut lb)?;
            let (mut x, mut y) = (0usize, 0usize);
            while x < la.len() || y < lb.len() {
                match (la.get(x), lb.get(y)) {
                    (Some(&i), Some(&j)) if i == j => {
                        out.push(i);
                        x += 1;
                        y += 1;
                    }
                    (Some(&i), Some(&j)) if i < j => {
                        out.push(i);
                        x += 1;
                    }
                    (Some(_), Some(&j)) => {
                        out.push(j);
                        y += 1;
                    }
                    (Some(&i), None) => {
                        out.push(i);
                        x += 1;
                    }
                    (None, Some(&j)) => {
                        out.push(j);
                        y += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        Predicate::Not(p) => {
            // Complement of the inner selection within the candidates.
            let mut inner = Vec::new();
            select_sel(p, batch, cand, &mut inner)?;
            let mut k = 0usize;
            for &i in cand {
                if inner.get(k) == Some(&i) {
                    k += 1;
                } else {
                    out.push(i);
                }
            }
        }
    }
    Ok(())
}

/// Evaluates `pred` over rows `range` of `batch`, appending the selected
/// row indices (ascending, duplicate-free) to `out`. Integer
/// `attr op literal` comparisons run as branch-free kernels; `AND` chains
/// thread the shrinking selection vector through each conjunct; string and
/// arithmetic shapes fall back to row-at-a-time evaluation.
pub fn select(
    pred: &Predicate,
    batch: &ColumnBatch,
    range: Range<usize>,
    out: &mut Vec<u32>,
) -> Result<()> {
    if range.end > batch.rows() {
        return Err(RelalgError::IndexOutOfBounds {
            index: range.end,
            arity: batch.rows(),
        });
    }
    // Top-level fast paths avoid materializing the dense candidate list.
    match pred {
        Predicate::True => {
            out.extend(range.map(|i| i as u32));
            Ok(())
        }
        Predicate::Cmp {
            left: Expr::Attr(i),
            op,
            right: Expr::Lit(Value::Int(lit)),
        } if batch.column(*i)?.as_ints().is_some() => {
            let keys = batch.int_col(*i)?;
            let base = out.len();
            select_cmp_i64(&keys[range.clone()], *op, *lit, None, out);
            for v in &mut out[base..] {
                *v += range.start as u32;
            }
            Ok(())
        }
        _ => {
            let cand: Vec<u32> = range.map(|i| i as u32).collect();
            select_sel(pred, batch, &cand, out)
        }
    }
}

/// Hashes a whole key column into partition buckets: `out[i]` is the
/// destination of row `i` among `parts` consumers. The redistribution
/// router's vectorized split. Dispatches through [`simd::bucket_keys`],
/// which currently ships the scalar body (the AVX2 form measured slower —
/// see [`simd::BUCKET_HASH_SIMD`]).
pub fn bucket_keys(keys: &[i64], parts: usize, out: &mut Vec<u32>) {
    simd::bucket_keys(keys, parts, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::bucket_of;
    use crate::schema::Attribute;

    fn batch(rows: &[[i64; 2]]) -> ColumnBatch {
        let mut b = ColumnBatch::with_capacity(&ColumnLayout::ints(2), rows.len());
        for r in rows {
            b.push_tuple(&Tuple::from_ints(r)).unwrap();
        }
        b
    }

    #[test]
    fn roundtrips_relation_rows() {
        let schema = Schema::new(vec![Attribute::int("a"), Attribute::str("s")]).shared();
        let rel = Relation::new(
            schema,
            vec![
                Tuple::new(vec![Value::Int(1), Value::str("x")]),
                Tuple::new(vec![Value::Int(2), Value::str("y")]),
            ],
        )
        .unwrap();
        let cols = ColumnBatch::from_relation(&rel).unwrap();
        assert_eq!(cols.rows(), 2);
        assert_eq!(cols.int_col(0).unwrap(), &[1, 2]);
        assert!(cols.int_col(1).is_err(), "string column is not dense ints");
        for (i, t) in rel.iter().enumerate() {
            assert_eq!(&cols.row(i).unwrap(), t);
        }
        assert!(cols.row(2).is_err());
    }

    #[test]
    fn shapeless_adopts_first_source_layout() {
        let src = batch(&[[1, 10], [2, 20], [3, 30]]);
        let mut out = ColumnBatch::shapeless();
        assert_eq!(out.arity(), 0);
        out.append_gather(&src, &[2, 0]).unwrap();
        assert_eq!(out.arity(), 2);
        assert_eq!(out.int_col(0).unwrap(), &[3, 1]);
        assert_eq!(out.int_col(1).unwrap(), &[30, 10]);
        // Once shaped, mismatched arity is rejected.
        let wide = {
            let mut b = ColumnBatch::with_capacity(&ColumnLayout::ints(3), 1);
            b.push_tuple(&Tuple::from_ints(&[1, 2, 3])).unwrap();
            b
        };
        assert!(out.append_rows(&wide, 0..1).is_err());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = batch(&[[1, 2], [3, 4]]);
        let cap = b.capacity_bytes();
        b.clear();
        assert_eq!(b.rows(), 0);
        assert_eq!(b.capacity_bytes(), cap);
        b.push_tuple(&Tuple::from_ints(&[9, 9])).unwrap();
        assert_eq!(b.rows(), 1);
    }

    #[test]
    fn layout_row_bytes_counts_real_slots() {
        let ints = ColumnLayout::ints(3);
        assert_eq!(ints.row_bytes(), 24);
        let schema = Schema::new(vec![Attribute::int("a"), Attribute::str("s")]).shared();
        assert_eq!(
            columnar_row_bytes(&schema),
            8 + std::mem::size_of::<Value>()
        );
    }

    #[test]
    fn select_cmp_is_exact_on_all_ops() {
        let keys = [5i64, -3, 7, 0, 7, 12];
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let mut got = Vec::new();
            select_cmp_i64(&keys, op, 7, None, &mut got);
            let want: Vec<u32> = keys
                .iter()
                .enumerate()
                .filter(|(_, &v)| {
                    Predicate::cmp_int(0, op, 7)
                        .eval(&Tuple::from_ints(&[v]))
                        .unwrap()
                })
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want, "op {op:?}");
        }
    }

    #[test]
    fn select_chains_and_or_not_like_row_eval() {
        let b = batch(&[[1, 10], [2, 20], [3, 30], [4, 40], [5, 50]]);
        let preds = [
            Predicate::cmp_int(0, CmpOp::Gt, 2),
            Predicate::And(
                Box::new(Predicate::cmp_int(0, CmpOp::Gt, 1)),
                Box::new(Predicate::cmp_int(1, CmpOp::Lt, 50)),
            ),
            Predicate::Or(
                Box::new(Predicate::cmp_int(0, CmpOp::Le, 2)),
                Box::new(Predicate::cmp_int(1, CmpOp::Ge, 40)),
            ),
            Predicate::Not(Box::new(Predicate::cmp_int(0, CmpOp::Eq, 3))),
            Predicate::attr_eq(0, 1),
            Predicate::True,
        ];
        for pred in &preds {
            let mut sel = Vec::new();
            select(pred, &b, 0..b.rows(), &mut sel).unwrap();
            let want: Vec<u32> = (0..b.rows())
                .filter(|&i| pred.eval(&b.row(i).unwrap()).unwrap())
                .map(|i| i as u32)
                .collect();
            assert_eq!(&sel, &want, "pred {pred}");
        }
    }

    #[test]
    fn select_respects_subrange() {
        let b = batch(&[[1, 0], [2, 0], [3, 0], [4, 0]]);
        let mut sel = Vec::new();
        select(&Predicate::cmp_int(0, CmpOp::Ge, 2), &b, 1..3, &mut sel).unwrap();
        assert_eq!(sel, vec![1, 2]);
        assert!(select(&Predicate::True, &b, 0..9, &mut Vec::new()).is_err());
    }

    #[test]
    fn concat_gather_matches_project_concat() {
        let left = batch(&[[1, 100], [2, 200]]);
        let right = batch(&[[7, 70], [8, 80], [9, 90]]);
        let cols = [0usize, 3, 1];
        let pairs = [(0u32, 2u32), (1, 0), (1, 1)];
        let mut out = ColumnBatch::shapeless();
        out.append_concat_gather(&left, &right, &cols, &pairs)
            .unwrap();
        assert_eq!(out.rows(), 3);
        for (k, &(l, r)) in pairs.iter().enumerate() {
            let want = Tuple::project_concat(
                &left.row(l as usize).unwrap(),
                &right.row(r as usize).unwrap(),
                &cols,
            )
            .unwrap();
            assert_eq!(out.row(k).unwrap(), want);
        }
        assert!(out
            .append_concat_gather(&left, &right, &[4], &pairs)
            .is_err());
    }

    #[test]
    fn bucket_keys_matches_scalar_hash() {
        let keys = [3i64, -1, 42, 0, 99];
        let mut out = Vec::new();
        bucket_keys(&keys, 4, &mut out);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(out[i] as usize, bucket_of(k, 4));
        }
    }

    #[test]
    fn est_and_capacity_bytes_track_columns() {
        let b = batch(&[[1, 2], [3, 4]]);
        assert_eq!(b.est_bytes(), 32, "2 rows x 2 int columns x 8 bytes");
        assert!(b.capacity_bytes() >= b.est_bytes());
    }

    #[test]
    fn ref_columns_roundtrip_through_tuples_and_gathers() {
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::rowref("@r")]).shared();
        let layout = ColumnLayout::of(&schema);
        assert_eq!(layout.row_bytes(), 16, "a ref slot is 8 bytes");
        let mut b = ColumnBatch::with_capacity(&layout, 4);
        // Refs with the high bit set must survive the i64 bit-cast.
        let refs: [u64; 3] = [(7u64 << 32) | 3, u64::MAX - 5, 0];
        for (i, &r) in refs.iter().enumerate() {
            b.push_tuple(&Tuple::from_ints(&[i as i64, r as i64]))
                .unwrap();
        }
        assert_eq!(b.column(1).unwrap().as_refs().unwrap(), &refs);
        assert_eq!(
            b.row(1).unwrap(),
            Tuple::from_ints(&[1, (u64::MAX - 5) as i64])
        );

        // Gather and pair-gather preserve refs bit-exactly; shapeless
        // destinations adopt the Ref layout.
        let mut g = ColumnBatch::shapeless();
        g.append_gather(&b, &[2, 0]).unwrap();
        assert_eq!(g.column(1).unwrap().as_refs().unwrap(), &[0, refs[0]]);
        let mut out = ColumnBatch::shapeless();
        out.append_concat_gather(&b, &g, &[1, 3], &[(1, 0), (2, 1)])
            .unwrap();
        assert_eq!(
            out.column(0).unwrap().as_refs().unwrap(),
            &[refs[1], refs[2]]
        );
        assert_eq!(out.column(1).unwrap().as_refs().unwrap(), &[0, refs[0]]);
    }

    #[test]
    fn capacity_bytes_counts_ref_columns() {
        // Regression for the memory-budget charge site: a pooled buffer
        // with a ref column must charge its 8-byte slots like ints.
        let layout = ColumnLayout {
            types: vec![DataType::Int, DataType::Ref],
        };
        let b = ColumnBatch::with_capacity(&layout, 8);
        assert_eq!(b.capacity_bytes(), 2 * 8 * 8);
    }
}
