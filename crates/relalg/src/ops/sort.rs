//! Sorting, used to canonicalize results for display and comparison.

use crate::error::Result;
use crate::relation::Relation;

/// Returns `input` sorted ascending by the given columns (lexicographic).
pub fn sort_by_cols(input: &Relation, cols: &[usize]) -> Result<Relation> {
    // Validate columns up front so sorting can use infallible access.
    for &c in cols {
        input.schema().attr(c)?;
    }
    let mut tuples = input.tuples().to_vec();
    tuples.sort_by(|a, b| {
        for &c in cols {
            let ord = a.values()[c].cmp(&b.values()[c]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(Relation::new_unchecked(input.schema().clone(), tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::tuple::Tuple;

    #[test]
    fn sorts_lexicographically() {
        let schema = Schema::new(vec![Attribute::int("a"), Attribute::int("b")]).shared();
        let r = Relation::new(
            schema,
            vec![
                Tuple::from_ints(&[2, 1]),
                Tuple::from_ints(&[1, 9]),
                Tuple::from_ints(&[2, 0]),
            ],
        )
        .unwrap();
        let out = sort_by_cols(&r, &[0, 1]).unwrap();
        assert_eq!(
            out.tuples(),
            &[
                Tuple::from_ints(&[1, 9]),
                Tuple::from_ints(&[2, 0]),
                Tuple::from_ints(&[2, 1]),
            ]
        );
    }

    #[test]
    fn invalid_column_errors() {
        let schema = Schema::new(vec![Attribute::int("a")]).shared();
        let r = Relation::new(schema, vec![Tuple::from_ints(&[1])]).unwrap();
        assert!(sort_by_cols(&r, &[2]).is_err());
    }
}
