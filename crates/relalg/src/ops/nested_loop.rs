//! Nested-loop equi-join: the quadratic, obviously-correct join used as the
//! oracle against which every hash join in the workspace is verified.

use std::sync::Arc;

use crate::error::Result;
use crate::relation::Relation;
use crate::xra::EquiJoin;

/// Joins `left` and `right` with the given equi-join spec by exhaustive
/// pairing. O(|L|·|R|) — test/oracle use only.
pub fn nested_loop_join(left: &Relation, right: &Relation, join: &EquiJoin) -> Result<Relation> {
    let out_schema = Arc::new(
        join.projection
            .output_schema(&left.schema().concat(right.schema()))?,
    );
    let mut out = Vec::new();
    for l in left {
        let lk = l.get(join.left_key)?;
        for r in right {
            if lk == r.get(join.right_key)? {
                out.push(join.projection.apply_concat(l, r)?);
            }
        }
    }
    Ok(Relation::new_unchecked(out_schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::Projection;
    use crate::schema::{Attribute, Schema};
    use crate::tuple::Tuple;

    fn rel(name: &str, rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![
            Attribute::int(format!("{name}_k")),
            Attribute::int(format!("{name}_v")),
        ])
        .shared();
        Relation::new(schema, rows.iter().map(|r| Tuple::from_ints(r)).collect()).unwrap()
    }

    #[test]
    fn joins_matching_keys() {
        let l = rel("l", &[[1, 10], [2, 20], [3, 30]]);
        let r = rel("r", &[[2, 200], [3, 300], [4, 400]]);
        let join = EquiJoin::new(0, 0, Projection::new(vec![0, 1, 3]));
        let out = nested_loop_join(&l, &r, &join).unwrap();
        assert_eq!(out.len(), 2);
        let mut got: Vec<(i64, i64, i64)> = out
            .iter()
            .map(|t| (t.int(0).unwrap(), t.int(1).unwrap(), t.int(2).unwrap()))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![(2, 20, 200), (3, 30, 300)]);
    }

    #[test]
    fn duplicates_multiply() {
        let l = rel("l", &[[1, 10], [1, 11]]);
        let r = rel("r", &[[1, 100], [1, 101], [1, 102]]);
        let join = EquiJoin::new(0, 0, Projection::new(vec![1, 3]));
        let out = nested_loop_join(&l, &r, &join).unwrap();
        assert_eq!(out.len(), 6, "2 x 3 matching pairs");
    }

    #[test]
    fn empty_side_gives_empty_result() {
        let l = rel("l", &[]);
        let r = rel("r", &[[1, 1]]);
        let join = EquiJoin::new(0, 0, Projection::new(vec![0]));
        assert!(nested_loop_join(&l, &r, &join).unwrap().is_empty());
    }
}
