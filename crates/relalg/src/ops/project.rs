//! Projection (π).

use std::sync::Arc;

use crate::error::Result;
use crate::projection::Projection;
use crate::relation::Relation;

/// Projects every tuple of `input` onto the given columns.
pub fn project(input: &Relation, projection: &Projection) -> Result<Relation> {
    let schema = Arc::new(projection.output_schema(input.schema())?);
    let mut out = Vec::with_capacity(input.len());
    for t in input {
        out.push(projection.apply(t)?);
    }
    Ok(Relation::new_unchecked(schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::tuple::Tuple;

    #[test]
    fn projects_columns() {
        let schema = Schema::new(vec![Attribute::int("a"), Attribute::int("b")]).shared();
        let r = Relation::new(
            schema,
            vec![Tuple::from_ints(&[1, 10]), Tuple::from_ints(&[2, 20])],
        )
        .unwrap();
        let out = project(&r, &Projection::new(vec![1])).unwrap();
        assert_eq!(out.schema().arity(), 1);
        assert_eq!(out.schema().attr(0).unwrap().name, "b");
        assert_eq!(out.tuples()[0], Tuple::from_ints(&[10]));
        assert_eq!(out.tuples()[1], Tuple::from_ints(&[20]));
    }

    #[test]
    fn invalid_column_errors() {
        let schema = Schema::new(vec![Attribute::int("a")]).shared();
        let r = Relation::new(schema, vec![Tuple::from_ints(&[1])]).unwrap();
        assert!(project(&r, &Projection::new(vec![3])).is_err());
    }
}
