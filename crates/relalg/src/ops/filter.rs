//! Selection (σ).

use crate::error::{RelalgError, Result};
use crate::predicate::Predicate;
use crate::relation::Relation;

/// Returns the tuples of `input` satisfying `predicate`.
pub fn filter(input: &Relation, predicate: &Predicate) -> Result<Relation> {
    let mut out = Vec::new();
    for t in input {
        if predicate.eval(t)? {
            out.push(t.clone());
        }
    }
    Ok(Relation::new_unchecked(input.schema().clone(), out))
}

/// Selection as a **selection vector**: evaluates the predicate over a
/// columnar view of `input` and returns the surviving row indices
/// (ascending). Integer comparisons run through the branch-free
/// [`select`](crate::column::select) kernel; this is the form pushed scan
/// filters use, so downstream operators can gather lazily instead of
/// copying rows.
pub fn filter_selection(input: &Relation, predicate: &Predicate) -> Result<Vec<u32>> {
    if input.len() > u32::MAX as usize {
        return Err(RelalgError::InvalidPlan(format!(
            "relation of {} rows exceeds the u32 row-index cap",
            input.len()
        )));
    }
    let cols = crate::column::ColumnBatch::from_relation(input)?;
    let mut sel = Vec::new();
    crate::column::select(predicate, &cols, 0..cols.rows(), &mut sel)?;
    Ok(sel)
}

/// Selection as a two-pass index gather: compute the selection vector
/// ([`filter_selection`]), then [`Relation::gather`] the surviving rows —
/// the zero-copy form the engine uses to push filters down to
/// base-relation scans (gathered rows share tuple payloads with the
/// original relation).
pub fn filter_gather(input: &Relation, predicate: &Predicate) -> Result<Relation> {
    let indices = filter_selection(input, predicate)?;
    input.gather(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::schema::{Attribute, Schema};
    use crate::tuple::Tuple;

    fn rel(rows: &[i64]) -> Relation {
        let schema = Schema::new(vec![Attribute::int("a")]).shared();
        Relation::new(
            schema,
            rows.iter().map(|&v| Tuple::from_ints(&[v])).collect(),
        )
        .unwrap()
    }

    #[test]
    fn keeps_matching_tuples() {
        let r = rel(&[1, 5, 3, 8]);
        let out = filter(&r, &Predicate::cmp_int(0, CmpOp::Gt, 3)).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|t| t.int(0).unwrap() > 3));
    }

    #[test]
    fn true_predicate_keeps_everything() {
        let r = rel(&[1, 2]);
        assert_eq!(filter(&r, &Predicate::True).unwrap().len(), 2);
    }

    #[test]
    fn errors_propagate() {
        let r = rel(&[1]);
        // Attribute 5 does not exist.
        assert!(filter(&r, &Predicate::cmp_int(5, CmpOp::Eq, 0)).is_err());
    }
}
