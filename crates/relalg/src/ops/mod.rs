//! Sequential relational operators.
//!
//! These are the single-threaded building blocks used by the reference
//! evaluator ([`crate::xra::XraNode::eval`]) and by tests as an oracle. The
//! *parallel* operators — hash-split redistribution, pipelined joins across
//! processors — live in `mj-exec`; the point of this module is to be simple
//! and obviously correct, not fast.

pub mod aggregate;
pub mod filter;
pub mod nested_loop;
pub mod project;
pub mod sort;
pub mod union;

pub use aggregate::{aggregate, AggFunc, AggSpec, AggState};
pub use filter::{filter, filter_gather, filter_selection};
pub use nested_loop::nested_loop_join;
pub use project::project;
pub use sort::sort_by_cols;
pub use union::union_all;
