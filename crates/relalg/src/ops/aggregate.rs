//! Grouped aggregation, used by the example applications (the paper's XRA
//! includes grouping primitives; the reproduction's examples aggregate join
//! results).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::{RelalgError, Result};
use crate::relation::Relation;
use crate::schema::{Attribute, DataType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Aggregate functions over an integer column (COUNT ignores the column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Sum of an integer column.
    Sum,
    /// Minimum of an integer column.
    Min,
    /// Maximum of an integer column.
    Max,
}

/// One aggregate to compute.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggSpec {
    /// The function to apply.
    pub func: AggFunc,
    /// The input column (ignored for COUNT; use 0).
    pub col: usize,
    /// Output attribute name.
    pub name: String,
}

impl AggSpec {
    /// Creates an aggregate spec.
    pub fn new(func: AggFunc, col: usize, name: impl Into<String>) -> Self {
        AggSpec {
            func,
            col,
            name: name.into(),
        }
    }
}

/// Incremental accumulator behind one aggregate of one group. Public so
/// the parallel aggregation operator in `mj-exec` shares the exact
/// semantics (wrapping sums, empty-group MIN/MAX errors) of the sequential
/// oracle.
#[derive(Clone, Copy, Debug, Default)]
pub struct AggState {
    count: i64,
    sum: i64,
    min: Option<i64>,
    max: Option<i64>,
}

impl AggState {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        AggState {
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// Folds one input value in (COUNT callers pass any value).
    pub fn update(&mut self, v: i64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Folds a whole slice in — equivalent to [`update`](Self::update) per
    /// element (including wrapping-sum semantics) but runs the SIMD slice
    /// kernels ([`sum_i64`](crate::simd::sum_i64) and friends). The bulk
    /// path of the global-aggregate operator in `mj-exec`.
    pub fn update_slice(&mut self, vs: &[i64]) {
        if vs.is_empty() {
            return;
        }
        self.count += vs.len() as i64;
        self.sum = self.sum.wrapping_add(crate::simd::sum_i64(vs));
        if let Some(lo) = crate::simd::min_i64(vs) {
            self.min = Some(self.min.map_or(lo, |m| m.min(lo)));
        }
        if let Some(hi) = crate::simd::max_i64(vs) {
            self.max = Some(self.max.map_or(hi, |m| m.max(hi)));
        }
    }

    /// Folds the value `v` in `n` times without materializing a slice —
    /// equivalent to `n` calls to [`update`](Self::update). COUNT's bulk
    /// path (`v = 0`).
    pub fn update_repeat(&mut self, v: i64, n: usize) {
        if n == 0 {
            return;
        }
        self.count += n as i64;
        self.sum = self.sum.wrapping_add(v.wrapping_mul(n as i64));
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// The final value under `func`. MIN/MAX over an empty accumulator is
    /// an error (there is no value to return), matching the oracle.
    pub fn finish(&self, func: AggFunc) -> Result<i64> {
        match func {
            AggFunc::Count => Ok(self.count),
            AggFunc::Sum => Ok(self.sum),
            AggFunc::Min => self
                .min
                .ok_or_else(|| RelalgError::InvalidPlan("MIN over empty group".into())),
            AggFunc::Max => self
                .max
                .ok_or_else(|| RelalgError::InvalidPlan("MAX over empty group".into())),
        }
    }
}

/// Groups `input` by `group_cols` and computes `aggs` per group. Output
/// schema is the group columns followed by one integer column per aggregate.
/// With empty `group_cols`, produces exactly one output row (global
/// aggregate), even for empty input (COUNT = 0; MIN/MAX error).
pub fn aggregate(input: &Relation, group_cols: &[usize], aggs: &[AggSpec]) -> Result<Relation> {
    let in_schema = input.schema();
    let mut attrs = Vec::with_capacity(group_cols.len() + aggs.len());
    for &c in group_cols {
        attrs.push(in_schema.attr(c)?.clone());
    }
    for a in aggs {
        attrs.push(Attribute::new(a.name.clone(), DataType::Int));
    }
    let out_schema = Arc::new(Schema::new(attrs));

    // BTreeMap gives deterministic group order, which keeps test output and
    // examples stable across runs.
    let mut groups: BTreeMap<Vec<Value>, Vec<AggState>> = BTreeMap::new();
    if group_cols.is_empty() {
        groups.insert(Vec::new(), aggs.iter().map(|_| AggState::new()).collect());
    }
    for t in input {
        let mut key = Vec::with_capacity(group_cols.len());
        for &c in group_cols {
            key.push(t.get(c)?.clone());
        }
        let states = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|_| AggState::new()).collect());
        for (spec, state) in aggs.iter().zip(states.iter_mut()) {
            let v = if spec.func == AggFunc::Count {
                0
            } else {
                t.int(spec.col)?
            };
            state.update(v);
        }
    }

    let mut out = Vec::with_capacity(groups.len());
    for (key, states) in groups {
        let mut values = key;
        for (spec, state) in aggs.iter().zip(states.iter()) {
            values.push(Value::Int(state.finish(spec.func)?));
        }
        out.push(Tuple::new(values));
    }
    Ok(Relation::new_unchecked(out_schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Attribute::int("g"), Attribute::int("v")]).shared();
        Relation::new(schema, rows.iter().map(|r| Tuple::from_ints(r)).collect()).unwrap()
    }

    #[test]
    fn grouped_aggregates() {
        let r = rel(&[[1, 10], [2, 5], [1, 20], [2, 7]]);
        let out = aggregate(
            &r,
            &[0],
            &[
                AggSpec::new(AggFunc::Count, 0, "n"),
                AggSpec::new(AggFunc::Sum, 1, "s"),
                AggSpec::new(AggFunc::Min, 1, "lo"),
                AggSpec::new(AggFunc::Max, 1, "hi"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.tuples()[0], Tuple::from_ints(&[1, 2, 30, 10, 20]));
        assert_eq!(out.tuples()[1], Tuple::from_ints(&[2, 2, 12, 5, 7]));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let r = rel(&[]);
        let out = aggregate(&r, &[], &[AggSpec::new(AggFunc::Count, 0, "n")]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0], Tuple::from_ints(&[0]));
        assert!(aggregate(&r, &[], &[AggSpec::new(AggFunc::Min, 1, "m")]).is_err());
    }

    #[test]
    fn output_schema_names() {
        let r = rel(&[[1, 2]]);
        let out = aggregate(&r, &[0], &[AggSpec::new(AggFunc::Sum, 1, "total")]).unwrap();
        assert_eq!(out.schema().attr(0).unwrap().name, "g");
        assert_eq!(out.schema().attr(1).unwrap().name, "total");
    }
}
