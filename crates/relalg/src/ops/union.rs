//! Bag union, used to merge fragment streams back into one relation (the
//! "collect" step after a parallel operator).

use crate::error::{RelalgError, Result};
use crate::relation::Relation;

/// Concatenates the tuples of all inputs. All inputs must share the arity of
/// the first (schema names may differ between fragments of the same logical
/// relation, so only arity is enforced).
pub fn union_all(inputs: &[Relation]) -> Result<Relation> {
    let first = inputs
        .first()
        .ok_or_else(|| RelalgError::InvalidPlan("union of zero relations".into()))?;
    let arity = first.schema().arity();
    let total: usize = inputs.iter().map(Relation::len).sum();
    let mut tuples = Vec::with_capacity(total);
    for r in inputs {
        if r.schema().arity() != arity {
            return Err(RelalgError::SchemaMismatch(format!(
                "union arity {} != {}",
                r.schema().arity(),
                arity
            )));
        }
        tuples.extend(r.iter().cloned());
    }
    Ok(Relation::new_unchecked(first.schema().clone(), tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use crate::tuple::Tuple;

    fn rel(rows: &[i64]) -> Relation {
        let schema = Schema::new(vec![Attribute::int("a")]).shared();
        Relation::new(
            schema,
            rows.iter().map(|&v| Tuple::from_ints(&[v])).collect(),
        )
        .unwrap()
    }

    #[test]
    fn concatenates() {
        let out = union_all(&[rel(&[1, 2]), rel(&[]), rel(&[3])]).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_union_errors() {
        assert!(union_all(&[]).is_err());
    }

    #[test]
    fn arity_mismatch_errors() {
        let two = Relation::new(
            Schema::new(vec![Attribute::int("a"), Attribute::int("b")]).shared(),
            vec![Tuple::from_ints(&[1, 2])],
        )
        .unwrap();
        assert!(union_all(&[rel(&[1]), two]).is_err());
    }
}
