//! Explicit SIMD kernels for the columnar hot paths, with scalar
//! fallbacks.
//!
//! Every kernel here exists in two forms: a portable scalar loop (the
//! baseline the autovectorizer already does well on) and an explicit AVX2
//! implementation written with stable `core::arch::x86_64` intrinsics (no
//! nightly features). The public entry points dispatch at runtime: the
//! first call evaluates `is_x86_feature_detected!("avx2")` once and caches
//! the answer, so non-AVX2 hosts (and non-x86_64 builds, where the AVX2
//! module is compiled out entirely) transparently run the scalar loops.
//!
//! Each shipped SIMD kernel must beat its scalar twin in `repro
//! bench-simd` (BENCH_8) or it ships scalar: the per-kernel `*_SIMD`
//! constants below record that decision, and the bench measures both forms
//! regardless so regressions stay visible. Kernel dispatches into an AVX2
//! body are counted process-wide ([`kernel_dispatches`]) so engine
//! statistics can show the SIMD paths actually ran.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::predicate::CmpOp;

/// Process-wide count of kernel calls that took an explicit-SIMD body.
static DISPATCHES: AtomicU64 = AtomicU64::new(0);

/// Number of kernel calls dispatched to an explicit AVX2 body since
/// process start (scalar-fallback calls are not counted).
pub fn kernel_dispatches() -> u64 {
    DISPATCHES.load(Ordering::Relaxed)
}

#[inline]
fn count_dispatch() {
    DISPATCHES.fetch_add(1, Ordering::Relaxed);
}

/// Ship decision for the compare-into-selection kernel (measured in
/// BENCH_8 `select_cmp`).
pub const SELECT_CMP_SIMD: bool = true;
/// Ship decision for the selection-vector gather kernel (BENCH_8
/// `gather_sel`).
pub const GATHER_SIMD: bool = true;
/// Ship decision for the join-pair gather kernel (BENCH_8 `gather_pairs`).
pub const GATHER_PAIRS_SIMD: bool = true;
/// Ship decision for the i64 aggregate kernels (BENCH_8 `agg_sum` /
/// `agg_minmax`).
pub const AGG_SIMD: bool = true;
/// Ship decision for the bucket-hash kernel. The splitmix64 finisher needs
/// 64x64 multiplies AVX2 can only emulate with three `mul_epu32`s, and the
/// final `% parts` is not vectorizable at all for general partition
/// counts; the measured AVX2 form loses to the scalar loop on this
/// machine (see BENCH_8 `bucket_hash`), so the kernel ships scalar.
pub const BUCKET_HASH_SIMD: bool = false;

/// True when the explicit AVX2 kernels can run on this host. Evaluated
/// once (runtime feature detection) and cached.
pub fn simd_enabled() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED.get_or_init(|| std::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// select_cmp: compare a dense i64 column against a literal, appending the
// indices of qualifying rows.
// ---------------------------------------------------------------------------

/// Scalar compare-into-selection: appends to `out` every index `i` where
/// `keys[i] op lit`, written branch-free (unconditional store, advance by
/// the comparison result).
pub fn select_cmp_scalar(keys: &[i64], op: CmpOp, lit: i64, out: &mut Vec<u32>) {
    #[inline]
    fn run(keys: &[i64], out: &mut Vec<u32>, f: impl Fn(i64) -> bool) {
        let base = out.len();
        out.resize(base + keys.len(), 0);
        let mut k = base;
        for (i, &v) in keys.iter().enumerate() {
            out[k] = i as u32;
            k += f(v) as usize;
        }
        out.truncate(k);
    }
    match op {
        CmpOp::Eq => run(keys, out, |v| v == lit),
        CmpOp::Ne => run(keys, out, |v| v != lit),
        CmpOp::Lt => run(keys, out, |v| v < lit),
        CmpOp::Le => run(keys, out, |v| v <= lit),
        CmpOp::Gt => run(keys, out, |v| v > lit),
        CmpOp::Ge => run(keys, out, |v| v >= lit),
    }
}

/// Compare-into-selection with runtime dispatch: the AVX2 body compares
/// four keys per step and compress-stores the qualifying indices through a
/// 16-entry lane table.
pub fn select_cmp(keys: &[i64], op: CmpOp, lit: i64, out: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if SELECT_CMP_SIMD && simd_enabled() {
        count_dispatch();
        // SAFETY: AVX2 availability was verified at runtime.
        unsafe { avx2::select_cmp(keys, op, lit, out) };
        return;
    }
    select_cmp_scalar(keys, op, lit, out);
}

// ---------------------------------------------------------------------------
// gather: materialize src rows picked by a selection vector or by join
// match pairs.
// ---------------------------------------------------------------------------

/// Scalar selection-vector gather: appends `src[sel[..]]` to `dst`.
pub fn gather_i64_scalar(src: &[i64], sel: &[u32], dst: &mut Vec<i64>) {
    dst.reserve(sel.len());
    for &i in sel {
        dst.push(src[i as usize]);
    }
}

/// Selection-vector gather with runtime dispatch (AVX2
/// `vpgatherqq`-per-four-rows). Panics if any index is out of bounds,
/// matching the scalar loop.
pub fn gather_i64(src: &[i64], sel: &[u32], dst: &mut Vec<i64>) {
    #[cfg(target_arch = "x86_64")]
    if GATHER_SIMD && simd_enabled() {
        assert!(
            sel.iter().all(|&i| (i as usize) < src.len()),
            "gather index out of bounds"
        );
        count_dispatch();
        // SAFETY: AVX2 verified at runtime; indices bounds-checked above.
        unsafe { avx2::gather_i64(src, sel, dst) };
        return;
    }
    gather_i64_scalar(src, sel, dst);
}

/// Selection-vector gather over a `u64` (row-reference) column. Same
/// kernel as [`gather_i64`] — refs are bit-identical 8-byte lanes.
pub fn gather_u64(src: &[u64], sel: &[u32], dst: &mut Vec<u64>) {
    dst.reserve(sel.len());
    let start = dst.len();
    // SAFETY: u64 and i64 are layout-identical; the transmuted slices and
    // spare capacity cover exactly the same memory.
    unsafe {
        let src_i = std::slice::from_raw_parts(src.as_ptr() as *const i64, src.len());
        let dst_i = &mut *(dst as *mut Vec<u64> as *mut Vec<i64>);
        gather_i64(src_i, sel, dst_i);
        debug_assert_eq!(dst_i.len(), start + sel.len());
    }
    let _ = start;
}

/// Scalar join-pair gather: appends `src[pick(pair)]` for every pair,
/// where `left` picks the build-row (`.0`) or probe-row (`.1`) index.
pub fn gather_pairs_i64_scalar(src: &[i64], pairs: &[(u32, u32)], left: bool, dst: &mut Vec<i64>) {
    dst.reserve(pairs.len());
    if left {
        for &(l, _) in pairs {
            dst.push(src[l as usize]);
        }
    } else {
        for &(_, r) in pairs {
            dst.push(src[r as usize]);
        }
    }
}

/// Join-pair gather with runtime dispatch: loads four `(u32, u32)` pairs,
/// permutes out the chosen lane, and gathers four rows per step.
pub fn gather_pairs_i64(src: &[i64], pairs: &[(u32, u32)], left: bool, dst: &mut Vec<i64>) {
    #[cfg(target_arch = "x86_64")]
    if GATHER_PAIRS_SIMD && simd_enabled() {
        let ok = if left {
            pairs.iter().all(|&(l, _)| (l as usize) < src.len())
        } else {
            pairs.iter().all(|&(_, r)| (r as usize) < src.len())
        };
        assert!(ok, "pair-gather index out of bounds");
        count_dispatch();
        // SAFETY: AVX2 verified at runtime; indices bounds-checked above.
        unsafe { avx2::gather_pairs_i64(src, pairs, left, dst) };
        return;
    }
    gather_pairs_i64_scalar(src, pairs, left, dst);
}

/// Join-pair gather over a `u64` (row-reference) column.
pub fn gather_pairs_u64(src: &[u64], pairs: &[(u32, u32)], left: bool, dst: &mut Vec<u64>) {
    // SAFETY: u64 and i64 are layout-identical (see `gather_u64`).
    unsafe {
        let src_i = std::slice::from_raw_parts(src.as_ptr() as *const i64, src.len());
        let dst_i = &mut *(dst as *mut Vec<u64> as *mut Vec<i64>);
        gather_pairs_i64(src_i, pairs, left, dst_i);
    }
}

// ---------------------------------------------------------------------------
// aggregates: whole-slice SUM / MIN / MAX for the global-aggregate fast
// path.
// ---------------------------------------------------------------------------

/// Scalar wrapping sum of a slice.
pub fn sum_i64_scalar(xs: &[i64]) -> i64 {
    xs.iter().fold(0i64, |a, &b| a.wrapping_add(b))
}

/// Wrapping slice sum with runtime dispatch (four accumulator lanes).
pub fn sum_i64(xs: &[i64]) -> i64 {
    #[cfg(target_arch = "x86_64")]
    if AGG_SIMD && simd_enabled() {
        count_dispatch();
        // SAFETY: AVX2 verified at runtime.
        return unsafe { avx2::sum_i64(xs) };
    }
    sum_i64_scalar(xs)
}

/// Scalar slice minimum (`None` when empty).
pub fn min_i64_scalar(xs: &[i64]) -> Option<i64> {
    xs.iter().copied().min()
}

/// Slice minimum with runtime dispatch (compare + blend lanes).
pub fn min_i64(xs: &[i64]) -> Option<i64> {
    #[cfg(target_arch = "x86_64")]
    if AGG_SIMD && simd_enabled() && !xs.is_empty() {
        count_dispatch();
        // SAFETY: AVX2 verified at runtime; slice is non-empty.
        return Some(unsafe { avx2::min_i64(xs) });
    }
    min_i64_scalar(xs)
}

/// Scalar slice maximum (`None` when empty).
pub fn max_i64_scalar(xs: &[i64]) -> Option<i64> {
    xs.iter().copied().max()
}

/// Slice maximum with runtime dispatch (compare + blend lanes).
pub fn max_i64(xs: &[i64]) -> Option<i64> {
    #[cfg(target_arch = "x86_64")]
    if AGG_SIMD && simd_enabled() && !xs.is_empty() {
        count_dispatch();
        // SAFETY: AVX2 verified at runtime; slice is non-empty.
        return Some(unsafe { avx2::max_i64(xs) });
    }
    max_i64_scalar(xs)
}

// ---------------------------------------------------------------------------
// bucket hash: splitmix64 finisher + `% parts`, vectorized for the bench
// but shipped scalar (see BUCKET_HASH_SIMD).
// ---------------------------------------------------------------------------

/// Scalar bucket-hash: `out[i] = mix_key(keys[i]) % parts`.
pub fn bucket_keys_scalar(keys: &[i64], parts: usize, out: &mut Vec<u32>) {
    out.clear();
    out.reserve(keys.len());
    out.extend(
        keys.iter()
            .map(|&k| crate::hash::bucket_of(k, parts) as u32),
    );
}

/// Bucket-hash with runtime dispatch. Shipped scalar
/// ([`BUCKET_HASH_SIMD`] is `false`): the AVX2 form (kept for the bench)
/// emulates the two 64x64 multiplies of the splitmix64 finisher and still
/// pays a scalar `%` per lane, which measured slower end-to-end.
pub fn bucket_keys(keys: &[i64], parts: usize, out: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if BUCKET_HASH_SIMD && simd_enabled() && parts > 0 {
        count_dispatch();
        // SAFETY: AVX2 verified at runtime.
        unsafe { avx2::bucket_keys(keys, parts, out) };
        return;
    }
    bucket_keys_scalar(keys, parts, out);
}

/// The AVX2 bucket-hash body, callable directly by the microbenchmark even
/// though the kernel ships scalar. Falls back to scalar off-x86_64 or
/// without AVX2.
pub fn bucket_keys_simd_for_bench(keys: &[i64], parts: usize, out: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() && parts > 0 {
        // SAFETY: AVX2 verified at runtime.
        unsafe { avx2::bucket_keys(keys, parts, out) };
        return;
    }
    bucket_keys_scalar(keys, parts, out);
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The explicit AVX2 kernel bodies. Every function is
    //! `#[target_feature(enable = "avx2")]` and must only be called after
    //! [`super::simd_enabled`] returned true.

    use std::arch::x86_64::*;

    use crate::predicate::CmpOp;

    /// `LANES[m]` packs the indices of the set bits of the 4-bit mask `m`
    /// to the front — the compress step of the selection kernel.
    const LANES: [[u32; 4]; 16] = [
        [0, 0, 0, 0],
        [0, 0, 0, 0],
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [2, 0, 0, 0],
        [0, 2, 0, 0],
        [1, 2, 0, 0],
        [0, 1, 2, 0],
        [3, 0, 0, 0],
        [0, 3, 0, 0],
        [1, 3, 0, 0],
        [0, 1, 3, 0],
        [2, 3, 0, 0],
        [0, 2, 3, 0],
        [1, 2, 3, 0],
        [0, 1, 2, 3],
    ];

    #[target_feature(enable = "avx2")]
    pub unsafe fn select_cmp(keys: &[i64], op: CmpOp, lit: i64, out: &mut Vec<u32>) {
        let base = out.len();
        let n = keys.len();
        // Room for every index plus one overhanging 4-lane store.
        out.resize(base + n + 4, 0);
        let lit_v = _mm256_set1_epi64x(lit);
        let mut k = base;
        let mut i = 0usize;
        let ptr = out.as_mut_ptr();
        while i + 4 <= n {
            let v = _mm256_loadu_si256(keys.as_ptr().add(i) as *const __m256i);
            // Build the 4-bit qualifying mask from cmpgt/cmpeq lanes.
            let mask = match op {
                CmpOp::Eq => _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, lit_v))),
                CmpOp::Ne => {
                    _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, lit_v))) ^ 0xF
                }
                CmpOp::Gt => _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, lit_v))),
                CmpOp::Le => {
                    _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, lit_v))) ^ 0xF
                }
                CmpOp::Lt => _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(lit_v, v))),
                CmpOp::Ge => {
                    _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(lit_v, v))) ^ 0xF
                }
            } as usize;
            // Compress-store the qualifying lane indices (+ row base).
            let lanes = _mm_loadu_si128(LANES[mask].as_ptr() as *const __m128i);
            let idx = _mm_add_epi32(lanes, _mm_set1_epi32(i as i32));
            _mm_storeu_si128(ptr.add(k) as *mut __m128i, idx);
            k += mask.count_ones() as usize;
            i += 4;
        }
        out.truncate(k);
        // Scalar tail.
        let tail = &keys[i..];
        let mut scalar_tail = Vec::new();
        super::select_cmp_scalar(tail, op, lit, &mut scalar_tail);
        out.extend(scalar_tail.into_iter().map(|t| t + i as u32));
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_i64(src: &[i64], sel: &[u32], dst: &mut Vec<i64>) {
        let n = sel.len();
        dst.reserve(n);
        let start = dst.len();
        let out = dst.as_mut_ptr().add(start);
        let mut i = 0usize;
        while i + 4 <= n {
            let idx = _mm_loadu_si128(sel.as_ptr().add(i) as *const __m128i);
            let v = _mm256_i32gather_epi64::<8>(src.as_ptr(), idx);
            _mm256_storeu_si256(out.add(i) as *mut __m256i, v);
            i += 4;
        }
        while i < n {
            *out.add(i) = src[*sel.get_unchecked(i) as usize];
            i += 1;
        }
        dst.set_len(start + n);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_pairs_i64(
        src: &[i64],
        pairs: &[(u32, u32)],
        left: bool,
        dst: &mut Vec<i64>,
    ) {
        let n = pairs.len();
        dst.reserve(n);
        let start = dst.len();
        let out = dst.as_mut_ptr().add(start);
        // Four (u32, u32) pairs are eight u32 lanes; permute the wanted
        // half ([0,2,4,6] for build rows, [1,3,5,7] for probe rows) into
        // the low 128 bits and gather.
        let pick = if left {
            _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)
        } else {
            _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0)
        };
        let base = pairs.as_ptr() as *const __m256i;
        let mut i = 0usize;
        while i + 4 <= n {
            let packed = _mm256_loadu_si256(base.add(i / 4));
            let idx = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(packed, pick));
            let v = _mm256_i32gather_epi64::<8>(src.as_ptr(), idx);
            _mm256_storeu_si256(out.add(i) as *mut __m256i, v);
            i += 4;
        }
        while i < n {
            let &(l, r) = pairs.get_unchecked(i);
            *out.add(i) = src[if left { l } else { r } as usize];
            i += 1;
        }
        dst.set_len(start + n);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_i64(xs: &[i64]) -> i64 {
        let mut acc = _mm256_setzero_si256();
        let n = xs.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(xs.as_ptr().add(i) as *const __m256i);
            acc = _mm256_add_epi64(acc, v);
            i += 4;
        }
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut total = lanes[0]
            .wrapping_add(lanes[1])
            .wrapping_add(lanes[2])
            .wrapping_add(lanes[3]);
        while i < n {
            total = total.wrapping_add(*xs.get_unchecked(i));
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn min_i64(xs: &[i64]) -> i64 {
        debug_assert!(!xs.is_empty());
        let n = xs.len();
        let mut best = xs[0];
        let mut i = 0usize;
        if n >= 4 {
            let mut acc = _mm256_loadu_si256(xs.as_ptr() as *const __m256i);
            i = 4;
            while i + 4 <= n {
                let v = _mm256_loadu_si256(xs.as_ptr().add(i) as *const __m256i);
                // AVX2 has no min_epi64: keep `v` lanes where acc > v.
                let gt = _mm256_cmpgt_epi64(acc, v);
                acc = _mm256_blendv_epi8(acc, v, gt);
                i += 4;
            }
            let mut lanes = [0i64; 4];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
            best = lanes[0].min(lanes[1]).min(lanes[2]).min(lanes[3]);
        }
        while i < n {
            best = best.min(*xs.get_unchecked(i));
            i += 1;
        }
        best
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn max_i64(xs: &[i64]) -> i64 {
        debug_assert!(!xs.is_empty());
        let n = xs.len();
        let mut best = xs[0];
        let mut i = 0usize;
        if n >= 4 {
            let mut acc = _mm256_loadu_si256(xs.as_ptr() as *const __m256i);
            i = 4;
            while i + 4 <= n {
                let v = _mm256_loadu_si256(xs.as_ptr().add(i) as *const __m256i);
                let gt = _mm256_cmpgt_epi64(v, acc);
                acc = _mm256_blendv_epi8(acc, v, gt);
                i += 4;
            }
            let mut lanes = [0i64; 4];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
            best = lanes[0].max(lanes[1]).max(lanes[2]).max(lanes[3]);
        }
        while i < n {
            best = best.max(*xs.get_unchecked(i));
            i += 1;
        }
        best
    }

    /// 64x64 low-half multiply emulated with three `mul_epu32`s.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mullo_epi64(a: __m256i, b: __m256i) -> __m256i {
        let lo_mul = _mm256_mul_epu32(a, b);
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
        _mm256_add_epi64(lo_mul, _mm256_slli_epi64::<32>(cross))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn bucket_keys(keys: &[i64], parts: usize, out: &mut Vec<u32>) {
        out.clear();
        let n = keys.len();
        out.reserve(n);
        let c1 = _mm256_set1_epi64x(0xBF58_476D_1CE4_E5B9u64 as i64);
        let c2 = _mm256_set1_epi64x(0x94D0_49BB_1331_11EBu64 as i64);
        let mut i = 0usize;
        let mut mixed = [0u64; 4];
        while i + 4 <= n {
            let mut x = _mm256_loadu_si256(keys.as_ptr().add(i) as *const __m256i);
            x = _mm256_xor_si256(x, _mm256_srli_epi64::<30>(x));
            x = mullo_epi64(x, c1);
            x = _mm256_xor_si256(x, _mm256_srli_epi64::<27>(x));
            x = mullo_epi64(x, c2);
            x = _mm256_xor_si256(x, _mm256_srli_epi64::<31>(x));
            _mm256_storeu_si256(mixed.as_mut_ptr() as *mut __m256i, x);
            // The modulo is inherently scalar for general partition counts.
            for m in mixed {
                out.push((m % parts as u64) as u32);
            }
            i += 4;
        }
        while i < n {
            out.push(crate::hash::bucket_of(*keys.get_unchecked(i), parts) as u32);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<i64> {
        (0..n as i64).map(|i| (i * 37 + 11) % 97 - 48).collect()
    }

    #[test]
    fn select_cmp_matches_scalar_on_all_ops_and_lengths() {
        for n in [0, 1, 3, 4, 5, 8, 63, 64, 65, 1000] {
            let ks = keys(n);
            for op in [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ] {
                for lit in [-49, 0, 7, 48] {
                    let mut want = vec![99u32];
                    select_cmp_scalar(&ks, op, lit, &mut want);
                    let mut got = vec![99u32];
                    select_cmp(&ks, op, lit, &mut got);
                    assert_eq!(got, want, "n={n} op={op:?} lit={lit}");
                }
            }
        }
    }

    #[test]
    fn gathers_match_scalar() {
        let src = keys(257);
        let sel: Vec<u32> = (0..src.len() as u32).rev().step_by(3).collect();
        let mut want = vec![5i64];
        gather_i64_scalar(&src, &sel, &mut want);
        let mut got = vec![5i64];
        gather_i64(&src, &sel, &mut got);
        assert_eq!(got, want);

        let pairs: Vec<(u32, u32)> = (0..101u32).map(|i| (i % 257, (i * 2) % 257)).collect();
        for left in [true, false] {
            let mut want = Vec::new();
            gather_pairs_i64_scalar(&src, &pairs, left, &mut want);
            let mut got = Vec::new();
            gather_pairs_i64(&src, &pairs, left, &mut got);
            assert_eq!(got, want, "left={left}");
        }
    }

    #[test]
    fn u64_gathers_are_bit_exact() {
        let src: Vec<u64> = (0..64u64).map(|i| (i << 32) | (i * 3)).collect();
        let sel: Vec<u32> = vec![63, 0, 7, 7, 31];
        let mut got = Vec::new();
        gather_u64(&src, &sel, &mut got);
        assert_eq!(got, vec![src[63], src[0], src[7], src[7], src[31]]);
        let pairs = [(1u32, 2u32), (5, 9)];
        let mut l = Vec::new();
        gather_pairs_u64(&src, &pairs, true, &mut l);
        assert_eq!(l, vec![src[1], src[5]]);
    }

    #[test]
    fn aggregates_match_scalar() {
        for n in [0, 1, 4, 5, 100] {
            let ks = keys(n);
            assert_eq!(sum_i64(&ks), sum_i64_scalar(&ks), "sum n={n}");
            assert_eq!(min_i64(&ks), min_i64_scalar(&ks), "min n={n}");
            assert_eq!(max_i64(&ks), max_i64_scalar(&ks), "max n={n}");
        }
        // Wrapping behaviour is identical.
        let big = [i64::MAX, 1, i64::MAX, 1];
        assert_eq!(sum_i64(&big), sum_i64_scalar(&big));
    }

    #[test]
    fn bucket_hash_bodies_agree() {
        let ks = keys(133);
        for parts in [1, 2, 3, 7, 16] {
            let mut want = Vec::new();
            bucket_keys_scalar(&ks, parts, &mut want);
            let mut got = Vec::new();
            bucket_keys(&ks, parts, &mut got);
            assert_eq!(got, want, "dispatched parts={parts}");
            let mut simd = Vec::new();
            bucket_keys_simd_for_bench(&ks, parts, &mut simd);
            assert_eq!(simd, want, "avx2 body parts={parts}");
        }
    }

    #[test]
    fn dispatch_counter_moves_when_simd_is_on() {
        let before = kernel_dispatches();
        let ks = keys(64);
        let mut out = Vec::new();
        select_cmp(&ks, CmpOp::Gt, 0, &mut out);
        if simd_enabled() {
            assert!(kernel_dispatches() > before);
        } else {
            assert_eq!(kernel_dispatches(), before);
        }
    }
}
