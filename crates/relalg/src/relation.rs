//! Relations: schema + multiset of tuples, and the provider abstraction the
//! evaluators use to resolve base relations by name.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{RelalgError, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;

/// An in-memory relation. The tuple order is not semantically meaningful
/// (relations are multisets); [`Relation::multiset_eq`] compares accordingly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Creates a relation, validating every tuple against the schema.
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Result<Self> {
        for t in &tuples {
            schema.validate(t)?;
        }
        Ok(Relation { schema, tuples })
    }

    /// Creates a relation without validating tuples. Intended for operator
    /// outputs whose tuples are correct by construction; debug builds still
    /// validate to catch engine bugs early.
    pub fn new_unchecked(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Self {
        #[cfg(debug_assertions)]
        for t in &tuples {
            debug_assert!(schema.validate(t).is_ok(), "tuple violates schema");
        }
        Relation { schema, tuples }
    }

    /// The schema shared by all tuples.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples (cardinality).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples in their current (arbitrary) order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Appends a tuple, validating it against the schema.
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        self.schema.validate(&tuple)?;
        self.tuples.push(tuple);
        Ok(())
    }

    /// Consumes the relation, returning its tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Sorts tuples into the canonical order (used before comparing).
    pub fn sort_canonical(&mut self) {
        self.tuples.sort_unstable();
    }

    /// Multiset equality: same schema arity, same tuples regardless of order.
    pub fn multiset_eq(&self, other: &Relation) -> bool {
        if self.schema.arity() != other.schema.arity() || self.len() != other.len() {
            return false;
        }
        let mut a = self.tuples.clone();
        let mut b = other.tuples.clone();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    /// Builds a new relation from the rows at `indices` (sharing tuple
    /// payloads — each gathered row is a cheap clone, not a deep copy).
    /// Out-of-range indices error like every other accessor.
    pub fn gather(&self, indices: &[u32]) -> Result<Relation> {
        let mut tuples = Vec::with_capacity(indices.len());
        for &i in indices {
            let t = self
                .tuples
                .get(i as usize)
                .ok_or(RelalgError::IndexOutOfBounds {
                    index: i as usize,
                    arity: self.tuples.len(),
                })?;
            tuples.push(t.clone());
        }
        Ok(Relation {
            schema: self.schema.clone(),
            tuples,
        })
    }

    /// Approximate in-memory footprint in bytes.
    pub fn est_bytes(&self) -> usize {
        self.tuples.iter().map(Tuple::est_bytes).sum()
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

/// Resolves base-relation names to stored relations. `mj-storage`'s catalog
/// implements this; tests use the [`HashMap`] impl below.
pub trait RelationProvider {
    /// Returns the relation registered under `name`.
    fn relation(&self, name: &str) -> Result<Arc<Relation>>;
}

impl RelationProvider for HashMap<String, Arc<Relation>> {
    fn relation(&self, name: &str) -> Result<Arc<Relation>> {
        self.get(name)
            .cloned()
            .ok_or_else(|| RelalgError::UnknownRelation(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use crate::value::Value;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Attribute::int("a"), Attribute::int("b")]).shared()
    }

    fn rel(rows: &[[i64; 2]]) -> Relation {
        Relation::new(schema(), rows.iter().map(|r| Tuple::from_ints(r)).collect()).unwrap()
    }

    #[test]
    fn new_validates_tuples() {
        let bad = vec![Tuple::new(vec![Value::str("x"), Value::Int(1)])];
        assert!(Relation::new(schema(), bad).is_err());
    }

    #[test]
    fn multiset_eq_ignores_order() {
        let a = rel(&[[1, 2], [3, 4], [1, 2]]);
        let b = rel(&[[3, 4], [1, 2], [1, 2]]);
        let c = rel(&[[3, 4], [1, 2], [3, 4]]);
        assert!(a.multiset_eq(&b));
        assert!(!a.multiset_eq(&c));
    }

    #[test]
    fn multiset_eq_checks_cardinality() {
        let a = rel(&[[1, 2]]);
        let b = rel(&[[1, 2], [1, 2]]);
        assert!(!a.multiset_eq(&b));
    }

    #[test]
    fn push_validates() {
        let mut r = Relation::empty(schema());
        assert!(r.push(Tuple::from_ints(&[1, 2])).is_ok());
        assert!(r.push(Tuple::from_ints(&[1])).is_err());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn provider_via_hashmap() {
        let mut m: HashMap<String, Arc<Relation>> = HashMap::new();
        m.insert("r".into(), Arc::new(rel(&[[1, 1]])));
        assert!(m.relation("r").is_ok());
        assert!(matches!(
            m.relation("s"),
            Err(RelalgError::UnknownRelation(_))
        ));
    }
}
