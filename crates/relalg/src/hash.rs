//! The canonical join-key hash.
//!
//! Initial fragmentation (`mj-storage`), mid-query redistribution
//! (`mj-exec`), and the join hash tables (`mj-join`) must agree on one hash
//! function, otherwise "ideal fragmentation" (§4.1) would not actually align
//! with the joins that assume it. This module is that single definition.

/// Mixes a join key into a 64-bit hash (splitmix64 finalizer). Good
/// avalanche behaviour on the dense integer keys the Wisconsin benchmark
/// uses, and much cheaper than SipHash.
#[inline]
pub fn mix_key(key: i64) -> u64 {
    let mut x = key as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a join key to a bucket in `0..parts`.
///
/// `parts` must be positive; callers on the per-tuple hot path are
/// expected to have validated their partition count once up front (see
/// [`checked_bucket_of`] for the validating entry point). In debug builds
/// a zero `parts` asserts; release builds would otherwise hit an integer
/// remainder-by-zero panic, which is why every public partitioning entry
/// point validates before looping.
#[inline]
pub fn bucket_of(key: i64, parts: usize) -> usize {
    debug_assert!(parts > 0);
    (mix_key(key) % parts as u64) as usize
}

/// Validating form of [`bucket_of`]: errors on `parts == 0` instead of
/// panicking. Use at partitioning entry points; hot loops should validate
/// once and call [`bucket_of`] directly.
#[inline]
pub fn checked_bucket_of(key: i64, parts: usize) -> crate::Result<usize> {
    if parts == 0 {
        return Err(crate::RelalgError::InvalidPartitioning(
            "bucket count must be positive".into(),
        ));
    }
    Ok(bucket_of(key, parts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix_key(42), mix_key(42));
        // Dense keys should not collide in the low bits.
        let mut low_bits: Vec<u64> = (0..64).map(|k| mix_key(k) % 64).collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(
            low_bits.len() > 32,
            "only {} distinct buckets",
            low_bits.len()
        );
    }

    #[test]
    fn bucket_in_range_including_negative_keys() {
        for k in [-5i64, -1, 0, 1, 9999, i64::MAX, i64::MIN] {
            for p in [1usize, 2, 7, 80] {
                assert!(bucket_of(k, p) < p);
            }
        }
    }

    #[test]
    fn checked_bucket_rejects_zero_parts() {
        assert!(checked_bucket_of(42, 0).is_err());
        assert_eq!(checked_bucket_of(42, 7).unwrap(), bucket_of(42, 7));
    }
}
