//! Schemas: ordered lists of named, typed attributes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use crate::error::{RelalgError, Result};
use crate::tuple::Tuple;

/// The type of an attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// Variable-length string.
    Str,
    /// A packed row reference `(fragment_id << 32) | row_idx` used by
    /// late-materialized plans: the column carries *where* a payload row
    /// lives instead of the payload itself, and a final gather resolves it.
    /// At row ([`Tuple`]) boundaries a ref travels bit-cast inside a
    /// [`Value::Int`](crate::Value::Int), so ref-carrying intermediates can
    /// be materialized and rescanned like any relation.
    Ref,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Str => write!(f, "str"),
            DataType::Ref => write!(f, "ref"),
        }
    }
}

/// A named, typed attribute.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name. Names need not be unique within a schema (as in the
    /// intermediate results of a join); positional access is primary.
    pub name: String,
    /// Attribute type.
    pub ty: DataType,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }

    /// Shorthand for an integer attribute.
    pub fn int(name: impl Into<String>) -> Self {
        Attribute::new(name, DataType::Int)
    }

    /// Shorthand for a string attribute.
    pub fn str(name: impl Into<String>) -> Self {
        Attribute::new(name, DataType::Str)
    }

    /// Shorthand for a packed row-reference attribute (late
    /// materialization).
    pub fn rowref(name: impl Into<String>) -> Self {
        Attribute::new(name, DataType::Ref)
    }
}

/// An ordered list of attributes describing the layout of tuples.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema from attributes.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        Schema { attrs }
    }

    /// Schema with no attributes (used by aggregates over everything).
    pub fn empty() -> Self {
        Schema { attrs: Vec::new() }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attributes in order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The attribute at position `i`.
    pub fn attr(&self, i: usize) -> Result<&Attribute> {
        self.attrs.get(i).ok_or(RelalgError::IndexOutOfBounds {
            index: i,
            arity: self.attrs.len(),
        })
    }

    /// Resolves a name to the index of the *first* attribute with that name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| RelalgError::UnknownAttribute(name.to_string()))
    }

    /// Concatenation of two schemas (the schema of a joined tuple).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut attrs = Vec::with_capacity(self.arity() + other.arity());
        attrs.extend(self.attrs.iter().cloned());
        attrs.extend(other.attrs.iter().cloned());
        Schema { attrs }
    }

    /// Schema resulting from projecting onto `cols` (indices into `self`).
    pub fn project(&self, cols: &[usize]) -> Result<Schema> {
        let mut attrs = Vec::with_capacity(cols.len());
        for &c in cols {
            attrs.push(self.attr(c)?.clone());
        }
        Ok(Schema { attrs })
    }

    /// Checks that a tuple conforms to this schema (arity and types).
    pub fn validate(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(RelalgError::SchemaMismatch(format!(
                "tuple arity {} != schema arity {}",
                tuple.arity(),
                self.arity()
            )));
        }
        for (i, attr) in self.attrs.iter().enumerate() {
            let v = tuple.get(i)?;
            // Refs travel bit-cast inside `Value::Int` at row boundaries, so
            // a ref attribute accepts integer values.
            if attr.ty == DataType::Ref && v.data_type() == DataType::Int {
                continue;
            }
            if v.data_type() != attr.ty {
                return Err(RelalgError::SchemaMismatch(format!(
                    "attribute {i} (`{}`): expected {}, found {}",
                    attr.name,
                    attr.ty,
                    v.data_type()
                )));
            }
        }
        Ok(())
    }

    /// Wraps the schema in an [`Arc`] for cheap sharing across fragments.
    pub fn shared(self) -> Arc<Schema> {
        Arc::new(self)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn ab_schema() -> Schema {
        Schema::new(vec![Attribute::int("a"), Attribute::str("b")])
    }

    #[test]
    fn index_of_resolves_first_match() {
        let s = Schema::new(vec![Attribute::int("x"), Attribute::int("x")]);
        assert_eq!(s.index_of("x").unwrap(), 0);
        assert!(s.index_of("y").is_err());
    }

    #[test]
    fn concat_appends() {
        let s = ab_schema().concat(&ab_schema());
        assert_eq!(s.arity(), 4);
        assert_eq!(s.attr(2).unwrap().name, "a");
    }

    #[test]
    fn project_selects_and_reorders() {
        let s = ab_schema().project(&[1, 0]).unwrap();
        assert_eq!(s.attr(0).unwrap().name, "b");
        assert_eq!(s.attr(1).unwrap().name, "a");
        assert!(ab_schema().project(&[7]).is_err());
    }

    #[test]
    fn validate_checks_arity_and_types() {
        let s = ab_schema();
        let ok = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        assert!(s.validate(&ok).is_ok());
        let bad_arity = Tuple::new(vec![Value::Int(1)]);
        assert!(s.validate(&bad_arity).is_err());
        let bad_type = Tuple::new(vec![Value::str("x"), Value::str("y")]);
        assert!(s.validate(&bad_type).is_err());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(ab_schema().to_string(), "(a: int, b: str)");
    }
}
