//! Relational-algebra substrate for the multi-join reproduction.
//!
//! This crate models the part of PRISMA/DB that the paper calls the
//! *eXtended Relational Algebra* (XRA, \[GWF91\]): schemas, typed values,
//! tuples, relations, predicates, projections, and a logical operator tree.
//! It also ships a deliberately simple **sequential reference evaluator**
//! ([`xra::XraNode::eval`]) that the rest of the workspace uses as a
//! correctness oracle: whatever a parallel strategy computes must be
//! multiset-equal to the sequential evaluation of the same tree.
//!
//! Layering: this crate knows nothing about parallelism, processors, or
//! cost. Join *trees* and cost live in `mj-plan`; the parallel plan IR and
//! the four strategies live in `mj-core`; physical execution lives in
//! `mj-exec` (threads) and `mj-sim` (discrete events).

#![warn(missing_docs)]

pub mod column;
pub mod error;
pub mod expr;
pub mod hash;
pub mod ops;
pub mod predicate;
pub mod projection;
pub mod relation;
pub mod schema;
pub mod simd;
pub mod text;
pub mod tuple;
pub mod value;
pub mod xra;

pub use column::{columnar_row_bytes, Column, ColumnBatch, ColumnLayout};
pub use error::{RelalgError, Result};
pub use predicate::{CmpOp, Predicate};
pub use projection::Projection;
pub use relation::{Relation, RelationProvider};
pub use schema::{Attribute, DataType, Schema};
pub use tuple::Tuple;
pub use value::Value;
pub use xra::{EquiJoin, JoinAlgorithm, XraNode};
