//! Typed scalar values.
//!
//! The Wisconsin benchmark relations used by the paper only need 64-bit
//! integers and fixed-width strings, so the value lattice is intentionally
//! small. Values are totally ordered (ints before strings) so relations can
//! be canonically sorted for multiset comparison in tests.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{RelalgError, Result};
use crate::schema::DataType;

/// A scalar value stored in a tuple.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer (all Wisconsin numeric attributes).
    Int(i64),
    /// Variable-length string (Wisconsin `stringu1`/`stringu2`/`string4`).
    Str(Box<str>),
}

impl Value {
    /// Creates a string value from anything string-like.
    pub fn str(s: impl Into<Box<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Returns the integer payload, or a type error.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Str(_) => Err(RelalgError::TypeMismatch {
                expected: "Int",
                found: "Str",
            }),
        }
    }

    /// Returns the string payload, or a type error.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            Value::Int(_) => Err(RelalgError::TypeMismatch {
                expected: "Str",
                found: "Int",
            }),
        }
    }

    /// Approximate in-memory footprint in bytes, used by the memory
    /// accounting in the engine and the RD-vs-FP memory ablation.
    pub fn est_bytes(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            // Box<str> payload + the fat pointer.
            Value::Str(s) => s.len() + 16,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert!(Value::Int(7).as_str().is_err());
        assert_eq!(Value::str("abc").as_str().unwrap(), "abc");
        assert!(Value::str("abc").as_int().is_err());
    }

    #[test]
    fn ordering_is_total_and_ints_sort_before_strings() {
        let mut vs = vec![
            Value::str("b"),
            Value::Int(2),
            Value::str("a"),
            Value::Int(1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("xy").to_string(), "'xy'");
    }

    #[test]
    fn size_estimates() {
        assert_eq!(Value::Int(0).est_bytes(), 8);
        assert_eq!(Value::str("abcd").est_bytes(), 20);
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::Int(1).data_type(), DataType::Int);
        assert_eq!(Value::str("s").data_type(), DataType::Str);
    }
}
