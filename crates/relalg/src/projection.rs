//! Projections: column selections applied after scans and joins.
//!
//! The paper's regular Wisconsin query projects every join result back to a
//! Wisconsin-shaped relation ("after each join they are projected to the
//! second integer attributes and the remaining attributes of one of the
//! operands", §4.1); [`Projection`] is the vehicle for that re-keying.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::Result;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// A projection onto a list of column indices of the input schema (for a
/// join: indices into the concatenation `left ++ right`). Columns may be
/// repeated or reordered.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Projection {
    cols: Vec<usize>,
}

impl Projection {
    /// Creates a projection on the given columns.
    pub fn new(cols: Vec<usize>) -> Self {
        Projection { cols }
    }

    /// The identity projection for an input of the given arity.
    pub fn identity(arity: usize) -> Self {
        Projection {
            cols: (0..arity).collect(),
        }
    }

    /// The projected column indices.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Applies the projection to a single tuple.
    pub fn apply(&self, tuple: &Tuple) -> Result<Tuple> {
        tuple.project(&self.cols)
    }

    /// Applies the projection to the virtual concatenation of two tuples
    /// (the hash-join hot path).
    pub fn apply_concat(&self, left: &Tuple, right: &Tuple) -> Result<Tuple> {
        Tuple::project_concat(left, right, &self.cols)
    }

    /// [`Projection::apply_concat`] through a caller-provided scratch
    /// buffer, so steady-state joins emit rows without per-row allocation
    /// (see [`Tuple::project_concat_into`]).
    pub fn apply_concat_into(
        &self,
        left: &Tuple,
        right: &Tuple,
        scratch: &mut Vec<crate::value::Value>,
    ) -> Result<Tuple> {
        Tuple::project_concat_into(left, right, &self.cols, scratch)
    }

    /// Computes the output schema for the given input schema.
    pub fn output_schema(&self, input: &Schema) -> Result<Schema> {
        input.project(&self.cols)
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π[")?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "#{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    #[test]
    fn identity_round_trips() {
        let t = Tuple::from_ints(&[1, 2, 3]);
        let p = Projection::identity(3);
        assert_eq!(p.apply(&t).unwrap(), t);
    }

    #[test]
    fn reorder_and_repeat() {
        let t = Tuple::from_ints(&[1, 2]);
        let p = Projection::new(vec![1, 1, 0]);
        assert_eq!(p.apply(&t).unwrap(), Tuple::from_ints(&[2, 2, 1]));
        assert_eq!(p.arity(), 3);
    }

    #[test]
    fn output_schema_follows_columns() {
        let s = Schema::new(vec![Attribute::int("a"), Attribute::int("b")]);
        let p = Projection::new(vec![1]);
        let out = p.output_schema(&s).unwrap();
        assert_eq!(out.arity(), 1);
        assert_eq!(out.attr(0).unwrap().name, "b");
        assert!(Projection::new(vec![4]).output_schema(&s).is_err());
    }

    #[test]
    fn apply_concat_equals_concat_apply() {
        let a = Tuple::from_ints(&[1, 2]);
        let b = Tuple::from_ints(&[3, 4]);
        let p = Projection::new(vec![0, 3]);
        assert_eq!(
            p.apply_concat(&a, &b).unwrap(),
            p.apply(&a.concat(&b)).unwrap()
        );
    }

    #[test]
    fn display() {
        assert_eq!(Projection::new(vec![0, 2]).to_string(), "π[#0,#2]");
    }
}
