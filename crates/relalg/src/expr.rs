//! Scalar expressions over a single tuple.
//!
//! The paper's workload only needs attribute references and literals (its
//! predicates are equi-join conditions and constant comparisons), but the
//! expression node also supports the arithmetic the examples use for
//! derived columns.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{RelalgError, Result};
use crate::tuple::Tuple;
use crate::value::Value;

/// Binary arithmetic operators on integers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Euclidean modulo (always non-negative; used by hash partitioning
    /// examples).
    Mod,
}

/// A scalar expression evaluated against one tuple.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Reference to the attribute at the given index.
    Attr(usize),
    /// A literal value.
    Lit(Value),
    /// A 1-based prepared-statement placeholder (`?N`). Plans containing
    /// params are templates: evaluating one is an error until the
    /// prepared-statement layer substitutes each occurrence with a
    /// [`Expr::Lit`] at execute time.
    Param(u32),
    /// Integer arithmetic over two sub-expressions.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
}

impl Expr {
    /// Shorthand for an attribute reference.
    pub fn attr(i: usize) -> Expr {
        Expr::Attr(i)
    }

    /// Shorthand for an integer literal.
    pub fn lit_int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// Evaluates the expression against `tuple`.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            Expr::Attr(i) => Ok(tuple.get(*i)?.clone()),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Param(n) => Err(RelalgError::InvalidPlan(format!(
                "unbound parameter ?{n} (prepared plans must bind args before execution)"
            ))),
            Expr::Arith(l, op, r) => {
                let l = l.eval(tuple)?.as_int()?;
                let r = r.eval(tuple)?.as_int()?;
                let v = match op {
                    ArithOp::Add => l.wrapping_add(r),
                    ArithOp::Sub => l.wrapping_sub(r),
                    ArithOp::Mul => l.wrapping_mul(r),
                    ArithOp::Mod => {
                        if r == 0 {
                            return Err(RelalgError::InvalidPlan("modulo by zero".into()));
                        }
                        l.rem_euclid(r)
                    }
                };
                Ok(Value::Int(v))
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Attr(i) => write!(f, "#{i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Param(n) => write!(f, "?{n}"),
            Expr::Arith(l, op, r) => {
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Mod => "%",
                };
                write!(f, "({l} {sym} {r})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_and_lit() {
        let t = Tuple::from_ints(&[10, 20]);
        assert_eq!(Expr::attr(1).eval(&t).unwrap(), Value::Int(20));
        assert_eq!(Expr::lit_int(5).eval(&t).unwrap(), Value::Int(5));
        assert!(Expr::attr(5).eval(&t).is_err());
    }

    #[test]
    fn arithmetic() {
        let t = Tuple::from_ints(&[7, 3]);
        let e = Expr::Arith(
            Box::new(Expr::attr(0)),
            ArithOp::Mod,
            Box::new(Expr::attr(1)),
        );
        assert_eq!(e.eval(&t).unwrap(), Value::Int(1));
        let e = Expr::Arith(
            Box::new(Expr::lit_int(-7)),
            ArithOp::Mod,
            Box::new(Expr::lit_int(3)),
        );
        assert_eq!(e.eval(&t).unwrap(), Value::Int(2), "modulo is euclidean");
        let e = Expr::Arith(
            Box::new(Expr::attr(0)),
            ArithOp::Mod,
            Box::new(Expr::lit_int(0)),
        );
        assert!(e.eval(&t).is_err());
    }

    #[test]
    fn display() {
        let e = Expr::Arith(
            Box::new(Expr::attr(0)),
            ArithOp::Add,
            Box::new(Expr::lit_int(1)),
        );
        assert_eq!(e.to_string(), "(#0 + 1)");
    }

    #[test]
    fn unbound_param_errors() {
        let t = Tuple::from_ints(&[1]);
        let e = Expr::Param(3);
        let err = e.eval(&t).unwrap_err();
        assert!(err.to_string().contains("unbound parameter ?3"), "{err}");
        assert_eq!(e.to_string(), "?3");
    }

    #[test]
    fn type_errors_propagate() {
        let t = Tuple::new(vec![Value::str("x")]);
        let e = Expr::Arith(
            Box::new(Expr::attr(0)),
            ArithOp::Add,
            Box::new(Expr::lit_int(1)),
        );
        assert!(e.eval(&t).is_err());
    }
}
