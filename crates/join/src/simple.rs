//! The simple (two-phase build–probe) hash join.
//!
//! Phase 1 consumes the *left* operand entirely, building a hash table on
//! the join key. Phase 2 streams the *right* operand past the table,
//! emitting projected matches. No output can appear before the build phase
//! completes — the property that makes left-deep pipelines ineffective and
//! motivates right-deep segments (§3.3) and the pipelining join (§2.3.2).

use std::sync::Arc;

use mj_relalg::{EquiJoin, RelalgError, Relation, Result, Tuple, Value};

use crate::hash_table::JoinTable;

/// Incremental state for a simple hash join (push-based, as used by the
/// parallel engine's operator processes).
pub struct SimpleJoinState {
    spec: EquiJoin,
    table: JoinTable,
    build_done: bool,
    /// Reused output-row scratch; makes steady-state probing
    /// allocation-free for inline-eligible output rows.
    scratch: Vec<Value>,
}

impl SimpleJoinState {
    /// Creates a join state for the given spec.
    pub fn new(spec: EquiJoin) -> Self {
        SimpleJoinState {
            spec,
            table: JoinTable::new(),
            build_done: false,
            scratch: Vec::new(),
        }
    }

    /// Creates a join state with a pre-sized table.
    pub fn with_capacity(spec: EquiJoin, build_estimate: usize) -> Self {
        SimpleJoinState {
            spec,
            table: JoinTable::with_capacity(build_estimate),
            build_done: false,
            scratch: Vec::new(),
        }
    }

    /// Consumes one build-side (left) tuple.
    pub fn build(&mut self, tuple: Tuple) -> Result<()> {
        if self.build_done {
            return Err(RelalgError::InvalidPlan(
                "simple hash join: build after build phase closed".into(),
            ));
        }
        let key = tuple.int(self.spec.left_key)?;
        self.table.insert(key, tuple);
        Ok(())
    }

    /// Marks the build phase complete; probing is allowed afterwards.
    pub fn finish_build(&mut self) {
        self.build_done = true;
    }

    /// True once the build phase has been closed.
    pub fn build_done(&self) -> bool {
        self.build_done
    }

    /// Number of tuples in the build table.
    pub fn built_len(&self) -> usize {
        self.table.len()
    }

    /// Probes with one right tuple, appending projected matches to `out`.
    /// Output rows are built through the state's reused scratch buffer, so
    /// matches cost no allocation beyond their own (possibly inline)
    /// payload.
    pub fn probe(&mut self, tuple: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        if !self.build_done {
            return Err(RelalgError::InvalidPlan(
                "simple hash join: probe before build phase closed".into(),
            ));
        }
        let key = tuple.int(self.spec.right_key)?;
        for l in self.table.probe(key) {
            out.push(
                self.spec
                    .projection
                    .apply_concat_into(l, tuple, &mut self.scratch)?,
            );
        }
        Ok(())
    }

    /// Approximate resident bytes of the build table. The simple join holds
    /// exactly one table — half of what the pipelining join needs (§5).
    pub fn est_bytes(&self) -> usize {
        self.table.est_bytes()
    }

    /// The join spec.
    pub fn spec(&self) -> &EquiJoin {
        &self.spec
    }
}

/// One-shot simple hash join of two relations: builds on `left`, probes
/// with `right`.
pub fn simple_hash_join(left: &Relation, right: &Relation, spec: &EquiJoin) -> Result<Relation> {
    let out_schema = Arc::new(
        spec.projection
            .output_schema(&left.schema().concat(right.schema()))?,
    );
    let mut state = SimpleJoinState::with_capacity(spec.clone(), left.len());
    for t in left {
        state.build(t.clone())?;
    }
    state.finish_build();
    let mut out = Vec::new();
    for t in right {
        state.probe(t, &mut out)?;
    }
    Ok(Relation::new_unchecked(out_schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::ops::nested_loop_join;
    use mj_relalg::{Attribute, Projection, Schema};

    fn rel(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        Relation::new(schema, rows.iter().map(|r| Tuple::from_ints(r)).collect()).unwrap()
    }

    fn spec() -> EquiJoin {
        EquiJoin::new(0, 0, Projection::new(vec![0, 1, 3]))
    }

    #[test]
    fn matches_nested_loop_oracle() {
        let l = rel(&[[1, 10], [2, 20], [2, 21], [3, 30]]);
        let r = rel(&[[2, 200], [3, 300], [3, 301], [4, 400]]);
        let expected = nested_loop_join(&l, &r, &spec()).unwrap();
        let got = simple_hash_join(&l, &r, &spec()).unwrap();
        assert!(expected.multiset_eq(&got));
        assert_eq!(got.len(), 4); // 2x(2,*) matches 1, 1x(3,*) matches 2
    }

    #[test]
    fn probe_before_finish_build_errors() {
        let mut s = SimpleJoinState::new(spec());
        s.build(Tuple::from_ints(&[1, 1])).unwrap();
        let mut out = Vec::new();
        assert!(s.probe(&Tuple::from_ints(&[1, 1]), &mut out).is_err());
        s.finish_build();
        assert!(s.probe(&Tuple::from_ints(&[1, 1]), &mut out).is_ok());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn build_after_finish_errors() {
        let mut s = SimpleJoinState::new(spec());
        s.finish_build();
        assert!(s.build(Tuple::from_ints(&[1, 1])).is_err());
        assert!(s.build_done());
    }

    #[test]
    fn empty_inputs() {
        let l = rel(&[]);
        let r = rel(&[[1, 1]]);
        assert!(simple_hash_join(&l, &r, &spec()).unwrap().is_empty());
        assert!(simple_hash_join(&r, &l, &spec()).unwrap().is_empty());
    }

    #[test]
    fn key_type_errors_surface() {
        let schema = Schema::new(vec![Attribute::str("s")]).shared();
        let l = Relation::new(schema, vec![Tuple::new(vec!["x".into()])]).unwrap();
        let r = rel(&[[1, 1]]);
        let s = EquiJoin::new(0, 0, Projection::new(vec![0]));
        assert!(simple_hash_join(&l, &r, &s).is_err());
    }

    #[test]
    fn memory_is_one_table() {
        let l = rel(&[[1, 10], [2, 20]]);
        let r = rel(&[[1, 1], [2, 2]]);
        let mut s = SimpleJoinState::new(spec());
        for t in &l {
            s.build(t.clone()).unwrap();
        }
        s.finish_build();
        let bytes_after_build = s.est_bytes();
        let mut out = Vec::new();
        for t in &r {
            s.probe(t, &mut out).unwrap();
        }
        assert_eq!(
            s.est_bytes(),
            bytes_after_build,
            "probing allocates no table memory"
        );
        assert_eq!(s.built_len(), 2);
    }
}
