//! A chained multimap from join keys to tuples.
//!
//! Purpose-built for hash joins: integer keys, duplicate keys allowed,
//! insertion is O(1) amortized, probing walks a per-bucket chain. Entries
//! live in one contiguous `Vec` (cache-friendly, single allocation
//! amortized) with `u32` chain links, the classic join-table layout.
//! Tracks its approximate byte footprint because the paper's memory
//! argument (RD builds one table per join, FP builds two, §5) is one of the
//! reproduced ablations.

use mj_relalg::hash::mix_key;
use mj_relalg::Tuple;

const EMPTY: u32 = u32::MAX;
/// Grow when entries exceed buckets * LOAD_NUM / LOAD_DEN.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

struct Entry {
    key: i64,
    /// Index of the next entry in the same bucket, or `EMPTY`.
    next: u32,
    tuple: Tuple,
}

/// A multimap from `i64` join keys to [`Tuple`]s.
pub struct JoinTable {
    /// Head entry index per bucket (`EMPTY` when vacant).
    buckets: Vec<u32>,
    entries: Vec<Entry>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: u64,
    tuple_bytes: usize,
}

impl JoinTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// Creates a table sized for about `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        let buckets = (n * LOAD_DEN / LOAD_NUM).next_power_of_two().max(16);
        JoinTable {
            buckets: vec![EMPTY; buckets],
            entries: Vec::with_capacity(n),
            mask: (buckets - 1) as u64,
            tuple_bytes: 0,
        }
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a tuple under `key`.
    pub fn insert(&mut self, key: i64, tuple: Tuple) {
        if self.entries.len() + 1 > self.buckets.len() * LOAD_NUM / LOAD_DEN {
            self.grow();
        }
        let b = (mix_key(key) & self.mask) as usize;
        let idx = self.entries.len() as u32;
        self.tuple_bytes += tuple.est_bytes();
        self.entries.push(Entry {
            key,
            next: self.buckets[b],
            tuple,
        });
        self.buckets[b] = idx;
    }

    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        self.buckets.clear();
        self.buckets.resize(new_len, EMPTY);
        self.mask = (new_len - 1) as u64;
        for (i, e) in self.entries.iter_mut().enumerate() {
            let b = (mix_key(e.key) & self.mask) as usize;
            e.next = self.buckets[b];
            self.buckets[b] = i as u32;
        }
    }

    /// Iterates over all tuples stored under `key`.
    pub fn probe<'a>(&'a self, key: i64) -> ProbeIter<'a> {
        let b = (mix_key(key) & self.mask) as usize;
        ProbeIter {
            table: self,
            key,
            next: self.buckets[b],
        }
    }

    /// True if at least one tuple is stored under `key`.
    pub fn contains_key(&self, key: i64) -> bool {
        self.probe(key).next().is_some()
    }

    /// Iterates over all `(key, tuple)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &Tuple)> {
        self.entries.iter().map(|e| (e.key, &e.tuple))
    }

    /// Approximate resident bytes (tuples + table structure).
    pub fn est_bytes(&self) -> usize {
        self.tuple_bytes
            + self.buckets.len() * std::mem::size_of::<u32>()
            + self.entries.len() * (std::mem::size_of::<Entry>() - std::mem::size_of::<Tuple>())
    }
}

impl Default for JoinTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over the tuples matching one key.
pub struct ProbeIter<'a> {
    table: &'a JoinTable,
    key: i64,
    next: u32,
}

impl<'a> Iterator for ProbeIter<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        while self.next != EMPTY {
            let e = &self.table.entries[self.next as usize];
            self.next = e.next;
            if e.key == self.key {
                return Some(&e.tuple);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: i64) -> Tuple {
        Tuple::from_ints(&[v])
    }

    #[test]
    fn insert_and_probe() {
        let mut table = JoinTable::new();
        table.insert(1, t(10));
        table.insert(2, t(20));
        table.insert(1, t(11));
        assert_eq!(table.len(), 3);
        let hits: Vec<i64> = table.probe(1).map(|x| x.int(0).unwrap()).collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&10) && hits.contains(&11));
        assert_eq!(table.probe(3).count(), 0);
        assert!(table.contains_key(2));
        assert!(!table.contains_key(9));
    }

    #[test]
    fn growth_preserves_contents() {
        let mut table = JoinTable::with_capacity(4);
        for k in 0..10_000i64 {
            table.insert(k % 100, t(k));
        }
        assert_eq!(table.len(), 10_000);
        for k in 0..100 {
            assert_eq!(table.probe(k).count(), 100, "key {k}");
        }
    }

    #[test]
    fn negative_and_extreme_keys() {
        let mut table = JoinTable::new();
        for k in [i64::MIN, -1, 0, 1, i64::MAX] {
            table.insert(k, t(k));
        }
        for k in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(table.probe(k).count(), 1, "key {k}");
        }
    }

    #[test]
    fn bytes_grow_with_inserts() {
        let mut table = JoinTable::new();
        let empty = table.est_bytes();
        for k in 0..100 {
            table.insert(k, t(k));
        }
        assert!(table.est_bytes() > empty);
    }

    #[test]
    fn iter_yields_everything() {
        let mut table = JoinTable::new();
        table.insert(5, t(1));
        table.insert(6, t(2));
        let all: Vec<i64> = table.iter().map(|(k, _)| k).collect();
        assert_eq!(all, vec![5, 6]);
    }

    #[test]
    fn insert_shares_payloads_instead_of_deep_copying() {
        // Wide rows use the shared representation; inserting a clone must
        // store the same physical payload.
        let original = Tuple::from_ints(&[1, 2, 3, 4, 5, 6]);
        let mut table = JoinTable::new();
        table.insert(1, original.clone());
        let stored = table.probe(1).next().unwrap();
        assert!(
            Tuple::ptr_eq(stored, &original),
            "insert deep-copied the tuple"
        );
        // est_bytes still accounts the logical (deep) footprint.
        assert!(table.est_bytes() >= original.est_bytes());
    }

    #[test]
    fn empty_table() {
        let table = JoinTable::new();
        assert!(table.is_empty());
        assert_eq!(table.probe(0).count(), 0);
    }
}
