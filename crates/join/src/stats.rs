//! Instrumented join runs: measures *when* output appears relative to input
//! consumption and how much table memory a join holds.
//!
//! These numbers back two of the paper's qualitative claims:
//! * "the pipelining algorithm can produce result tuples earlier during the
//!   join process at the cost of using more memory" (§2.3.2);
//! * the pipeline-delay trade-off of §2.3.3 / §3.5.

use mj_relalg::{EquiJoin, JoinAlgorithm, Relation, Result};

use crate::pipelining::PipeliningJoinState;
use crate::simple::SimpleJoinState;

/// The order in which operand tuples are fed to an instrumented join.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeedOrder {
    /// Strictly alternate left/right (a balanced two-sided pipeline).
    Alternate,
    /// All left tuples, then all right tuples (build then probe).
    LeftThenRight,
}

/// Measurements from one instrumented join run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinRunStats {
    /// Input tuples consumed (both sides) before the first output tuple.
    /// `None` if the join produced no output.
    pub inputs_before_first_output: Option<usize>,
    /// Total input tuples consumed.
    pub inputs_total: usize,
    /// Output tuples produced.
    pub outputs: usize,
    /// Peak resident bytes of the join's hash table(s).
    pub peak_table_bytes: usize,
}

/// Runs `algorithm` over the operands in the given feed order, recording
/// when output first appears and peak table memory.
pub fn run_instrumented(
    left: &Relation,
    right: &Relation,
    spec: &EquiJoin,
    algorithm: JoinAlgorithm,
    order: FeedOrder,
) -> Result<JoinRunStats> {
    // The simple join cannot accept probes before its build completes, so
    // it always behaves as LeftThenRight regardless of the requested order.
    let mut consumed = 0usize;
    let mut first_out = None;
    let mut outputs = 0usize;
    let mut peak = 0usize;
    let mut out = Vec::new();

    let note =
        |consumed: usize, out: &mut Vec<_>, outputs: &mut usize, first: &mut Option<usize>| {
            if !out.is_empty() {
                if first.is_none() {
                    *first = Some(consumed);
                }
                *outputs += out.len();
                out.clear();
            }
        };

    match algorithm {
        JoinAlgorithm::Simple => {
            let mut s = SimpleJoinState::new(spec.clone());
            for t in left {
                s.build(t.clone())?;
                consumed += 1;
                peak = peak.max(s.est_bytes());
            }
            s.finish_build();
            for t in right {
                s.probe(t, &mut out)?;
                consumed += 1;
                peak = peak.max(s.est_bytes());
                note(consumed, &mut out, &mut outputs, &mut first_out);
            }
        }
        JoinAlgorithm::Pipelining => {
            let mut s = PipeliningJoinState::new(spec.clone());
            match order {
                FeedOrder::LeftThenRight => {
                    for t in left {
                        s.push_left(t.clone(), &mut out)?;
                        consumed += 1;
                        peak = peak.max(s.est_bytes());
                        note(consumed, &mut out, &mut outputs, &mut first_out);
                    }
                    for t in right {
                        s.push_right(t.clone(), &mut out)?;
                        consumed += 1;
                        peak = peak.max(s.est_bytes());
                        note(consumed, &mut out, &mut outputs, &mut first_out);
                    }
                }
                FeedOrder::Alternate => {
                    let mut l = left.iter();
                    let mut r = right.iter();
                    loop {
                        let lt = l.next();
                        let rt = r.next();
                        if lt.is_none() && rt.is_none() {
                            break;
                        }
                        if let Some(t) = lt {
                            s.push_left(t.clone(), &mut out)?;
                            consumed += 1;
                            note(consumed, &mut out, &mut outputs, &mut first_out);
                        }
                        if let Some(t) = rt {
                            s.push_right(t.clone(), &mut out)?;
                            consumed += 1;
                            note(consumed, &mut out, &mut outputs, &mut first_out);
                        }
                        peak = peak.max(s.est_bytes());
                    }
                }
            }
        }
    }

    Ok(JoinRunStats {
        inputs_before_first_output: first_out,
        inputs_total: consumed,
        outputs,
        peak_table_bytes: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::{Attribute, Projection, Schema, Tuple};

    fn perm_rel(n: i64, seedish: i64) -> Relation {
        // Deterministic pseudo-shuffled permutation keys.
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        let tuples = (0..n)
            .map(|i| Tuple::from_ints(&[(i * seedish) % n, i]))
            .collect();
        Relation::new(schema, tuples).unwrap()
    }

    fn spec() -> EquiJoin {
        EquiJoin::new(0, 0, Projection::new(vec![1, 3]))
    }

    #[test]
    fn pipelining_emits_earlier_than_simple() {
        // 101 and 103 are coprime with 1000 -> both sides are permutations
        // of 0..1000, a perfect 1-1 join like the paper's workload.
        let l = perm_rel(1000, 101);
        let r = perm_rel(1000, 103);
        let simple = run_instrumented(
            &l,
            &r,
            &spec(),
            JoinAlgorithm::Simple,
            FeedOrder::LeftThenRight,
        )
        .unwrap();
        let pipe = run_instrumented(
            &l,
            &r,
            &spec(),
            JoinAlgorithm::Pipelining,
            FeedOrder::Alternate,
        )
        .unwrap();
        assert_eq!(simple.outputs, 1000);
        assert_eq!(pipe.outputs, 1000);
        let s_first = simple.inputs_before_first_output.unwrap();
        let p_first = pipe.inputs_before_first_output.unwrap();
        assert!(s_first > 1000, "simple join cannot emit before build ends");
        assert!(
            p_first < s_first,
            "pipelining emits earlier: {p_first} vs {s_first}"
        );
    }

    #[test]
    fn pipelining_costs_more_memory() {
        let l = perm_rel(500, 101);
        let r = perm_rel(500, 103);
        let simple = run_instrumented(
            &l,
            &r,
            &spec(),
            JoinAlgorithm::Simple,
            FeedOrder::LeftThenRight,
        )
        .unwrap();
        let pipe = run_instrumented(
            &l,
            &r,
            &spec(),
            JoinAlgorithm::Pipelining,
            FeedOrder::Alternate,
        )
        .unwrap();
        assert!(pipe.peak_table_bytes > simple.peak_table_bytes);
    }

    #[test]
    fn no_matches_reports_none() {
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        let l = Relation::new(schema.clone(), vec![Tuple::from_ints(&[1, 1])]).unwrap();
        let r = Relation::new(schema, vec![Tuple::from_ints(&[2, 2])]).unwrap();
        let s = run_instrumented(
            &l,
            &r,
            &spec(),
            JoinAlgorithm::Pipelining,
            FeedOrder::Alternate,
        )
        .unwrap();
        assert_eq!(s.outputs, 0);
        assert!(s.inputs_before_first_output.is_none());
        assert_eq!(s.inputs_total, 2);
    }

    #[test]
    fn pipelining_left_then_right_degenerates_to_simple_timing() {
        let l = perm_rel(200, 101);
        let r = perm_rel(200, 103);
        let pipe = run_instrumented(
            &l,
            &r,
            &spec(),
            JoinAlgorithm::Pipelining,
            FeedOrder::LeftThenRight,
        )
        .unwrap();
        // Feeding all of the left first means no output until right begins.
        assert!(pipe.inputs_before_first_output.unwrap() > 200);
    }
}
