//! The pipelining (symmetric) hash join of \[WiA91\] — the algorithm behind
//! the paper's Full Parallel strategy.
//!
//! The join "consists of only one phase. As a tuple comes in, it is first
//! hashed and used to probe that part of the hash table of the other
//! operand that has already been constructed. If a match is found, a result
//! tuple is formed and sent to the consumer operation. Finally, the tuple
//! is inserted in the hash table of its own operand." (§2.3.2)
//!
//! Compared to the simple join it produces output as early as possible —
//! enabling pipelining along *both* operands — at the cost of a second
//! hash table.

use std::sync::Arc;

use mj_relalg::{EquiJoin, Relation, Result, Tuple, Value};

use crate::hash_table::JoinTable;

/// Incremental state for a pipelining hash join. Feed tuples from either
/// side in any interleaving; matches are emitted immediately. Every
/// matching pair is emitted exactly once — when its later tuple arrives.
pub struct PipeliningJoinState {
    spec: EquiJoin,
    left_table: JoinTable,
    right_table: JoinTable,
    /// Reused output-row scratch; makes steady-state pushes
    /// allocation-free for inline-eligible output rows.
    scratch: Vec<Value>,
}

impl PipeliningJoinState {
    /// Creates a join state for the given spec.
    pub fn new(spec: EquiJoin) -> Self {
        PipeliningJoinState {
            spec,
            left_table: JoinTable::new(),
            right_table: JoinTable::new(),
            scratch: Vec::new(),
        }
    }

    /// Creates a join state with pre-sized tables.
    pub fn with_capacity(spec: EquiJoin, left_estimate: usize, right_estimate: usize) -> Self {
        PipeliningJoinState {
            spec,
            left_table: JoinTable::with_capacity(left_estimate),
            right_table: JoinTable::with_capacity(right_estimate),
            scratch: Vec::new(),
        }
    }

    /// Consumes one left tuple: probe the right table, emit matches, insert
    /// into the left table.
    pub fn push_left(&mut self, tuple: Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let key = tuple.int(self.spec.left_key)?;
        for r in self.right_table.probe(key) {
            out.push(
                self.spec
                    .projection
                    .apply_concat_into(&tuple, r, &mut self.scratch)?,
            );
        }
        self.left_table.insert(key, tuple);
        Ok(())
    }

    /// Consumes one right tuple: probe the left table, emit matches, insert
    /// into the right table.
    pub fn push_right(&mut self, tuple: Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let key = tuple.int(self.spec.right_key)?;
        for l in self.left_table.probe(key) {
            out.push(
                self.spec
                    .projection
                    .apply_concat_into(l, &tuple, &mut self.scratch)?,
            );
        }
        self.right_table.insert(key, tuple);
        Ok(())
    }

    /// Tuples consumed so far from (left, right).
    pub fn consumed(&self) -> (usize, usize) {
        (self.left_table.len(), self.right_table.len())
    }

    /// Approximate resident bytes — *two* hash tables, the memory price the
    /// paper attributes to FP (§5).
    pub fn est_bytes(&self) -> usize {
        self.left_table.est_bytes() + self.right_table.est_bytes()
    }

    /// The join spec.
    pub fn spec(&self) -> &EquiJoin {
        &self.spec
    }
}

/// One-shot pipelining join that alternates strictly between operands
/// (left, right, left, ...), as in a balanced two-sided pipeline.
pub fn pipelining_hash_join(
    left: &Relation,
    right: &Relation,
    spec: &EquiJoin,
) -> Result<Relation> {
    let out_schema = Arc::new(
        spec.projection
            .output_schema(&left.schema().concat(right.schema()))?,
    );
    let mut state = PipeliningJoinState::with_capacity(spec.clone(), left.len(), right.len());
    let mut out = Vec::new();
    let mut l = left.iter();
    let mut r = right.iter();
    loop {
        match (l.next(), r.next()) {
            (None, None) => break,
            (lt, rt) => {
                if let Some(t) = lt {
                    state.push_left(t.clone(), &mut out)?;
                }
                if let Some(t) = rt {
                    state.push_right(t.clone(), &mut out)?;
                }
            }
        }
    }
    Ok(Relation::new_unchecked(out_schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::simple_hash_join;
    use mj_relalg::ops::nested_loop_join;
    use mj_relalg::{Attribute, Projection, Schema};

    fn rel(rows: &[[i64; 2]]) -> Relation {
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        Relation::new(schema, rows.iter().map(|r| Tuple::from_ints(r)).collect()).unwrap()
    }

    fn spec() -> EquiJoin {
        EquiJoin::new(0, 0, Projection::new(vec![0, 1, 3]))
    }

    #[test]
    fn equivalent_to_simple_and_oracle() {
        let l = rel(&[[1, 10], [2, 20], [2, 21], [3, 30], [5, 50]]);
        let r = rel(&[[2, 200], [3, 300], [3, 301], [4, 400], [2, 201]]);
        let oracle = nested_loop_join(&l, &r, &spec()).unwrap();
        let simple = simple_hash_join(&l, &r, &spec()).unwrap();
        let pipelined = pipelining_hash_join(&l, &r, &spec()).unwrap();
        assert!(oracle.multiset_eq(&simple));
        assert!(oracle.multiset_eq(&pipelined));
    }

    #[test]
    fn emits_each_pair_exactly_once_regardless_of_interleaving() {
        let l = rel(&[[1, 10], [1, 11]]);
        let r = rel(&[[1, 100], [1, 101]]);
        // Feed in three different interleavings; all must yield 4 results.
        for order in 0..3 {
            let mut state = PipeliningJoinState::new(spec());
            let mut out = Vec::new();
            match order {
                0 => {
                    // All left first (degenerates to simple build-probe).
                    for t in &l {
                        state.push_left(t.clone(), &mut out).unwrap();
                    }
                    for t in &r {
                        state.push_right(t.clone(), &mut out).unwrap();
                    }
                }
                1 => {
                    // All right first.
                    for t in &r {
                        state.push_right(t.clone(), &mut out).unwrap();
                    }
                    for t in &l {
                        state.push_left(t.clone(), &mut out).unwrap();
                    }
                }
                _ => {
                    // Alternating.
                    for (a, b) in l.iter().zip(r.iter()) {
                        state.push_left(a.clone(), &mut out).unwrap();
                        state.push_right(b.clone(), &mut out).unwrap();
                    }
                }
            }
            assert_eq!(out.len(), 4, "order {order}");
        }
    }

    #[test]
    fn produces_output_before_either_input_is_exhausted() {
        // The defining property: with matching early tuples, output appears
        // while both inputs still have unconsumed tuples.
        let mut state = PipeliningJoinState::new(spec());
        let mut out = Vec::new();
        state
            .push_left(Tuple::from_ints(&[7, 1]), &mut out)
            .unwrap();
        assert!(out.is_empty());
        state
            .push_right(Tuple::from_ints(&[7, 2]), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1, "match emitted immediately");
        assert_eq!(state.consumed(), (1, 1));
    }

    #[test]
    fn uses_two_tables_worth_of_memory() {
        let l = rel(&[[1, 10], [2, 20]]);
        let r = rel(&[[3, 30], [4, 40]]);
        let mut pipe = PipeliningJoinState::new(spec());
        let mut out = Vec::new();
        for t in &l {
            pipe.push_left(t.clone(), &mut out).unwrap();
        }
        for t in &r {
            pipe.push_right(t.clone(), &mut out).unwrap();
        }
        let mut simple = crate::simple::SimpleJoinState::new(spec());
        for t in &l {
            simple.build(t.clone()).unwrap();
        }
        simple.finish_build();
        assert!(
            pipe.est_bytes() > simple.est_bytes(),
            "pipelining join must hold strictly more state than the simple join"
        );
    }

    #[test]
    fn empty_inputs() {
        let e = rel(&[]);
        let r = rel(&[[1, 1]]);
        assert!(pipelining_hash_join(&e, &r, &spec()).unwrap().is_empty());
        assert!(pipelining_hash_join(&r, &e, &spec()).unwrap().is_empty());
        assert!(pipelining_hash_join(&e, &e, &spec()).unwrap().is_empty());
    }
}
