//! Partitioned parallel join: intra-operator parallelism for one binary
//! join, the building block every strategy in the paper shares ("It is
//! generally agreed on that the parallel hash-join is the algorithm of
//! choice", §3).
//!
//! Both operands are hash-partitioned on their join keys into `parts`
//! disjoint buckets; bucket `i` of the left can only match bucket `i` of
//! the right, so the `parts` bucket-joins run on independent threads and
//! their outputs are unioned.

use std::sync::Arc;

use mj_relalg::hash::bucket_of;
use mj_relalg::{EquiJoin, JoinAlgorithm, RelalgError, Relation, Result, Tuple};

use crate::pipelining::pipelining_hash_join;
use crate::simple::simple_hash_join;

fn split(rel: &Relation, key: usize, parts: usize) -> Result<Vec<Vec<Tuple>>> {
    let mut out: Vec<Vec<Tuple>> = (0..parts).map(|_| Vec::new()).collect();
    for t in rel {
        out[bucket_of(t.int(key)?, parts)].push(t.clone());
    }
    Ok(out)
}

/// Joins `left` and `right` with `parts`-way intra-operator parallelism
/// using the given algorithm. `parts = 1` degenerates to the sequential
/// algorithm.
pub fn partitioned_parallel_join(
    left: &Relation,
    right: &Relation,
    spec: &EquiJoin,
    parts: usize,
    algorithm: JoinAlgorithm,
) -> Result<Relation> {
    if parts == 0 {
        return Err(RelalgError::InvalidPlan(
            "parallel join over 0 partitions".into(),
        ));
    }
    let out_schema = Arc::new(
        spec.projection
            .output_schema(&left.schema().concat(right.schema()))?,
    );

    let left_parts = split(left, spec.left_key, parts)?;
    let right_parts = split(right, spec.right_key, parts)?;

    let results: Vec<Result<Vec<Tuple>>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(parts);
        for (lp, rp) in left_parts.into_iter().zip(right_parts) {
            let spec = spec.clone();
            let ls = left.schema().clone();
            let rs = right.schema().clone();
            handles.push(scope.spawn(move || -> Result<Vec<Tuple>> {
                let l = Relation::new_unchecked(ls, lp);
                let r = Relation::new_unchecked(rs, rp);
                let joined = match algorithm {
                    JoinAlgorithm::Simple => simple_hash_join(&l, &r, &spec)?,
                    JoinAlgorithm::Pipelining => pipelining_hash_join(&l, &r, &spec)?,
                };
                Ok(joined.into_tuples())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("join worker panicked"))
            .collect()
    });

    let mut out = Vec::new();
    for r in results {
        out.extend(r?);
    }
    Ok(Relation::new_unchecked(out_schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::ops::nested_loop_join;
    use mj_relalg::{Attribute, Projection, Schema};

    fn rel(n: i64, stride: i64) -> Relation {
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        Relation::new(
            schema,
            (0..n).map(|i| Tuple::from_ints(&[i * stride, i])).collect(),
        )
        .unwrap()
    }

    fn spec() -> EquiJoin {
        EquiJoin::new(0, 0, Projection::new(vec![0, 1, 3]))
    }

    #[test]
    fn parallel_matches_oracle_for_both_algorithms() {
        let l = rel(500, 1);
        let r = rel(300, 2); // keys 0,2,4,... -> 150 matches under 500
        let oracle = nested_loop_join(&l, &r, &spec()).unwrap();
        for algo in [JoinAlgorithm::Simple, JoinAlgorithm::Pipelining] {
            for parts in [1, 2, 3, 8] {
                let got = partitioned_parallel_join(&l, &r, &spec(), parts, algo).unwrap();
                assert!(oracle.multiset_eq(&got), "algo {algo} parts {parts}");
            }
        }
    }

    #[test]
    fn zero_parts_rejected() {
        let l = rel(1, 1);
        assert!(partitioned_parallel_join(&l, &l, &spec(), 0, JoinAlgorithm::Simple).is_err());
    }

    #[test]
    fn empty_inputs() {
        let e = rel(0, 1);
        let r = rel(10, 1);
        let out = partitioned_parallel_join(&e, &r, &spec(), 4, JoinAlgorithm::Simple).unwrap();
        assert!(out.is_empty());
    }
}
