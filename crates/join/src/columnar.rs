//! A columnar hash-join table: build rows stored column-wise, probes run
//! over whole key slices.
//!
//! The row-oriented [`JoinTable`](crate::hash_table::JoinTable) keeps one
//! `Tuple` per entry; this table instead keeps the build side as a
//! [`ColumnBatch`] plus a dense `keys` column, with the same
//! bucket-head/next-chain index (`u32` links, power-of-two buckets, 7/8
//! load factor). Probing takes a whole probe-side key slice and collects
//! `(build_row, probe_row)` match pairs; output assembly is then one
//! column-wise gather through the join's projection
//! ([`ColumnBatch::append_concat_gather`]) instead of per-tuple
//! concatenation — the vectorized hot path of `SimpleJoinOp` and
//! `PipeliningJoinOp`.

use std::sync::atomic::{AtomicU64, Ordering};

use mj_relalg::column::ColumnBatch;
use mj_relalg::hash::mix_key;
use mj_relalg::{Result, Tuple};

/// Process-wide count of join output rows materialized by gather emission
/// ([`ColumnarTable::emit_matches`]) — the observable cost late
/// materialization shrinks.
static GATHER_ROWS: AtomicU64 = AtomicU64::new(0);

/// Join output rows gathered (build+probe payload materialization) since
/// process start.
pub fn gather_rows() -> u64 {
    GATHER_ROWS.load(Ordering::Relaxed)
}

const EMPTY: u32 = u32::MAX;
/// Grow when entries exceed buckets * LOAD_NUM / LOAD_DEN.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// A multimap from `i64` join keys to build rows stored as columns.
pub struct ColumnarTable {
    /// Build rows, column-wise. Starts shapeless; adopts the layout of the
    /// first inserted batch.
    rows: ColumnBatch,
    /// The join key of each stored row (densely, probe loops scan this).
    keys: Vec<i64>,
    /// Head row index per bucket (`EMPTY` when vacant).
    buckets: Vec<u32>,
    /// Chain link per stored row (`next[i]` is the previous head of `i`'s
    /// bucket).
    next: Vec<u32>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: u64,
}

impl ColumnarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// Creates a table sized for about `n` build rows.
    pub fn with_capacity(n: usize) -> Self {
        let buckets = (n * LOAD_DEN / LOAD_NUM).next_power_of_two().max(16);
        ColumnarTable {
            rows: ColumnBatch::shapeless(),
            keys: Vec::with_capacity(n),
            buckets: vec![EMPTY; buckets],
            next: Vec::with_capacity(n),
            mask: (buckets - 1) as u64,
        }
    }

    /// Number of stored build rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The stored build rows, column-wise (gather source for output
    /// assembly).
    pub fn rows(&self) -> &ColumnBatch {
        &self.rows
    }

    fn ensure_load(&mut self, adding: usize) {
        while self.keys.len() + adding > self.buckets.len() * LOAD_NUM / LOAD_DEN {
            let new_len = self.buckets.len() * 2;
            self.buckets.clear();
            self.buckets.resize(new_len, EMPTY);
            self.mask = (new_len - 1) as u64;
            for (i, &k) in self.keys.iter().enumerate() {
                let b = (mix_key(k) & self.mask) as usize;
                self.next[i] = self.buckets[b];
                self.buckets[b] = i as u32;
            }
        }
    }

    fn link_from(&mut self, first_new: usize) {
        for i in first_new..self.keys.len() {
            let b = (mix_key(self.keys[i]) & self.mask) as usize;
            self.next.push(self.buckets[b]);
            self.buckets[b] = i as u32;
        }
    }

    /// Bulk-inserts rows `range` of `batch`, keyed by its `key_col` column:
    /// the rows are appended column-wise, the key slice copied densely, and
    /// the chains linked in one pass — the vectorized build loop.
    pub fn insert_batch(
        &mut self,
        batch: &ColumnBatch,
        key_col: usize,
        range: std::ops::Range<usize>,
    ) -> Result<()> {
        let keys = batch.int_col(key_col)?;
        self.ensure_load(range.len());
        let first_new = self.keys.len();
        self.rows.append_rows(batch, range.clone())?;
        self.keys.extend_from_slice(&keys[range]);
        self.link_from(first_new);
        Ok(())
    }

    /// Inserts one row from a [`Tuple`] (boundary path: row-compat drivers
    /// and tests).
    pub fn insert_row(&mut self, key: i64, tuple: &Tuple) -> Result<()> {
        self.ensure_load(1);
        let first_new = self.keys.len();
        self.rows.push_tuple(tuple)?;
        self.keys.push(key);
        self.link_from(first_new);
        Ok(())
    }

    /// Probes the table with rows `range` of the `probe_keys` slice,
    /// appending every `(build_row, probe_row)` match to `pairs`. The
    /// caller turns the pairs into output rows with one
    /// [`ColumnBatch::append_concat_gather`].
    pub fn probe_into(
        &self,
        probe_keys: &[i64],
        range: std::ops::Range<usize>,
        pairs: &mut Vec<(u32, u32)>,
    ) {
        for r in range {
            let key = probe_keys[r];
            let mut idx = self.buckets[(mix_key(key) & self.mask) as usize];
            while idx != EMPTY {
                let i = idx as usize;
                if self.keys[i] == key {
                    pairs.push((idx, r as u32));
                }
                idx = self.next[i];
            }
        }
    }

    /// Probes with a single key, appending `(build_row, probe_row)` pairs
    /// with the given probe row index.
    pub fn probe_one(&self, key: i64, probe_row: u32, pairs: &mut Vec<(u32, u32)>) {
        let mut idx = self.buckets[(mix_key(key) & self.mask) as usize];
        while idx != EMPTY {
            let i = idx as usize;
            if self.keys[i] == key {
                pairs.push((idx, probe_row));
            }
            idx = self.next[i];
        }
    }

    /// Emits the matched join rows: for every pair, the projected
    /// concatenation of a stored build row and a `probe` row, gathered
    /// column-at-a-time. This is the **single** gather-emission point of
    /// the join operators (CI greps forbid direct
    /// [`ColumnBatch::append_concat_gather`] calls in operator internals),
    /// so the process-wide [`gather_rows`] counter sees every materialized
    /// join row.
    ///
    /// `build_left` states which operand of the projection's virtual
    /// concatenation the build side is; `pairs` must already be in
    /// `(left_row, right_row)` orientation (callers probing a *right*
    /// build table swap the `(build, probe)` pairs first).
    pub fn emit_matches(
        &self,
        probe: &ColumnBatch,
        cols: &[usize],
        pairs: &[(u32, u32)],
        build_left: bool,
        out: &mut ColumnBatch,
    ) -> Result<()> {
        GATHER_ROWS.fetch_add(pairs.len() as u64, Ordering::Relaxed);
        if build_left {
            out.append_concat_gather(&self.rows, probe, cols, pairs)
        } else {
            out.append_concat_gather(probe, &self.rows, cols, pairs)
        }
    }

    /// Approximate resident bytes: the columnar build rows plus the dense
    /// key column and the bucket/chain index.
    pub fn est_bytes(&self) -> usize {
        self.rows.est_bytes() as usize
            + self.keys.len() * std::mem::size_of::<i64>()
            + (self.buckets.len() + self.next.len()) * std::mem::size_of::<u32>()
    }
}

impl Default for ColumnarTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::column::ColumnLayout;

    fn batch(rows: &[[i64; 2]]) -> ColumnBatch {
        let mut b = ColumnBatch::with_capacity(&ColumnLayout::ints(2), rows.len());
        for r in rows {
            b.push_tuple(&Tuple::from_ints(r)).unwrap();
        }
        b
    }

    #[test]
    fn bulk_insert_and_probe_match_row_table() {
        let build = batch(&[[1, 10], [2, 20], [1, 11], [3, 30]]);
        let mut table = ColumnarTable::new();
        table.insert_batch(&build, 0, 0..build.rows()).unwrap();
        assert_eq!(table.len(), 4);

        let probe_keys = [1i64, 3, 9];
        let mut pairs = Vec::new();
        table.probe_into(&probe_keys, 0..probe_keys.len(), &mut pairs);
        let mut hits: Vec<(i64, i64)> = pairs
            .iter()
            .map(|&(b, p)| {
                (
                    table.rows().int_col(1).unwrap()[b as usize],
                    probe_keys[p as usize],
                )
            })
            .collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![(10, 1), (11, 1), (30, 3)]);
    }

    #[test]
    fn growth_preserves_chains() {
        let mut table = ColumnarTable::with_capacity(4);
        let mut all = Vec::new();
        for k in 0..10_000i64 {
            all.push([k % 100, k]);
        }
        let b = batch(&all.iter().map(|r| [r[0], r[1]]).collect::<Vec<_>>());
        table.insert_batch(&b, 0, 0..b.rows()).unwrap();
        let keys: Vec<i64> = (0..100).collect();
        let mut pairs = Vec::new();
        table.probe_into(&keys, 0..keys.len(), &mut pairs);
        assert_eq!(pairs.len(), 10_000, "every build row matches once");
    }

    #[test]
    fn row_inserts_interleave_with_bulk() {
        let mut table = ColumnarTable::new();
        table.insert_row(7, &Tuple::from_ints(&[7, 70])).unwrap();
        let b = batch(&[[7, 71], [8, 80]]);
        table.insert_batch(&b, 0, 0..2).unwrap();
        let mut pairs = Vec::new();
        table.probe_one(7, 0, &mut pairs);
        assert_eq!(pairs.len(), 2);
        assert!(table.est_bytes() > 0);
    }

    #[test]
    fn negative_and_extreme_keys() {
        let mut table = ColumnarTable::new();
        for (i, k) in [i64::MIN, -1, 0, 1, i64::MAX].iter().enumerate() {
            table
                .insert_row(*k, &Tuple::from_ints(&[*k, i as i64]))
                .unwrap();
        }
        for k in [i64::MIN, -1, 0, 1, i64::MAX] {
            let mut pairs = Vec::new();
            table.probe_one(k, 0, &mut pairs);
            assert_eq!(pairs.len(), 1, "key {k}");
        }
    }

    #[test]
    fn empty_table_probes_nothing() {
        let table = ColumnarTable::new();
        let mut pairs = Vec::new();
        table.probe_into(&[1, 2, 3], 0..3, &mut pairs);
        assert!(pairs.is_empty());
    }
}
