//! Hash join algorithms (§2.3.2 of the paper).
//!
//! Two algorithms are implemented, matching the paper exactly:
//!
//! * the **simple hash-join**: the classical two-phase build–probe join
//!   (\[ScD89\]); no output can be produced before the entire build operand
//!   has been consumed;
//! * the **pipelining hash-join** (\[WiA91\]): a symmetric one-phase join that
//!   builds a hash table on *both* operands. Each arriving tuple first
//!   probes the other operand's partial table (emitting any matches) and is
//!   then inserted into its own table. Output is produced as early as
//!   possible, enabling pipelining along *both* operands at the price of a
//!   second in-memory hash table.
//!
//! Both are exposed as incremental *states* (push-based, as the parallel
//! engine needs) and as one-shot convenience functions. A custom
//! integer-keyed multimap ([`hash_table::JoinTable`]) backs both, with byte
//! accounting for the paper's RD-vs-FP memory discussion (§5).

#![warn(missing_docs)]

pub mod columnar;
pub mod hash_table;
pub mod partitioned;
pub mod pipelining;
pub mod simple;
pub mod stats;

pub use columnar::{gather_rows, ColumnarTable};
pub use hash_table::JoinTable;
pub use partitioned::partitioned_parallel_join;
pub use pipelining::{pipelining_hash_join, PipeliningJoinState};
pub use simple::{simple_hash_join, SimpleJoinState};
pub use stats::{FeedOrder, JoinRunStats};
