//! Property-based tests over the core invariants of the reproduction.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use multijoin::core::allocation::discretization_error;
use multijoin::plan::cardinality::node_cards;
use multijoin::plan::query::to_xra;
use multijoin::plan::segment::segments;
use multijoin::plan::shapes::build;
use multijoin::prelude::*;
use multijoin::relalg::ops::nested_loop_join;
use multijoin::relalg::ops::{AggFunc, AggSpec};
use multijoin::relalg::predicate::CmpOp;
use multijoin::relalg::expr::Expr as ScalarExpr;
use multijoin::relalg::text;
// `proptest::prelude::Strategy` (the trait) shadows the glob-imported
// strategy enum; re-import the enum explicitly, and keep the trait's
// methods in scope via an anonymous import.
use multijoin::core::strategy::Strategy;
use proptest::strategy::Strategy as _;

fn arb_scalar() -> impl proptest::strategy::Strategy<Value = ScalarExpr> {
    use multijoin::relalg::expr::ArithOp;
    let leaf = prop_oneof![
        (0usize..8).prop_map(ScalarExpr::Attr),
        any::<i64>().prop_map(|v| ScalarExpr::Lit(Value::Int(v))),
        "[a-z' ]{0,12}".prop_map(|s| ScalarExpr::Lit(Value::Str(s.into()))),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        (inner.clone(), prop_oneof![
            Just(ArithOp::Add), Just(ArithOp::Sub), Just(ArithOp::Mul), Just(ArithOp::Mod)
        ], inner)
            .prop_map(|(l, op, r)| ScalarExpr::Arith(Box::new(l), op, Box::new(r)))
    })
}

fn arb_predicate() -> impl proptest::strategy::Strategy<Value = Predicate> {
    let cmp = (arb_scalar(), prop_oneof![
        Just(CmpOp::Eq), Just(CmpOp::Ne), Just(CmpOp::Lt),
        Just(CmpOp::Le), Just(CmpOp::Gt), Just(CmpOp::Ge)
    ], arb_scalar())
        .prop_map(|(left, op, right)| Predicate::Cmp { left, op, right });
    let leaf = prop_oneof![Just(Predicate::True), cmp];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Predicate::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Predicate::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|p| Predicate::Not(Box::new(p))),
        ]
    })
}

fn arb_xra() -> impl proptest::strategy::Strategy<Value = XraNode> {
    let scan = "[a-z][a-z0-9_]{0,8}".prop_map(XraNode::scan);
    scan.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), arb_predicate()).prop_map(|(input, predicate)| XraNode::Select {
                input: Box::new(input),
                predicate
            }),
            (inner.clone(), prop::collection::vec(0usize..8, 0..5)).prop_map(
                |(input, cols)| XraNode::Project {
                    input: Box::new(input),
                    projection: Projection::new(cols)
                }
            ),
            (
                inner.clone(),
                inner.clone(),
                0usize..6,
                0usize..6,
                prop::collection::vec(0usize..12, 0..5),
                prop_oneof![Just(JoinAlgorithm::Simple), Just(JoinAlgorithm::Pipelining)],
            )
                .prop_map(|(l, r, lk, rk, cols, algo)| XraNode::join(
                    l,
                    r,
                    EquiJoin::new(lk, rk, Projection::new(cols)),
                    algo
                )),
            prop::collection::vec(inner.clone(), 1..4)
                .prop_map(|inputs| XraNode::UnionAll { inputs }),
            (
                inner,
                prop::collection::vec(0usize..8, 0..3),
                prop::collection::vec(
                    (
                        prop_oneof![
                            Just(AggFunc::Count),
                            Just(AggFunc::Sum),
                            Just(AggFunc::Min),
                            Just(AggFunc::Max)
                        ],
                        0usize..8,
                        "[a-z][a-z0-9_]{0,6}",
                    )
                        .prop_map(|(f, c, n)| AggSpec::new(f, c, n)),
                    1..4,
                ),
            )
                .prop_map(|(input, group, aggs)| XraNode::Aggregate {
                    input: Box::new(input),
                    group,
                    aggs
                }),
        ]
    })
}

fn int_relation(keys: &[i64]) -> Relation {
    let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
    let tuples = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| Tuple::from_ints(&[k, i as i64]))
        .collect();
    Relation::new_unchecked(schema, tuples)
}

fn join_spec() -> EquiJoin {
    EquiJoin::new(0, 0, Projection::new(vec![0, 1, 3]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both hash joins agree with the nested-loop oracle on arbitrary
    /// multisets of keys, including duplicates and negatives.
    #[test]
    fn hash_joins_match_oracle(
        left in prop::collection::vec(-20i64..20, 0..120),
        right in prop::collection::vec(-20i64..20, 0..120),
    ) {
        let l = int_relation(&left);
        let r = int_relation(&right);
        let spec = join_spec();
        let oracle = nested_loop_join(&l, &r, &spec).unwrap();
        let simple = simple_hash_join(&l, &r, &spec).unwrap();
        let pipelined = pipelining_hash_join(&l, &r, &spec).unwrap();
        prop_assert!(oracle.multiset_eq(&simple));
        prop_assert!(oracle.multiset_eq(&pipelined));
    }

    /// Partitioned parallel joins are partition-count invariant.
    #[test]
    fn partitioned_join_is_partition_invariant(
        left in prop::collection::vec(0i64..50, 1..150),
        right in prop::collection::vec(0i64..50, 1..150),
        parts in 1usize..6,
    ) {
        let l = int_relation(&left);
        let r = int_relation(&right);
        let spec = join_spec();
        let seq = simple_hash_join(&l, &r, &spec).unwrap();
        let par = multijoin::join::partitioned_parallel_join(
            &l, &r, &spec, parts, JoinAlgorithm::Simple).unwrap();
        prop_assert!(seq.multiset_eq(&par));
    }

    /// Proportional allocation: sums to total, floor of one, and the
    /// discretization error shrinks (weakly) when processors scale up 8x.
    #[test]
    fn allocation_invariants(
        weights in prop::collection::vec(0.01f64..100.0, 1..12),
        extra in 0usize..40,
    ) {
        let total = weights.len() + extra;
        let counts = proportional_counts(&weights, total).unwrap();
        prop_assert_eq!(counts.iter().sum::<usize>(), total);
        prop_assert!(counts.iter().all(|&c| c >= 1));
        let big = proportional_counts(&weights, total * 8).unwrap();
        let e_small = discretization_error(&weights, &counts);
        let e_big = discretization_error(&weights, &big);
        prop_assert!(e_big <= e_small + 1e-9,
            "error grew: {} -> {}", e_small, e_big);
    }

    /// Every (shape, strategy, processors) combination yields a valid plan
    /// whose ops cover each join exactly once.
    #[test]
    fn generated_plans_always_validate(
        shape_idx in 0usize..5,
        strat_idx in 0usize..4,
        k in 2usize..11,
        procs in 10usize..81,
    ) {
        let shape = Shape::ALL[shape_idx];
        let strategy = Strategy::ALL[strat_idx];
        let tree = build(shape, k).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n: 1000 });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let input = GeneratorInput::new(&tree, &cards, &costs, procs);
        let plan = generate(strategy, &input).unwrap();
        validate_plan(&plan).unwrap();
        prop_assert_eq!(plan.ops.len(), k - 1);
    }

    /// The simulator is total and deterministic over the paper grid.
    #[test]
    fn simulation_is_deterministic(
        shape_idx in 0usize..5,
        strat_idx in 0usize..4,
        tuples in 100u64..5000,
        procs in 9usize..40,
    ) {
        let scenario = Scenario::paper(
            Shape::ALL[shape_idx], Strategy::ALL[strat_idx], tuples, procs);
        let params = SimParams::default();
        let a = run_scenario(&scenario, &params).unwrap().response_time;
        let b = run_scenario(&scenario, &params).unwrap().response_time;
        prop_assert!(a > 0.0 && a == b);
    }

    /// Segmentation partitions the joins of any shape.
    #[test]
    fn segmentation_partitions_joins(shape_idx in 0usize..5, k in 2usize..12) {
        let tree = build(Shape::ALL[shape_idx], k).unwrap();
        let seg = segments(&tree);
        let covered: usize = seg.segments.iter().map(|s| s.len()).sum();
        prop_assert_eq!(covered, k - 1);
        // Waves are a topological grouping: every dependency is in an
        // earlier wave.
        let waves = seg.waves();
        let mut wave_of = vec![usize::MAX; seg.segments.len()];
        for (w, segs) in waves.iter().enumerate() {
            for &s in segs {
                wave_of[s] = w;
            }
        }
        for (s, deps) in seg.deps.iter().enumerate() {
            for &d in deps {
                prop_assert!(wave_of[d] < wave_of[s]);
            }
        }
    }

    /// The regular query evaluates to exactly n tuples on every shape
    /// (sequential oracle), and the result keys are a permutation.
    #[test]
    fn regular_query_invariant(shape_idx in 0usize..5, n in 1usize..80) {
        let shape = Shape::ALL[shape_idx];
        let catalog = Arc::new(Catalog::new());
        for (name, rel) in WisconsinGenerator::new(n, 3).generate_named("R", 5) {
            catalog.register(name, rel);
        }
        let tree = build(shape, 5).unwrap();
        let out = to_xra(&tree, 3, JoinAlgorithm::Simple)
            .eval(catalog.as_ref()).unwrap();
        prop_assert_eq!(out.len(), n);
        let mut keys: Vec<i64> = out.iter().map(|t| t.int(0).unwrap()).collect();
        keys.sort_unstable();
        let expected: Vec<i64> = (0..n as i64).collect();
        prop_assert_eq!(keys, expected);
    }

    /// The paper's cost function: shape-invariant total for the regular
    /// query, (5k-6)·N for k relations.
    #[test]
    fn cost_invariance(shape_idx in 0usize..5, k in 2usize..13, n in 1u64..100_000) {
        let tree = build(Shape::ALL[shape_idx], k).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let expected = (5 * k - 6) as f64 * n as f64;
        prop_assert!((costs.total - expected).abs() < 1e-6);
    }

    /// The textual XRA format round-trips arbitrary plans exactly:
    /// `parse(print(p)) == p`.
    #[test]
    fn xra_text_roundtrip(plan in arb_xra()) {
        let printed = text::print(&plan);
        let parsed = text::parse(&printed);
        prop_assert!(parsed.is_ok(), "parse of `{printed}` failed: {:?}", parsed.err());
        prop_assert_eq!(parsed.unwrap(), plan, "round-trip changed the plan: {}", printed);
    }

    /// Hash partitioning: a true partition, key-consistent across sides.
    #[test]
    fn partitioning_is_consistent(
        keys in prop::collection::vec(-1000i64..1000, 0..300),
        parts in 1usize..10,
    ) {
        let rel = int_relation(&keys);
        let frags = multijoin::storage::hash_partition(&rel, parts, 0).unwrap();
        prop_assert_eq!(frags.len(), parts);
        let total: usize = frags.iter().map(|f| f.len()).sum();
        prop_assert_eq!(total, keys.len());
        let mut seen: HashMap<i64, usize> = HashMap::new();
        for (p, frag) in frags.iter().enumerate() {
            for t in frag.iter() {
                let k = t.int(0).unwrap();
                if let Some(&prev) = seen.get(&k) {
                    prop_assert_eq!(prev, p, "key {} in two fragments", k);
                }
                seen.insert(k, p);
            }
        }
    }
}
